//! The rewrite driver: applies rules bottom-up to a fixpoint.

use mera_core::prelude::*;
use mera_expr::{RelExpr, SchemaProvider};

use crate::rules::{
    ConstantFold, DistinctPruning, FuseSelections, ProjectBeforeGroupBy, PushProjectionIntoJoin,
    PushProjectionThroughUnion, PushSelectionIntoJoin, PushSelectionThroughBinary, Rule,
    RuleContext, SelectProductToJoin,
};

/// Hard cap on full rewrite passes; a correct rule set reaches its fixpoint
/// long before this, and the cap turns a non-terminating rule combination
/// into a visible error instead of a hang.
const MAX_PASSES: usize = 32;

/// The outcome of an optimization run.
#[derive(Debug)]
pub struct Optimized {
    /// The rewritten expression.
    pub expr: RelExpr,
    /// `(rule name, application count)`, in rule order, zero-count rules
    /// omitted.
    pub applications: Vec<(String, usize)>,
    /// Number of bottom-up passes until the fixpoint.
    pub passes: usize,
}

/// A rule-based optimizer over the multi-set algebra.
pub struct Optimizer {
    rules: Vec<Box<dyn Rule>>,
}

impl Optimizer {
    /// The standard rule set, in application order:
    /// fold constants → fuse selections → push selections → recognise
    /// joins → push projections → prune distincts → prune group-by inputs.
    pub fn standard() -> Self {
        Optimizer {
            rules: vec![
                Box::new(ConstantFold),
                Box::new(FuseSelections),
                Box::new(PushSelectionThroughBinary),
                Box::new(PushSelectionIntoJoin),
                Box::new(SelectProductToJoin),
                Box::new(PushProjectionThroughUnion),
                Box::new(DistinctPruning),
                Box::new(ProjectBeforeGroupBy),
                Box::new(PushProjectionIntoJoin),
            ],
        }
    }

    /// An optimizer with an explicit rule list (used by the ablation
    /// benchmarks).
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Self {
        Optimizer { rules }
    }

    /// The standard rule set minus the named rules — ablation helper.
    pub fn standard_without(excluded: &[&str]) -> Self {
        let all = Self::standard();
        Optimizer {
            rules: all
                .rules
                .into_iter()
                .filter(|r| !excluded.contains(&r.name()))
                .collect(),
        }
    }

    /// Names of the active rules, in order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Rewrites `expr` to a fixpoint of the rule set. The input is
    /// validated first; every intermediate tree stays well-typed (each rule
    /// preserves typing), which the optimizer re-checks at the end as a
    /// safety net.
    pub fn optimize<P: SchemaProvider>(
        &self,
        expr: &RelExpr,
        provider: &P,
    ) -> CoreResult<Optimized> {
        expr.schema(provider)?; // reject ill-typed inputs up front
        let ctx = RuleContext::new(provider);
        let mut current = expr.clone();
        let mut counts = vec![0usize; self.rules.len()];
        let mut passes = 0;
        for _ in 0..MAX_PASSES {
            passes += 1;
            let (next, changed) = self.rewrite_pass(&current, &ctx, &mut counts)?;
            current = next;
            if !changed {
                break;
            }
        }
        current.schema(provider)?; // safety net: output must still type
        Ok(Optimized {
            expr: current,
            applications: self
                .rules
                .iter()
                .zip(&counts)
                .filter(|(_, &c)| c > 0)
                .map(|(r, &c)| (r.name().to_owned(), c))
                .collect(),
            passes,
        })
    }

    /// One bottom-up pass: children first, then this node, repeating rules
    /// at a node until none applies (a node rewrite can enable another).
    fn rewrite_pass(
        &self,
        expr: &RelExpr,
        ctx: &RuleContext<'_>,
        counts: &mut [usize],
    ) -> CoreResult<(RelExpr, bool)> {
        let mut changed = false;
        // rewrite children
        let mut node = if expr.children().is_empty() {
            expr.clone()
        } else {
            let mut new_children = Vec::with_capacity(expr.children().len());
            for child in expr.children() {
                let (c, ch) = self.rewrite_pass(child, ctx, counts)?;
                changed |= ch;
                new_children.push(c);
            }
            if changed {
                expr.with_children(new_children)
            } else {
                expr.clone()
            }
        };
        // then apply rules at this node to a local fixpoint
        let mut local_budget = 16;
        'outer: while local_budget > 0 {
            local_budget -= 1;
            for (i, rule) in self.rules.iter().enumerate() {
                if let Some(next) = rule.apply(&node, ctx)? {
                    debug_assert_ne!(
                        next,
                        node,
                        "rule {} returned an identical tree",
                        rule.name()
                    );
                    node = next;
                    counts[i] += 1;
                    changed = true;
                    continue 'outer;
                }
            }
            break;
        }
        Ok((node, changed))
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::{Aggregate, ScalarExpr};

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh")
    }

    #[test]
    fn example_3_1_plan_normalises() {
        // the textbook form: π(σ(beer × brewery)) — the optimizer should
        // recognise the join and split the single-side conjunct
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .select(
                ScalarExpr::attr(2)
                    .eq(ScalarExpr::attr(4))
                    .and(ScalarExpr::attr(6).eq(ScalarExpr::str("NL"))),
            )
            .project(&[1]);
        let opt = Optimizer::standard();
        let out = opt.optimize(&e, &cat).expect("optimizes");
        // expected shape: the join recognised, the single-side conjunct
        // pushed into the brewery side, and both join inputs narrowed to
        // the attributes the projection and predicate need
        let want = RelExpr::scan("beer")
            .project(&[1, 2])
            .join(
                RelExpr::scan("brewery")
                    .select(ScalarExpr::attr(3).eq(ScalarExpr::str("NL")))
                    .project(&[1]),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(3)),
            )
            .project(&[1]);
        assert_eq!(out.expr, want, "got {}", out.expr);
        assert!(out.passes <= 5);
        assert!(!out.applications.is_empty());
    }

    #[test]
    fn example_3_2_projection_inserted_automatically() {
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .group_by(&[6], Aggregate::Avg, 3);
        let opt = Optimizer::standard();
        let out = opt.optimize(&e, &cat).expect("optimizes");
        assert!(
            out.applications
                .iter()
                .any(|(n, _)| n == "project-before-group-by"),
            "applications: {:?}",
            out.applications
        );
        // resulting group-by must read a 2-wide input
        if let RelExpr::GroupBy { input, .. } = &out.expr {
            assert_eq!(input.schema(&cat).expect("types").arity(), 2);
        } else {
            panic!("expected group-by at root, got {}", out.expr);
        }
    }

    #[test]
    fn fixpoint_reached_and_idempotent() {
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::bool(true))
            .select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.0)))
            .distinct()
            .distinct();
        let opt = Optimizer::standard();
        let once = opt.optimize(&e, &cat).expect("optimizes");
        let twice = opt.optimize(&once.expr, &cat).expect("optimizes");
        assert_eq!(once.expr, twice.expr);
        assert!(twice.applications.is_empty());
    }

    #[test]
    fn ablation_excludes_rules() {
        let opt = Optimizer::standard_without(&["project-before-group-by"]);
        assert!(!opt.rule_names().contains(&"project-before-group-by"));
        let cat = catalog();
        let e = RelExpr::scan("beer").group_by(&[2], Aggregate::Avg, 3);
        let out = opt.optimize(&e, &cat).expect("optimizes");
        assert_eq!(out.expr, e); // nothing else applies
    }

    #[test]
    fn optimizer_rejects_ill_typed_input() {
        let cat = catalog();
        let bad = RelExpr::scan("beer").union(RelExpr::scan("brewery"));
        assert!(Optimizer::standard().optimize(&bad, &cat).is_err());
    }
}
