//! Cost-based join reordering.
//!
//! Theorem 3.3 establishes associativity of `×`, `⋈`, `⊎` and `∩` in the
//! multi-set algebra — the licence a query optimizer needs to re-order join
//! trees. This module flattens a product/join chain into its leaves and
//! predicate conjuncts, enumerates left-deep orders (exhaustively up to
//! [`EXHAUSTIVE_LIMIT`] leaves, greedily beyond), costs each candidate with
//! the model in [`cost`](crate::cost), and keeps the cheapest.
//!
//! Because reordering permutes the concatenated output schema, every
//! rewritten chain is wrapped in a plain projection restoring the original
//! attribute order — a bijective tuple map, so multiplicities are
//! untouched.

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr, SchemaProvider};

use crate::cost::{estimate_cost, estimate_rows};
use crate::stats::CatalogStats;

/// Maximum number of leaves for exhaustive permutation search (6! = 720
/// candidates); larger chains fall back to a greedy smallest-first order.
pub const EXHAUSTIVE_LIMIT: usize = 6;

/// One leaf of a flattened join chain.
struct Leaf {
    expr: RelExpr,
    arity: usize,
    /// 0-based global offset of this leaf's first attribute in the original
    /// chain schema.
    offset: usize,
}

/// One predicate conjunct with the set of leaves it references.
struct Conjunct {
    /// The conjunct with *global* (original-chain) attribute indexes.
    expr: ScalarExpr,
    /// Indexes into the leaf vector.
    leaves: Vec<usize>,
}

/// Recursively reorders every join chain in `expr`. Returns the original
/// tree when no chain of ≥ 3 leaves exists or no candidate beats the
/// current order.
pub fn reorder_joins<P: SchemaProvider>(
    expr: &RelExpr,
    stats: &CatalogStats,
    provider: &P,
) -> CoreResult<RelExpr> {
    // flatten the whole chain BEFORE recursing: rewriting children first
    // would wrap inner chains in their restoring projections, splitting a
    // single n-leaf chain into opaque fragments the search never sees as
    // one ordering problem
    if !matches!(expr, RelExpr::Product(..) | RelExpr::Join { .. }) {
        let children: CoreResult<Vec<RelExpr>> = expr
            .children()
            .iter()
            .map(|c| reorder_joins(c, stats, provider))
            .collect();
        return Ok(expr.with_children(children?));
    }
    let mut leaves = Vec::new();
    let mut conjuncts = Vec::new();
    flatten(expr, provider, 0, &mut leaves, &mut conjuncts)?;
    // chains nested under non-join operators (selections, projections)
    // are leaves here — reorder inside them independently
    for leaf in &mut leaves {
        leaf.expr = reorder_joins(&leaf.expr, stats, provider)?;
    }
    if leaves.len() < 3 {
        let children: CoreResult<Vec<RelExpr>> = expr
            .children()
            .iter()
            .map(|c| reorder_joins(c, stats, provider))
            .collect();
        return Ok(expr.with_children(children?));
    }
    // leaf index per global attribute for conjunct classification
    let leaf_of_attr = |g: usize| -> Option<usize> {
        leaves
            .iter()
            .position(|l| g > l.offset && g <= l.offset + l.arity)
    };
    for c in &mut conjuncts {
        let mut ls: Vec<usize> = c
            .expr
            .attrs_used()
            .iter()
            .filter_map(|&g| leaf_of_attr(g))
            .collect();
        ls.sort_unstable();
        ls.dedup();
        c.leaves = ls;
    }

    let n = leaves.len();
    let orders: Vec<Vec<usize>> = if n <= EXHAUSTIVE_LIMIT {
        permutations(n)
    } else {
        vec![greedy_order(&leaves, stats)]
    };

    let original_cost = estimate_cost(expr, stats);
    let mut best: Option<(f64, RelExpr)> = None;
    for order in orders {
        let candidate = build_candidate(&leaves, &conjuncts, &order)?;
        let cost = estimate_cost(&candidate, stats);
        if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
            best = Some((cost, candidate));
        }
    }
    if let Some((cost, candidate)) = best {
        if cost < original_cost {
            return Ok(candidate);
        }
    }
    // no candidate beats the written order: keep it, but still rewrite
    // chains nested below (the old bottom-up path)
    let children: CoreResult<Vec<RelExpr>> = expr
        .children()
        .iter()
        .map(|c| reorder_joins(c, stats, provider))
        .collect();
    Ok(expr.with_children(children?))
}

/// Flattens nested products/joins into leaves and globalised conjuncts.
fn flatten<P: SchemaProvider>(
    expr: &RelExpr,
    provider: &P,
    offset: usize,
    leaves: &mut Vec<Leaf>,
    conjuncts: &mut Vec<Conjunct>,
) -> CoreResult<usize> {
    match expr {
        RelExpr::Product(l, r) => {
            let mid = flatten(l, provider, offset, leaves, conjuncts)?;
            flatten(r, provider, mid, leaves, conjuncts)
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let mid = flatten(left, provider, offset, leaves, conjuncts)?;
            let end = flatten(right, provider, mid, leaves, conjuncts)?;
            // the predicate's indexes are relative to this node's schema;
            // globalise by the node's own offset
            for conj in predicate.conjuncts() {
                let global = conj.clone().map_attrs(&mut |i| Ok(i + offset))?;
                conjuncts.push(Conjunct {
                    expr: global,
                    leaves: Vec::new(),
                });
            }
            Ok(end)
        }
        leaf => {
            let arity = leaf.schema(provider)?.arity();
            leaves.push(Leaf {
                expr: leaf.clone(),
                arity,
                offset,
            });
            Ok(offset + arity)
        }
    }
}

/// Builds the left-deep candidate for a leaf order, attaching each conjunct
/// at the first step where all its leaves are available, then restoring the
/// original attribute order with a projection.
fn build_candidate(
    leaves: &[Leaf],
    conjuncts: &[Conjunct],
    order: &[usize],
) -> CoreResult<RelExpr> {
    // new 0-based offset of each leaf in the candidate order
    let mut new_offset = vec![0usize; leaves.len()];
    let mut acc = 0usize;
    for &li in order {
        new_offset[li] = acc;
        acc += leaves[li].arity;
    }
    let total = acc;

    // remap a globalised conjunct into candidate coordinates
    let remap = |c: &ScalarExpr| -> CoreResult<ScalarExpr> {
        c.clone().map_attrs(&mut |g| {
            let li = leaves
                .iter()
                .position(|l| g > l.offset && g <= l.offset + l.arity)
                .ok_or(CoreError::AttrIndexOutOfRange {
                    index: g,
                    arity: total,
                })?;
            Ok(new_offset[li] + (g - leaves[li].offset))
        })
    };

    let mut attached = vec![false; conjuncts.len()];
    let mut covered = vec![false; leaves.len()];
    covered[order[0]] = true;
    let mut tree = leaves[order[0]].expr.clone();
    for &li in &order[1..] {
        covered[li] = true;
        let mut preds = Vec::new();
        for (ci, c) in conjuncts.iter().enumerate() {
            if !attached[ci] && !c.leaves.is_empty() && c.leaves.iter().all(|&l| covered[l]) {
                attached[ci] = true;
                preds.push(remap(&c.expr)?);
            }
        }
        let right = leaves[li].expr.clone();
        tree = if preds.is_empty() {
            tree.product(right)
        } else {
            tree.join(right, ScalarExpr::conjoin(preds))
        };
    }
    // leftover conjuncts (leaf-less constants) stay as a top selection
    let leftovers: Vec<ScalarExpr> = conjuncts
        .iter()
        .enumerate()
        .filter(|(ci, _)| !attached[*ci])
        .map(|(_, c)| remap(&c.expr))
        .collect::<CoreResult<_>>()?;
    if !leftovers.is_empty() {
        tree = tree.select(ScalarExpr::conjoin(leftovers));
    }
    // restore original attribute order: original leaf order, local attrs
    // mapped through each leaf's new offset
    let mut restore = Vec::with_capacity(total);
    for (li, l) in leaves.iter().enumerate() {
        for local in 1..=l.arity {
            restore.push(new_offset[li] + local);
        }
    }
    Ok(tree.project(&restore))
}

/// All permutations of `0..n` (n ≤ [`EXHAUSTIVE_LIMIT`]).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            go(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    go(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

/// Greedy order: smallest estimated leaf first, then ascending.
fn greedy_order(leaves: &[Leaf], stats: &CatalogStats) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..leaves.len()).collect();
    idx.sort_by(|&a, &b| {
        estimate_rows(&leaves[a].expr, stats).total_cmp(&estimate_rows(&leaves[b].expr, stats))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use std::sync::Arc;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("a", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
            .with("b", Schema::anon(&[DataType::Int]))
            .expect("fresh")
            .with("c", Schema::anon(&[DataType::Int]))
            .expect("fresh")
    }

    fn stats() -> CatalogStats {
        let mut cs = CatalogStats::new();
        cs.insert("a", TableStats::synthetic(10_000, 10_000, &[1000, 1000]));
        cs.insert("b", TableStats::synthetic(10, 10, &[10]));
        cs.insert("c", TableStats::synthetic(100, 100, &[100]));
        cs
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(1), vec![vec![0]]);
    }

    #[test]
    fn two_way_chain_untouched() {
        let cat = catalog();
        let cs = stats();
        let e = RelExpr::scan("a").join(
            RelExpr::scan("b"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        let out = reorder_joins(&e, &cs, &cat).expect("reorder");
        assert_eq!(out, e);
    }

    #[test]
    fn three_way_chain_reordered_and_projected() {
        let cat = catalog();
        let cs = stats();
        // (a ⋈[%1=%3] b) × c — the product with c first would be cheaper
        // if c is joined via a predicate... build a chain where joining
        // small b and c early wins:
        // a ⋈[%1=%3] (b) then ⋈[%2=%4] c, written in a poor order:
        let e = RelExpr::scan("a")
            .join(
                RelExpr::scan("b"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .join(
                RelExpr::scan("c"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            );
        let out = reorder_joins(&e, &cs, &cat).expect("reorder");
        // whatever the chosen order, the schema must be restored
        let s_in = e.schema(&cat).expect("types");
        let s_out = out.schema(&cat).expect("types");
        assert!(s_in.same_types(&s_out), "schema changed: {s_in} vs {s_out}");
    }

    #[test]
    fn reordering_preserves_semantics_on_data() {
        use mera_core::tuple;
        // build a real database and check result equality
        let cat = catalog();
        let cs = stats();
        let mut db = Database::new(cat);
        let fill = |db: &mut Database, name: &str, rows: Vec<Tuple>| {
            let schema = Arc::clone(db.schema().get(name).expect("declared"));
            db.replace(name, Relation::from_tuples(schema, rows).expect("typed"))
                .expect("replace");
        };
        fill(
            &mut db,
            "a",
            vec![
                tuple![1_i64, 10_i64],
                tuple![1_i64, 20_i64],
                tuple![2_i64, 10_i64],
            ],
        );
        fill(
            &mut db,
            "b",
            vec![tuple![1_i64], tuple![1_i64], tuple![3_i64]],
        );
        fill(&mut db, "c", vec![tuple![10_i64], tuple![20_i64]]);

        let e = RelExpr::scan("a")
            .join(
                RelExpr::scan("b"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .join(
                RelExpr::scan("c"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            );
        let reordered = reorder_joins(&e, &cs, db.schema()).expect("reorder");
        let want = mera_eval::eval(&e, &db).expect("reference");
        let got = mera_eval::eval(&reordered, &db).expect("reference");
        assert_eq!(got, want);
    }

    #[test]
    fn pure_product_chain_reordered_smallest_first() {
        let cat = catalog();
        let cs = stats();
        let e = RelExpr::scan("a")
            .product(RelExpr::scan("b"))
            .product(RelExpr::scan("c"));
        let out = reorder_joins(&e, &cs, &cat).expect("reorder");
        // cost model ranks all pure products equal (same total work), so
        // the original order survives; the tree must still type-check
        assert!(out.schema(&cat).is_ok());
    }
}
