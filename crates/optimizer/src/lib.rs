//! # mera-opt — rule-based and cost-based optimization for the multi-set
//! algebra
//!
//! The paper's §3.3 argues that "the expression equivalences used in the
//! set-oriented relational context for query optimization also hold in the
//! proposed multi-set context", and proves the key cases:
//!
//! * Theorem 3.1 — `E₁∩E₂ = E₁−(E₁−E₂)` and `E₁⋈_φE₂ = σ_φ(E₁×E₂)`,
//! * Theorem 3.2 — `σ` and `π` distribute over `⊎`,
//! * Theorem 3.3 — `×`, `⋈`, `⊎`, `∩` are associative,
//! * the §3.3 caveat — `δ` does *not* distribute over `⊎`.
//!
//! This crate turns those licences into an optimizer:
//!
//! * [`rules`] — local rewrite rules (pushdowns, fusions, constant folding,
//!   Example 3.2's projection insertion, cost-gated δ placement, and
//!   property-licensed rules — δ-elimination and keyed-γ simplification —
//!   grounded in declared key constraints via [`Optimizer::with_keys`]),
//! * [`driver`] — bottom-up fixpoint application with ablation support;
//!   with statistics attached ([`Optimizer::with_stats`]) each run ends
//!   with cost-based join reordering through the same admission gate,
//! * [`stats`] / [`cost`] — incrementally-maintained table statistics
//!   (row counts, KMV distinct sketches, column bounds) and a
//!   System-R-style cost model clamped by `mera-analyze`'s sound
//!   cardinality intervals,
//! * [`join_order`] — cost-based join re-ordering justified by
//!   Theorem 3.3, with schema-restoring projections,
//! * [`access`] — index-versus-hash access-path selection, emitting the
//!   hints `mera-eval`'s physical planner executes as index-nested-loop
//!   joins.
//!
//! Every rule is checked against the reference evaluator by the property
//! tests in `tests/rewrite_soundness.rs`.

#![warn(missing_docs)]

pub mod access;
pub mod cost;
pub mod driver;
pub mod join_order;
pub mod rules;
pub mod stats;

pub use access::choose_access_paths;
pub use cost::{
    estimate_cost, estimate_distinct_rows, estimate_distinct_rows_keyed, estimate_rows,
    estimate_rows_bounded, HASH_BUILD_FACTOR,
};
pub use driver::{Optimized, Optimizer, VerifyMode};
pub use join_order::reorder_joins;
pub use stats::{CatalogStats, TableStats};
