//! # mera-opt — rule-based and cost-based optimization for the multi-set
//! algebra
//!
//! The paper's §3.3 argues that "the expression equivalences used in the
//! set-oriented relational context for query optimization also hold in the
//! proposed multi-set context", and proves the key cases:
//!
//! * Theorem 3.1 — `E₁∩E₂ = E₁−(E₁−E₂)` and `E₁⋈_φE₂ = σ_φ(E₁×E₂)`,
//! * Theorem 3.2 — `σ` and `π` distribute over `⊎`,
//! * Theorem 3.3 — `×`, `⋈`, `⊎`, `∩` are associative,
//! * the §3.3 caveat — `δ` does *not* distribute over `⊎`.
//!
//! This crate turns those licences into an optimizer:
//!
//! * [`rules`] — local rewrite rules (pushdowns, fusions, constant folding,
//!   Example 3.2's projection insertion),
//! * [`driver`] — bottom-up fixpoint application with ablation support,
//! * [`stats`] / [`cost`] — table statistics and a System-R-style cost
//!   model,
//! * [`join_order`] — cost-based join re-ordering justified by
//!   Theorem 3.3, with schema-restoring projections.
//!
//! Every rule is checked against the reference evaluator by the property
//! tests in `tests/rewrite_soundness.rs`.

#![warn(missing_docs)]

pub mod cost;
pub mod driver;
pub mod join_order;
pub mod rules;
pub mod stats;

pub use driver::{Optimized, Optimizer, VerifyMode};
pub use join_order::reorder_joins;
pub use stats::{CatalogStats, TableStats};
