//! Table statistics for cardinality estimation — live-maintained.
//!
//! Under multiset semantics cardinality is *two* numbers: total
//! multiplicity (`rows`) and distinct support (`distinct_rows`). Both are
//! O(1) counters on [`Relation`], so after a commit they are read off the
//! post-state exactly; only the per-column statistics (min/max bounds and
//! KMV distinct sketches) need updating, and those are updated from the
//! same signed deltas that drive view maintenance — O(|delta|), not
//! O(|relation|).
//!
//! KMV sketches cannot process deletions, and a deleted boundary value
//! cannot shrink a min/max interval. Both effects are counted as *drift*;
//! once drift crosses [`TableStats::DRIFT_LIMIT`] relative to the table
//! size the statistics fall back to a full [`TableStats::analyze`] — the
//! same `Recompute` escape hatch the view-maintenance plans use. Until
//! then the sketch over-estimates distincts and the bounds over-cover,
//! which is the conservative direction for selectivity estimation.

use mera_core::prelude::*;
use mera_core::sketch::KmvSketch;
use rustc_hash::{FxHashMap, FxHashSet};

/// Sketch resolution for per-column distinct counts (RSE ≈ 6.4%).
const SKETCH_K: usize = 256;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Estimated distinct values in the column (exact after a full
    /// analyze while below the sketch resolution).
    pub distinct: u64,
    /// Smallest value observed (None for an empty column).
    pub min: Option<Value>,
    /// Largest value observed (None for an empty column).
    pub max: Option<Value>,
    /// The distinct-count sketch backing `distinct`.
    sketch: KmvSketch,
}

impl ColumnStats {
    /// Synthetic column statistics with a given distinct count and no
    /// value bounds (tests and hand-built catalogs).
    pub fn with_distinct(distinct: u64) -> ColumnStats {
        ColumnStats {
            distinct,
            min: None,
            max: None,
            sketch: KmvSketch::new(SKETCH_K),
        }
    }

    /// Folds one inserted value into the column statistics. `distinct`
    /// only grows here — the sketch tracks everything ever inserted, so
    /// its estimate can lag a `distinct` that was seeded exactly.
    fn observe(&mut self, v: &Value) {
        self.sketch.insert(v);
        self.distinct = self.distinct.max(self.sketch.estimate());
        self.observe_bounds(v);
    }

    /// Whether `v` sits on the min/max boundary (deleting it invalidates
    /// the bound, which counts extra drift).
    fn on_boundary(&self, v: &Value) -> bool {
        self.min.as_ref() == Some(v) || self.max.as_ref() == Some(v)
    }
}

/// Statistics for one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Total tuples, counted with multiplicity.
    pub rows: u64,
    /// Distinct tuples.
    pub distinct_rows: u64,
    /// Per-column statistics, in attribute order.
    pub columns: Vec<ColumnStats>,
    /// Distinct tuples deleted (or boundary-touching) since the last full
    /// analyze — the sketch/bounds error budget.
    pub drift: u64,
    /// Distinct delta tuples folded in since construction (the O(delta)
    /// witness: this, not `rows`, bounds incremental maintenance work).
    pub touched_rows: u64,
    /// Full `analyze` passes taken (1 at construction + drift fallbacks).
    pub full_scans: u64,
}

impl TableStats {
    /// Drift fallback: re-analyze once drifted tuples exceed
    /// `max(64, distinct_rows / 4)`.
    pub const DRIFT_LIMIT: u64 = 64;

    /// Computes exact statistics by scanning a relation once.
    pub fn analyze(rel: &Relation) -> TableStats {
        let arity = rel.schema().arity();
        let mut seen: Vec<FxHashSet<&Value>> = (0..arity).map(|_| FxHashSet::default()).collect();
        let mut columns: Vec<ColumnStats> =
            (0..arity).map(|_| ColumnStats::with_distinct(0)).collect();
        for t in rel.support() {
            for (i, v) in t.values().iter().enumerate() {
                if seen[i].insert(v) {
                    columns[i].sketch.insert(v);
                }
                columns[i].observe_bounds(v);
            }
        }
        for (c, s) in columns.iter_mut().zip(&seen) {
            // exact when the sketch is unsaturated; estimator otherwise
            c.distinct = if c.sketch.is_exact() {
                s.len() as u64
            } else {
                c.sketch.estimate()
            };
        }
        TableStats {
            rows: rel.len(),
            distinct_rows: rel.distinct_len() as u64,
            columns,
            drift: 0,
            touched_rows: 0,
            full_scans: 1,
        }
    }

    /// Synthetic statistics from per-column distinct counts (tests and
    /// hand-built catalogs).
    pub fn synthetic(rows: u64, distinct_rows: u64, column_distincts: &[u64]) -> TableStats {
        TableStats {
            rows,
            distinct_rows,
            columns: column_distincts
                .iter()
                .map(|&d| ColumnStats::with_distinct(d))
                .collect(),
            drift: 0,
            touched_rows: 0,
            full_scans: 0,
        }
    }

    /// Folds one commit's signed delta for this relation into the
    /// statistics. `post` is the relation *after* the commit; only its
    /// O(1) row/distinct counters are read unless drift forces a full
    /// re-analyze.
    pub fn apply_delta(&mut self, delta: &SignedBag<Tuple>, post: &Relation) {
        self.rows = post.len();
        self.distinct_rows = post.distinct_len() as u64;
        for (t, m) in delta.iter() {
            self.touched_rows += 1;
            if m > 0 {
                for (i, v) in t.values().iter().enumerate() {
                    if let Some(c) = self.columns.get_mut(i) {
                        c.observe(v);
                    }
                }
            } else {
                // deletions: the sketch cannot forget, bounds cannot
                // shrink — count drift (double when a bound is hit).
                let mut d = 1;
                for (i, v) in t.values().iter().enumerate() {
                    if self.columns.get(i).is_some_and(|c| c.on_boundary(v)) {
                        d = 2;
                        break;
                    }
                }
                self.drift += d;
            }
        }
        if self.drift > Self::DRIFT_LIMIT.max(self.distinct_rows / 4) {
            let touched = self.touched_rows;
            let scans = self.full_scans;
            *self = TableStats::analyze(post);
            self.touched_rows = touched;
            self.full_scans = scans + 1;
        }
    }

    /// Distinct count of a 1-based column, defaulting to the distinct row
    /// count when out of range (conservative). Clamped to
    /// `[1, distinct_rows]` — a column can never exceed the table's own
    /// distinct support.
    pub fn column_distinct(&self, attr: usize) -> u64 {
        self.columns
            .get(attr.wrapping_sub(1))
            .map(|c| c.distinct.clamp(1, self.distinct_rows.max(1)))
            .unwrap_or_else(|| self.distinct_rows.max(1))
    }

    /// The `[min, max]` bounds of a 1-based column, when known.
    pub fn column_bounds(&self, attr: usize) -> Option<(&Value, &Value)> {
        let c = self.columns.get(attr.wrapping_sub(1))?;
        Some((c.min.as_ref()?, c.max.as_ref()?))
    }
}

impl ColumnStats {
    /// Widens min/max only (used by `analyze`, which feeds the sketch
    /// from the deduplicated value set separately).
    fn observe_bounds(&mut self, v: &Value) {
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
    }
}

/// Statistics for every relation in a database, stamped with the logical
/// time they describe.
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    tables: FxHashMap<String, TableStats>,
    /// Logical time of the database state these statistics describe.
    as_of: Option<LogicalTime>,
}

impl CatalogStats {
    /// Empty statistics (every lookup falls back to defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes every relation of a database (one full scan each).
    pub fn from_database(db: &Database) -> CoreResult<CatalogStats> {
        let mut tables = FxHashMap::default();
        for name in db.relation_names() {
            tables.insert(name.to_owned(), TableStats::analyze(db.relation(name)?));
        }
        Ok(CatalogStats {
            tables,
            as_of: Some(db.time()),
        })
    }

    /// The logical time these statistics describe, if stamped.
    pub fn as_of(&self) -> Option<LogicalTime> {
        self.as_of
    }

    /// Whether the statistics already describe `db`'s current state — the
    /// logical-time cache key that lets repeated plan calls within one
    /// transaction skip rescanning.
    pub fn is_current(&self, db: &Database) -> bool {
        self.as_of == Some(db.time())
    }

    /// Brings the statistics up to date with `db`, re-analyzing only when
    /// the logical time moved (cache hit = no scan at all).
    pub fn refresh_from(&mut self, db: &Database) -> CoreResult<()> {
        if self.is_current(db) {
            return Ok(());
        }
        *self = CatalogStats::from_database(db)?;
        Ok(())
    }

    /// Folds one committed relation delta into the catalog. `post` is the
    /// relation after the commit; relations never analyzed before get a
    /// one-time full scan.
    pub fn apply_commit(&mut self, name: &str, delta: &SignedBag<Tuple>, post: &Relation) {
        match self.tables.get_mut(name) {
            Some(t) => t.apply_delta(delta, post),
            None => {
                self.tables
                    .insert(name.to_owned(), TableStats::analyze(post));
            }
        }
    }

    /// Stamps the catalog as describing the state at logical time `t`
    /// (call once per commit, after all deltas are applied).
    pub fn set_as_of(&mut self, t: LogicalTime) {
        self.as_of = Some(t);
    }

    /// Registers statistics for a named relation.
    pub fn insert(&mut self, name: impl Into<String>, stats: TableStats) {
        self.tables.insert(name.into(), stats);
    }

    /// Statistics for a relation, if known.
    pub fn get(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Iterates over every `(relation, stats)` pair.
    pub fn tables(&self) -> impl Iterator<Item = (&String, &TableStats)> {
        self.tables.iter()
    }

    /// Total delta tuples folded in across all relations (the O(delta)
    /// maintenance-work witness).
    pub fn touched_rows(&self) -> u64 {
        self.tables.values().map(|t| t.touched_rows).sum()
    }

    /// Total full-analyze passes across all relations (1 per relation at
    /// construction; more only on drift fallbacks).
    pub fn full_scans(&self) -> u64 {
        self.tables.values().map(|t| t.full_scans).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use std::sync::Arc;

    #[test]
    fn analyze_counts_rows_and_distincts() {
        let rel = Relation::from_counted(
            Arc::new(Schema::anon(&[DataType::Int, DataType::Str])),
            vec![
                (tuple![1_i64, "a"], 3),
                (tuple![2_i64, "a"], 1),
                (tuple![2_i64, "b"], 2),
            ],
        )
        .expect("well-typed");
        let s = TableStats::analyze(&rel);
        assert_eq!(s.rows, 6);
        assert_eq!(s.distinct_rows, 3);
        assert_eq!(s.columns[0].distinct, 2);
        assert_eq!(s.columns[1].distinct, 2);
        assert_eq!(s.column_distinct(1), 2);
        // out-of-range column falls back to distinct rows
        assert_eq!(s.column_distinct(9), 3);
        // bounds
        let (lo, hi) = s.column_bounds(1).expect("bounds");
        assert_eq!(lo, &Value::Int(1));
        assert_eq!(hi, &Value::Int(2));
    }

    #[test]
    fn empty_relation_stats() {
        let rel = Relation::empty(Arc::new(Schema::anon(&[DataType::Int])));
        let s = TableStats::analyze(&rel);
        assert_eq!(s.rows, 0);
        assert_eq!(s.column_distinct(1), 1); // clamped to ≥ 1
        assert!(s.column_bounds(1).is_none());
    }

    #[test]
    fn catalog_stats_from_database() {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int]))
            .expect("fresh");
        let mut db = Database::new(schema);
        db.update_with("r", |r| {
            let mut r = r.clone();
            r.insert(tuple![7_i64], 4)?;
            Ok(r)
        })
        .expect("update");
        let cs = CatalogStats::from_database(&db).expect("analyze");
        assert_eq!(cs.get("r").expect("present").rows, 4);
        assert!(cs.get("zzz").is_none());
        assert!(cs.is_current(&db));
    }

    #[test]
    fn apply_delta_tracks_inserts_incrementally() {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        let mut rel = Relation::empty(Arc::clone(&schema));
        for i in 0..10_i64 {
            rel.insert(tuple![i], 1).expect("typed");
        }
        let mut s = TableStats::analyze(&rel);
        assert_eq!(s.column_distinct(1), 10);

        // commit: insert 5 new values
        let mut delta = SignedBag::new();
        let mut post = rel.clone();
        for i in 10..15_i64 {
            delta.insert(tuple![i], 1).expect("delta");
            post.insert(tuple![i], 1).expect("typed");
        }
        s.apply_delta(&delta, &post);
        assert_eq!(s.rows, 15);
        assert_eq!(s.distinct_rows, 15);
        assert_eq!(s.column_distinct(1), 15);
        assert_eq!(s.touched_rows, 5);
        assert_eq!(s.full_scans, 1); // no drift fallback
        let (lo, hi) = s.column_bounds(1).expect("bounds");
        assert_eq!(lo, &Value::Int(0));
        assert_eq!(hi, &Value::Int(14));
    }

    #[test]
    fn deletions_drift_and_trigger_recompute() {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        let mut rel = Relation::empty(Arc::clone(&schema));
        for i in 0..400_i64 {
            rel.insert(tuple![i], 1).expect("typed");
        }
        let mut s = TableStats::analyze(&rel);

        // delete 300 of the 400 values in one commit: drift blows past
        // max(64, 100/4) and forces a full re-analyze of the post state
        let mut delta = SignedBag::new();
        let mut post = rel.clone();
        for i in 100..400_i64 {
            delta.insert(tuple![i], -1).expect("delta");
            post.remove(&tuple![i], 1);
        }
        s.apply_delta(&delta, &post);
        assert_eq!(s.rows, 100);
        assert_eq!(s.full_scans, 2, "drift fallback re-analyzed");
        assert_eq!(s.drift, 0, "fallback resets drift");
        assert_eq!(s.column_distinct(1), 100, "post-fallback stats exact");
        let (_, hi) = s.column_bounds(1).expect("bounds");
        assert_eq!(hi, &Value::Int(99), "bound shrank after re-analyze");
    }

    #[test]
    fn small_deletions_stay_incremental() {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        let mut rel = Relation::empty(Arc::clone(&schema));
        for i in 0..1000_i64 {
            rel.insert(tuple![i], 1).expect("typed");
        }
        let mut s = TableStats::analyze(&rel);
        let mut delta = SignedBag::new();
        let mut post = rel.clone();
        delta.insert(tuple![5_i64], -1).expect("delta");
        post.remove(&tuple![5_i64], 1);
        s.apply_delta(&delta, &post);
        assert_eq!(s.full_scans, 1, "one deletion must not rescan");
        assert_eq!(s.rows, 999);
        // distinct stays within the sketch's error envelope (≈6% RSE)
        let d = s.column_distinct(1) as f64;
        assert!((d - 999.0).abs() / 999.0 < 0.25, "distinct {d}");
    }

    #[test]
    fn catalog_cache_keyed_by_logical_time() {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int]))
            .expect("fresh");
        let mut db = Database::new(schema);
        db.update_with("r", |r| {
            let mut r = r.clone();
            r.insert(tuple![1_i64], 1)?;
            Ok(r)
        })
        .expect("update");
        let mut cs = CatalogStats::from_database(&db).expect("analyze");
        let scans = cs.full_scans();
        // same logical time: refresh is a no-op
        cs.refresh_from(&db).expect("refresh");
        assert_eq!(cs.full_scans(), scans, "cache hit must not rescan");
        // time moves: refresh rescans
        db.tick();
        assert!(!cs.is_current(&db));
        cs.refresh_from(&db).expect("refresh");
        assert!(cs.is_current(&db));
    }
}
