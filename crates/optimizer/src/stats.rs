//! Table statistics for cardinality estimation.

use mera_core::prelude::*;
use rustc_hash::{FxHashMap, FxHashSet};

/// Statistics for one column: the number of distinct values observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Distinct values in the column (≥ 1 unless the table is empty).
    pub distinct: u64,
}

/// Statistics for one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Total tuples, counted with multiplicity.
    pub rows: u64,
    /// Distinct tuples.
    pub distinct_rows: u64,
    /// Per-column statistics, in attribute order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes exact statistics by scanning a relation once.
    pub fn analyze(rel: &Relation) -> TableStats {
        let arity = rel.schema().arity();
        let mut seen: Vec<FxHashSet<&Value>> = (0..arity).map(|_| FxHashSet::default()).collect();
        for t in rel.support() {
            for (i, v) in t.values().iter().enumerate() {
                seen[i].insert(v);
            }
        }
        TableStats {
            rows: rel.len(),
            distinct_rows: rel.distinct_len() as u64,
            columns: seen
                .into_iter()
                .map(|s| ColumnStats {
                    distinct: s.len() as u64,
                })
                .collect(),
        }
    }

    /// Distinct count of a 1-based column, defaulting to the distinct row
    /// count when out of range (conservative).
    pub fn column_distinct(&self, attr: usize) -> u64 {
        self.columns
            .get(attr.wrapping_sub(1))
            .map(|c| c.distinct.max(1))
            .unwrap_or_else(|| self.distinct_rows.max(1))
    }
}

/// Statistics for every relation in a database.
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    tables: FxHashMap<String, TableStats>,
}

impl CatalogStats {
    /// Empty statistics (every lookup falls back to defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes every relation of a database.
    pub fn from_database(db: &Database) -> CoreResult<CatalogStats> {
        let mut tables = FxHashMap::default();
        for name in db.relation_names() {
            tables.insert(name.to_owned(), TableStats::analyze(db.relation(name)?));
        }
        Ok(CatalogStats { tables })
    }

    /// Registers statistics for a named relation.
    pub fn insert(&mut self, name: impl Into<String>, stats: TableStats) {
        self.tables.insert(name.into(), stats);
    }

    /// Statistics for a relation, if known.
    pub fn get(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use std::sync::Arc;

    #[test]
    fn analyze_counts_rows_and_distincts() {
        let rel = Relation::from_counted(
            Arc::new(Schema::anon(&[DataType::Int, DataType::Str])),
            vec![
                (tuple![1_i64, "a"], 3),
                (tuple![2_i64, "a"], 1),
                (tuple![2_i64, "b"], 2),
            ],
        )
        .expect("well-typed");
        let s = TableStats::analyze(&rel);
        assert_eq!(s.rows, 6);
        assert_eq!(s.distinct_rows, 3);
        assert_eq!(s.columns[0].distinct, 2);
        assert_eq!(s.columns[1].distinct, 2);
        assert_eq!(s.column_distinct(1), 2);
        // out-of-range column falls back to distinct rows
        assert_eq!(s.column_distinct(9), 3);
    }

    #[test]
    fn empty_relation_stats() {
        let rel = Relation::empty(Arc::new(Schema::anon(&[DataType::Int])));
        let s = TableStats::analyze(&rel);
        assert_eq!(s.rows, 0);
        assert_eq!(s.column_distinct(1), 1); // clamped to ≥ 1
    }

    #[test]
    fn catalog_stats_from_database() {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int]))
            .expect("fresh");
        let mut db = Database::new(schema);
        db.update_with("r", |r| {
            let mut r = r.clone();
            r.insert(tuple![7_i64], 4)?;
            Ok(r)
        })
        .expect("update");
        let cs = CatalogStats::from_database(&db).expect("analyze");
        assert_eq!(cs.get("r").expect("present").rows, 4);
        assert!(cs.get("zzz").is_none());
    }
}
