//! Cost-based access-path selection: index-nested-loop versus hash join.
//!
//! The physical engine (`mera-eval`) can execute an equi-join whose right
//! side scans an indexed base relation as an *index-nested-loop* join —
//! probing the maintained hash index per left row instead of building a
//! fresh hash table over the right side. Whether that wins is a
//! statistics question: a probe is random access
//! ([`INDEX_PROBE_FACTOR`](crate::cost::INDEX_PROBE_FACTOR) × a streamed
//! row), but the build side is skipped entirely, so the index pays off
//! exactly when the probe side is smaller than the indexed side.
//!
//! The decision is communicated as [`IndexJoinHints`] — `(relation,
//! sorted key attrs)` pairs the physical planner is allowed to take the
//! index path for. Unhinted joins keep the hash-join default, so a stale
//! or missing statistic degrades the plan, never its correctness.

use mera_core::prelude::*;
use mera_eval::IndexJoinHints;
use mera_expr::{CmpOp, RelExpr, ScalarExpr, SchemaProvider};

use crate::cost::{estimate_rows, INDEX_PROBE_FACTOR};
use crate::stats::CatalogStats;

/// Walks `expr` and returns the joins that should execute as
/// index-nested-loop, given the available index definitions (`(relation,
/// sorted key attrs)`, as reported by the catalog's `IndexSet`).
///
/// A join qualifies when its right side is a bare scan of an indexed
/// relation, some index's key set is covered by the cross-side equality
/// conjuncts (leftover equalities become residual filters on the probe
/// result), and the cost model ranks probing cheaper than building:
/// `probe_factor · |L| < |L| + |R|`. Among usable indexes the one
/// matching the most equi keys wins — more matched keys mean a more
/// selective probe.
pub fn choose_access_paths<P: SchemaProvider>(
    expr: &RelExpr,
    stats: &CatalogStats,
    index_defs: &[(String, Vec<usize>)],
    provider: &P,
) -> CoreResult<IndexJoinHints> {
    let mut hints = IndexJoinHints::default();
    if index_defs.is_empty() {
        return Ok(hints);
    }
    walk(expr, stats, index_defs, provider, &mut hints)?;
    Ok(hints)
}

fn walk<P: SchemaProvider>(
    expr: &RelExpr,
    stats: &CatalogStats,
    index_defs: &[(String, Vec<usize>)],
    provider: &P,
    hints: &mut IndexJoinHints,
) -> CoreResult<()> {
    for child in expr.children() {
        walk(child, stats, index_defs, provider, hints)?;
    }
    let RelExpr::Join {
        left,
        right,
        predicate,
    } = expr
    else {
        return Ok(());
    };
    let RelExpr::Scan(rel) = right.as_ref() else {
        return Ok(());
    };
    let la = left.schema(provider)?.arity();
    let ra = right.schema(provider)?.arity();
    let Some(keys) = equi_right_keys(predicate, la, ra) else {
        return Ok(());
    };
    // best usable index: every index key must be an equi key (the probe
    // must bind the full index key), ties broken toward the longest —
    // and then lexicographically smallest — key set
    let mut best: Option<&Vec<usize>> = None;
    for (r, k) in index_defs {
        if r != rel || !k.iter().all(|a| keys.contains(a)) {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => k.len() > b.len() || (k.len() == b.len() && k < b),
        };
        if better {
            best = Some(k);
        }
    }
    let Some(index_keys) = best else {
        return Ok(());
    };
    let probe_rows = estimate_rows(left, stats);
    let build_rows = estimate_rows(right, stats);
    // hash join pays build + probe; index-nested-loop pays dearer probes
    // but no build — output cost is identical on both sides
    if INDEX_PROBE_FACTOR * probe_rows < probe_rows + build_rows {
        hints.insert((rel.clone(), index_keys.clone()));
    }
    Ok(())
}

/// The right-side key set (1-based, sorted, deduped) of the predicate's
/// cross-side equality conjuncts, or `None` when there are none. An index
/// need only match a subset of these keys: the executor evaluates the
/// leftover equalities (and any non-equality conjuncts) as a residual
/// filter over the probe result.
fn equi_right_keys(predicate: &ScalarExpr, la: usize, ra: usize) -> Option<Vec<usize>> {
    let mut keys = Vec::new();
    for conj in predicate.conjuncts() {
        let ScalarExpr::Cmp(CmpOp::Eq, a, b) = conj else {
            continue;
        };
        let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) else {
            continue;
        };
        let (i, j) = (*i, *j);
        let (_, r) = if i <= la && j > la && j <= la + ra {
            (i, j - la)
        } else if j <= la && i > la && i <= la + ra {
            (j, i - la)
        } else {
            continue;
        };
        keys.push(r);
    }
    if keys.is_empty() {
        return None;
    }
    keys.sort_unstable();
    keys.dedup();
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("fact", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
            .with("dim", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
    }

    fn stats(fact_rows: u64, dim_rows: u64) -> CatalogStats {
        let mut cs = CatalogStats::new();
        cs.insert(
            "fact",
            TableStats::synthetic(fact_rows, fact_rows, &[100, 100]),
        );
        cs.insert(
            "dim",
            TableStats::synthetic(dim_rows, dim_rows, &[100, 100]),
        );
        cs
    }

    fn join() -> RelExpr {
        RelExpr::scan("fact").join(
            RelExpr::scan("dim"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
    }

    #[test]
    fn small_probe_side_takes_the_index() {
        let cat = catalog();
        let defs = vec![("dim".to_owned(), vec![1])];
        // 10 probes against a 10_000-row indexed side: skip the build
        let hints = choose_access_paths(&join(), &stats(10, 10_000), &defs, &cat).expect("chooses");
        assert!(hints.contains(&("dim".to_owned(), vec![1])));
    }

    #[test]
    fn large_probe_side_keeps_hash_join() {
        let cat = catalog();
        let defs = vec![("dim".to_owned(), vec![1])];
        // 10_000 probes against a 10-row build: hash join wins
        let hints = choose_access_paths(&join(), &stats(10_000, 10), &defs, &cat).expect("chooses");
        assert!(hints.is_empty());
    }

    #[test]
    fn unindexed_keys_never_hinted() {
        let cat = catalog();
        let defs = vec![("dim".to_owned(), vec![2])]; // wrong column
        let hints = choose_access_paths(&join(), &stats(10, 10_000), &defs, &cat).expect("chooses");
        assert!(hints.is_empty());
    }

    #[test]
    fn partial_key_index_is_hinted_for_multi_key_joins() {
        let cat = catalog();
        // two equi conjuncts (%1 = %3 ∧ %2 = %4), but only a single-column
        // index on dim: the probe binds [1], the leftover equality is
        // residual-filtered by the executor
        let e = RelExpr::scan("fact").join(
            RelExpr::scan("dim"),
            ScalarExpr::attr(1)
                .eq(ScalarExpr::attr(3))
                .and(ScalarExpr::attr(2).eq(ScalarExpr::attr(4))),
        );
        let defs = vec![("dim".to_owned(), vec![1])];
        let hints = choose_access_paths(&e, &stats(10, 10_000), &defs, &cat).expect("chooses");
        assert!(hints.contains(&("dim".to_owned(), vec![1])));

        // a composite index covering both keys is preferred over the
        // single-column one — more bound keys, more selective probe
        let defs = vec![("dim".to_owned(), vec![1]), ("dim".to_owned(), vec![1, 2])];
        let hints = choose_access_paths(&e, &stats(10, 10_000), &defs, &cat).expect("chooses");
        assert_eq!(hints.len(), 1);
        assert!(hints.contains(&("dim".to_owned(), vec![1, 2])));
    }

    #[test]
    fn nested_joins_are_visited() {
        let cat = catalog();
        let defs = vec![("dim".to_owned(), vec![1])];
        let e = join().select(ScalarExpr::attr(2).eq(ScalarExpr::int(1)));
        let hints = choose_access_paths(&e, &stats(10, 10_000), &defs, &cat).expect("chooses");
        assert_eq!(hints.len(), 1);
    }
}
