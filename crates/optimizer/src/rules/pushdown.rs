//! Selection and projection pushdown.
//!
//! The distribution laws of Theorem 3.2 —
//! `σ_φ(E₁ ⊎ E₂) = σ_φE₁ ⊎ σ_φE₂` and `π_a(E₁ ⊎ E₂) = π_aE₁ ⊎ π_aE₂` —
//! plus the analogous bag identities for difference and intersection
//! (selection commutes with both: the multiplicity of a tuple failing `φ`
//! is 0 on both sides of each law), and the classic split of a selection
//! over a product/join into per-side selections.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr};

use super::{Precondition, Rule, RuleContext};

/// Pushes `σ_φ` through `⊎`, `−` and `∩` onto both operands.
///
/// * union: Theorem 3.2 (exact distribution);
/// * difference: `σ(E₁−E₂) = σE₁ − σE₂` — pointwise, a tuple failing φ has
///   multiplicity 0 on both sides, and one passing φ keeps
///   `max(0, m₁−m₂)`;
/// * intersection: same reasoning with `min`.
pub struct PushSelectionThroughBinary;

impl Rule for PushSelectionThroughBinary {
    fn name(&self) -> &'static str {
        "push-selection-through-binary"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "Theorem 3.2 for ⊎; for − and ∩ a tuple failing φ has \
             multiplicity 0 on both sides and one passing φ keeps \
             max(0,m₁−m₂) / min(m₁,m₂)",
        )
    }

    fn apply(&self, expr: &RelExpr, _ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        let RelExpr::Select { input, predicate } = expr else {
            return Ok(None);
        };
        let rebuilt = match input.as_ref() {
            RelExpr::Union(l, r) => RelExpr::Union(
                Arc::new(l.as_ref().clone().select(predicate.clone())),
                Arc::new(r.as_ref().clone().select(predicate.clone())),
            ),
            RelExpr::Difference(l, r) => RelExpr::Difference(
                Arc::new(l.as_ref().clone().select(predicate.clone())),
                Arc::new(r.as_ref().clone().select(predicate.clone())),
            ),
            RelExpr::Intersect(l, r) => RelExpr::Intersect(
                Arc::new(l.as_ref().clone().select(predicate.clone())),
                Arc::new(r.as_ref().clone().select(predicate.clone())),
            ),
            _ => return Ok(None),
        };
        Ok(Some(rebuilt))
    }
}

/// Pushes the single-side conjuncts of a selection over a product or join
/// into the corresponding operand:
/// `σ_{φL ∧ φR ∧ φX}(E₁ × E₂) = σ_{φX}(σ_{φL}E₁ × σ_{φR}E₂)` where `φL`
/// references only left attributes, `φR` only right attributes (re-based),
/// and `φX` the genuinely mixed remainder.
pub struct PushSelectionIntoJoin;

impl PushSelectionIntoJoin {
    /// Splits conjuncts of `predicate` (over `left ⊕ right`) into
    /// (left-only, right-only re-based, mixed).
    fn split(
        predicate: &ScalarExpr,
        left_arity: usize,
    ) -> CoreResult<(Vec<ScalarExpr>, Vec<ScalarExpr>, Vec<ScalarExpr>)> {
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut mixed = Vec::new();
        for conj in predicate.conjuncts() {
            let used = conj.attrs_used();
            if used.is_empty() {
                // constant conjunct: keep where it is (folding handles it)
                mixed.push(conj.clone());
            } else if used.iter().all(|&i| i <= left_arity) {
                left.push(conj.clone());
            } else if used.iter().all(|&i| i > left_arity) {
                right.push(conj.clone().map_attrs(&mut |i| Ok(i - left_arity))?);
            } else {
                mixed.push(conj.clone());
            }
        }
        Ok((left, right, mixed))
    }
}

impl Rule for PushSelectionIntoJoin {
    fn name(&self) -> &'static str {
        "push-selection-into-join"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "single-side conjuncts of a product/join selection commute with \
             ×: the product multiplies multiplicities and each indicator \
             factors to its own side",
        )
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        // two shapes: σ over × / ⋈, and a ⋈ whose own predicate has
        // single-side conjuncts
        match expr {
            RelExpr::Select { input, predicate } => {
                let (l, r, join_pred) = match input.as_ref() {
                    RelExpr::Product(l, r) => (l, r, None),
                    RelExpr::Join {
                        left,
                        right,
                        predicate: jp,
                    } => (left, right, Some(jp.clone())),
                    _ => return Ok(None),
                };
                let la = ctx.arity(l)?;
                let (lp, rp, mixed) = Self::split(predicate, la)?;
                if lp.is_empty() && rp.is_empty() {
                    return Ok(None);
                }
                let mut new_left = l.as_ref().clone();
                if !lp.is_empty() {
                    new_left = new_left.select(ScalarExpr::conjoin(lp));
                }
                let mut new_right = r.as_ref().clone();
                if !rp.is_empty() {
                    new_right = new_right.select(ScalarExpr::conjoin(rp));
                }
                let core = match join_pred {
                    None => new_left.product(new_right),
                    Some(jp) => new_left.join(new_right, jp),
                };
                Ok(Some(if mixed.is_empty() {
                    core
                } else {
                    core.select(ScalarExpr::conjoin(mixed))
                }))
            }
            RelExpr::Join {
                left,
                right,
                predicate,
            } => {
                let la = ctx.arity(left)?;
                let (lp, rp, mixed) = Self::split(predicate, la)?;
                if lp.is_empty() && rp.is_empty() {
                    return Ok(None);
                }
                let mut new_left = left.as_ref().clone();
                if !lp.is_empty() {
                    new_left = new_left.select(ScalarExpr::conjoin(lp));
                }
                let mut new_right = right.as_ref().clone();
                if !rp.is_empty() {
                    new_right = new_right.select(ScalarExpr::conjoin(rp));
                }
                // the remaining mixed conjuncts stay as the join predicate;
                // if none remain the join degenerates to a product
                Ok(Some(if mixed.is_empty() {
                    new_left.product(new_right)
                } else {
                    new_left.join(new_right, ScalarExpr::conjoin(mixed))
                }))
            }
            _ => Ok(None),
        }
    }
}

/// Pushes `π_a` through `⊎` (Theorem 3.2's second law).
pub struct PushProjectionThroughUnion;

impl Rule for PushProjectionThroughUnion {
    fn name(&self) -> &'static str {
        "push-projection-through-union"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "Theorem 3.2: π_a(E₁ ⊎ E₂) = π_aE₁ ⊎ π_aE₂ — multiplicities add \
             before or after projecting, the sums commute",
        )
    }

    fn apply(&self, expr: &RelExpr, _ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        let RelExpr::Project { input, attrs } = expr else {
            return Ok(None);
        };
        let RelExpr::Union(l, r) = input.as_ref() else {
            return Ok(None);
        };
        Ok(Some(RelExpr::Union(
            Arc::new(RelExpr::Project {
                input: Arc::new(l.as_ref().clone()),
                attrs: attrs.clone(),
            }),
            Arc::new(RelExpr::Project {
                input: Arc::new(r.as_ref().clone()),
                attrs: attrs.clone(),
            }),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::CmpOp;

    fn ctx_catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh")
            .with("s", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
    }

    fn apply(rule: &dyn Rule, e: &RelExpr) -> Option<RelExpr> {
        let cat = ctx_catalog();
        let ctx = RuleContext::new(&cat);
        rule.apply(e, &ctx).expect("rule application")
    }

    #[test]
    fn selection_distributes_over_union() {
        let p = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        let e = RelExpr::scan("r")
            .union(RelExpr::scan("r"))
            .select(p.clone());
        let out = apply(&PushSelectionThroughBinary, &e).expect("applies");
        let want = RelExpr::scan("r")
            .select(p.clone())
            .union(RelExpr::scan("r").select(p));
        assert_eq!(out, want);
    }

    #[test]
    fn selection_distributes_over_difference_and_intersection() {
        let p = ScalarExpr::attr(2).eq(ScalarExpr::str("x"));
        for mk in [RelExpr::difference, RelExpr::intersect] {
            let e = mk(RelExpr::scan("r"), RelExpr::scan("r")).select(p.clone());
            let out = apply(&PushSelectionThroughBinary, &e).expect("applies");
            let want = mk(
                RelExpr::scan("r").select(p.clone()),
                RelExpr::scan("r").select(p.clone()),
            );
            assert_eq!(out, want);
        }
    }

    #[test]
    fn selection_not_pushed_through_other_nodes() {
        let p = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        let e = RelExpr::scan("r").distinct().select(p);
        assert!(apply(&PushSelectionThroughBinary, &e).is_none());
    }

    #[test]
    fn split_selection_over_product() {
        // σ[%1=1 ∧ %3=2 ∧ %1=%3](r × s)
        let pred = ScalarExpr::attr(1)
            .eq(ScalarExpr::int(1))
            .and(ScalarExpr::attr(3).eq(ScalarExpr::int(2)))
            .and(ScalarExpr::attr(1).eq(ScalarExpr::attr(3)));
        let e = RelExpr::scan("r").product(RelExpr::scan("s")).select(pred);
        let out = apply(&PushSelectionIntoJoin, &e).expect("applies");
        // left conjunct stays %1=1; right conjunct re-bases to %1=2;
        // mixed conjunct remains on top
        let want = RelExpr::scan("r")
            .select(ScalarExpr::attr(1).eq(ScalarExpr::int(1)))
            .product(RelExpr::scan("s").select(ScalarExpr::attr(1).eq(ScalarExpr::int(2))))
            .select(ScalarExpr::attr(1).eq(ScalarExpr::attr(3)));
        assert_eq!(out, want);
    }

    #[test]
    fn join_predicate_single_side_conjuncts_sink() {
        // r ⋈[%1=%3 ∧ %2='x'] s → σ[%2='x']r ⋈[%1=%3] s
        let pred = ScalarExpr::attr(1)
            .eq(ScalarExpr::attr(3))
            .and(ScalarExpr::attr(2).eq(ScalarExpr::str("x")));
        let e = RelExpr::scan("r").join(RelExpr::scan("s"), pred);
        let out = apply(&PushSelectionIntoJoin, &e).expect("applies");
        let want = RelExpr::scan("r")
            .select(ScalarExpr::attr(2).eq(ScalarExpr::str("x")))
            .join(
                RelExpr::scan("s"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            );
        assert_eq!(out, want);
    }

    #[test]
    fn join_degenerates_to_product_when_all_conjuncts_sink() {
        let pred = ScalarExpr::attr(1)
            .eq(ScalarExpr::int(5))
            .and(ScalarExpr::attr(4).cmp(CmpOp::Gt, ScalarExpr::int(0)));
        let e = RelExpr::scan("r").join(RelExpr::scan("s"), pred);
        let out = apply(&PushSelectionIntoJoin, &e).expect("applies");
        let want = RelExpr::scan("r")
            .select(ScalarExpr::attr(1).eq(ScalarExpr::int(5)))
            .product(
                RelExpr::scan("s").select(ScalarExpr::attr(2).cmp(CmpOp::Gt, ScalarExpr::int(0))),
            );
        assert_eq!(out, want);
    }

    #[test]
    fn pure_cross_predicate_does_not_apply() {
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let e = RelExpr::scan("r").join(RelExpr::scan("s"), pred);
        assert!(apply(&PushSelectionIntoJoin, &e).is_none());
    }

    #[test]
    fn projection_distributes_over_union() {
        let e = RelExpr::scan("r").union(RelExpr::scan("r")).project(&[2]);
        let out = apply(&PushProjectionThroughUnion, &e).expect("applies");
        let want = RelExpr::scan("r")
            .project(&[2])
            .union(RelExpr::scan("r").project(&[2]));
        assert_eq!(out, want);
        // does not fire elsewhere
        let e = RelExpr::scan("r").distinct().project(&[1]);
        assert!(apply(&PushProjectionThroughUnion, &e).is_none());
    }
}
