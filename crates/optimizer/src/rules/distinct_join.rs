//! Cost-gated δ placement: `δ(E₁ ⋈ E₂) → δE₁ ⋈ δE₂`.
//!
//! The law is unconditional in the bag algebra: the support of `E₁ ⋈ E₂`
//! is the set of concatenated pairs satisfying the predicate, so taking δ
//! of the join gives each such pair multiplicity 1 — exactly what joining
//! the two δ-reduced operands produces (1 · 1 = 1 per pair, Definition
//! 3.2). Unlike δ-over-⊎ (Theorem 3.3), no disjointness obligation
//! arises.
//!
//! What is *not* unconditional is the benefit: pushing δ below the join
//! trades one dedup of the (large) join output for two dedups of the
//! inputs plus a smaller join. That wins exactly when the inputs carry
//! real duplication, so the rule is **cost-gated** — it only fires when
//! the maintained statistics ([`CatalogStats`](crate::stats::CatalogStats)
//! via [`RuleContext::stats`]) estimate the duplication factor high enough
//! to pay for the extra operators. Without statistics the rule declines:
//! a cost-based rewrite without a cost model is a coin flip.

use mera_core::prelude::*;
use mera_expr::RelExpr;

use crate::cost::{estimate_distinct_rows, estimate_distinct_rows_keyed, estimate_rows};

use super::{Precondition, Rule, RuleContext};

/// Minimum estimated input-duplication factor (duplicated rows per
/// distinct row, multiplied across both sides) for the push to fire.
const MIN_DUPLICATION: f64 = 2.0;

/// `δ(E₁ ⋈ E₂) → δE₁ ⋈ δE₂` (also over `×`), gated on estimated input
/// duplication.
pub struct PushDistinctIntoJoin;

impl Rule for PushDistinctIntoJoin {
    fn name(&self) -> &'static str {
        "push-distinct-into-join"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "δ distributes over ⋈ and × unconditionally: the join of the \
             δ-reduced operands has multiplicity 1·1 = 1 on exactly the \
             support of the original join (Definition 3.2)",
        )
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        // cost-gated: no statistics, no opinion
        let Some(stats) = ctx.stats() else {
            return Ok(None);
        };
        let RelExpr::Distinct(input) = expr else {
            return Ok(None);
        };
        let (l, r, predicate) = match input.as_ref() {
            RelExpr::Join {
                left,
                right,
                predicate,
            } => (left, right, Some(predicate.clone())),
            RelExpr::Product(l, r) => (l, r, None),
            _ => return Ok(None),
        };
        // already pushed (both sides duplicate-free by construction)
        if matches!(l.as_ref(), RelExpr::Distinct(_)) && matches!(r.as_ref(), RelExpr::Distinct(_))
        {
            return Ok(None);
        }
        // with key constraints attached, a provably-duplicate-free side has
        // duplication factor exactly 1 — the sketch estimate is overruled
        let dup = |e: &RelExpr| {
            let distinct = match ctx.keys() {
                Some(keys) => estimate_distinct_rows_keyed(e, stats, &ctx.as_provider(), keys),
                None => estimate_distinct_rows(e, stats),
            };
            (estimate_rows(e, stats) / distinct.max(1.0)).max(1.0)
        };
        if dup(l) * dup(r) < MIN_DUPLICATION {
            return Ok(None);
        }
        let dl = l.as_ref().clone().distinct();
        let dr = r.as_ref().clone().distinct();
        Ok(Some(match predicate {
            Some(p) => dl.join(dr, p),
            None => dl.product(dr),
        }))
    }
}
