//! Fusion rules: adjacent-operator combinations.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr};

use super::{Condition, Precondition, Rule, RuleContext};

/// `σ_p(σ_q(E)) → σ_{q ∧ p}(E)`.
///
/// Bag-valid because selection multiplies multiplicities by indicator
/// functions, which compose by conjunction. The inner predicate goes
/// *first* in the conjunction to preserve evaluation order (and therefore
/// definedness: `q` may guard a division in `p`).
pub struct FuseSelections;

impl Rule for FuseSelections {
    fn name(&self) -> &'static str {
        "fuse-selections"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "σ_p(σ_q(E)) = σ_{q∧p}(E): selection indicator functions compose \
             by conjunction, pointwise per multiplicity",
        )
    }

    fn apply(&self, expr: &RelExpr, _ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        let RelExpr::Select { input, predicate } = expr else {
            return Ok(None);
        };
        let RelExpr::Select {
            input: inner_input,
            predicate: inner_pred,
        } = input.as_ref()
        else {
            return Ok(None);
        };
        Ok(Some(RelExpr::Select {
            input: Arc::new(inner_input.as_ref().clone()),
            predicate: inner_pred.clone().and(predicate.clone()),
        }))
    }
}

/// Theorem 3.1 applied in the profitable direction:
/// `σ_φ(E₁ × E₂) → E₁ ⋈_φ E₂` whenever `φ` contains a cross-side equality
/// — the join node is what the physical planner turns into a hash join.
pub struct SelectProductToJoin;

impl Rule for SelectProductToJoin {
    fn name(&self) -> &'static str {
        "select-product-to-join"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "Theorem 3.1: E₁ ⋈_φ E₂ is *defined* as σ_φ(E₁ × E₂) in the \
             multi-set algebra (Definition 3.2)",
        )
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        let RelExpr::Select { input, predicate } = expr else {
            return Ok(None);
        };
        let RelExpr::Product(l, r) = input.as_ref() else {
            return Ok(None);
        };
        // only rewrite when the predicate actually has an equi-key the
        // engine can hash on; otherwise σ(×) and ⋈ plan identically
        let la = ctx.arity(l)?;
        let ra = ctx.arity(r)?;
        let has_equi = predicate.conjuncts().iter().any(|c| {
            if let ScalarExpr::Cmp(mera_expr::CmpOp::Eq, a, b) = c {
                if let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) {
                    let cross = |x: usize, y: usize| x <= la && y > la && y <= la + ra;
                    return cross(*i, *j) || cross(*j, *i);
                }
            }
            false
        });
        if !has_equi {
            return Ok(None);
        }
        Ok(Some(RelExpr::Join {
            left: Arc::new(l.as_ref().clone()),
            right: Arc::new(r.as_ref().clone()),
            predicate: predicate.clone(),
        }))
    }
}

/// Removes redundant `δ` applications:
///
/// * `δ(δE) → δE` (idempotence),
/// * `δ(γ…E) → γ…E` — a group-by result is duplicate-free by construction
///   (one tuple per group, Definition 3.4),
/// * `δ(E)` where `E` is a `Values` literal already duplicate-free,
/// * `δ(E)` where the property-inference pass proves `E` duplicate-free
///   from declared key constraints ([`mera_analyze::infer_props`]) — e.g.
///   `δ(σ_p(r))` for a keyed relation `r`, or a join that preserves a key.
pub struct DistinctPruning;

impl Rule for DistinctPruning {
    fn name(&self) -> &'static str {
        "distinct-pruning"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "δE = E whenever every tuple of E has multiplicity 1 \
             (δ is the identity on sets)",
        )
        .with(Condition::OutputDuplicateFree)
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        let RelExpr::Distinct(input) = expr else {
            return Ok(None);
        };
        // the matching static property lives in the analyzer, so the
        // driver's precondition discharge re-proves exactly this claim
        let provable = mera_analyze::duplicate_free(input)
            || ctx.keys().is_some_and(|keys| {
                mera_analyze::duplicate_free_with(input, &ctx.as_provider(), keys)
            });
        if provable {
            Ok(Some(input.as_ref().clone()))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::{Aggregate, CmpOp};

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh")
            .with("s", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
    }

    fn apply(rule: &dyn Rule, e: &RelExpr) -> Option<RelExpr> {
        let cat = catalog();
        let ctx = RuleContext::new(&cat);
        rule.apply(e, &ctx).expect("rule application")
    }

    #[test]
    fn selections_fuse_inner_first() {
        let q = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        let p = ScalarExpr::attr(2).eq(ScalarExpr::str("x"));
        let e = RelExpr::scan("r").select(q.clone()).select(p.clone());
        let out = apply(&FuseSelections, &e).expect("applies");
        let want = RelExpr::scan("r").select(q.and(p));
        assert_eq!(out, want);
    }

    #[test]
    fn select_product_with_equi_becomes_join() {
        let p = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let e = RelExpr::scan("r")
            .product(RelExpr::scan("s"))
            .select(p.clone());
        let out = apply(&SelectProductToJoin, &e).expect("applies");
        let want = RelExpr::scan("r").join(RelExpr::scan("s"), p);
        assert_eq!(out, want);
    }

    #[test]
    fn select_product_without_equi_stays() {
        let p = ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3));
        let e = RelExpr::scan("r").product(RelExpr::scan("s")).select(p);
        assert!(apply(&SelectProductToJoin, &e).is_none());
        // same-side equality is not a join key
        let p = ScalarExpr::attr(1).eq(ScalarExpr::attr(2));
        let e = RelExpr::scan("r").product(RelExpr::scan("s")).select(p);
        assert!(apply(&SelectProductToJoin, &e).is_none());
    }

    #[test]
    fn double_distinct_pruned() {
        let e = RelExpr::scan("r").distinct().distinct();
        let out = apply(&DistinctPruning, &e).expect("applies");
        assert_eq!(out, RelExpr::scan("r").distinct());
    }

    #[test]
    fn distinct_over_group_by_pruned() {
        let g = RelExpr::scan("r").group_by(&[2], Aggregate::Cnt, 1);
        let e = g.clone().distinct();
        let out = apply(&DistinctPruning, &e).expect("applies");
        assert_eq!(out, g);
    }

    #[test]
    fn distinct_over_selected_distinct_pruned() {
        let inner = RelExpr::scan("r")
            .distinct()
            .select(ScalarExpr::attr(1).eq(ScalarExpr::int(1)));
        let e = inner.clone().distinct();
        let out = apply(&DistinctPruning, &e).expect("applies");
        assert_eq!(out, inner);
    }

    #[test]
    fn distinct_over_duplicate_free_values_pruned() {
        let rel = relation_of(Schema::anon(&[DataType::Int]), vec![tuple![1_i64]]).expect("ok");
        let v = RelExpr::values(rel);
        let out = apply(&DistinctPruning, &v.clone().distinct()).expect("applies");
        assert_eq!(out, v);
        // but NOT when the literal has duplicates
        let rel = relation_of(
            Schema::anon(&[DataType::Int]),
            vec![tuple![1_i64], tuple![1_i64]],
        )
        .expect("ok");
        let v = RelExpr::values(rel);
        assert!(apply(&DistinctPruning, &v.distinct()).is_none());
    }

    #[test]
    fn plain_distinct_kept() {
        let e = RelExpr::scan("r").distinct();
        assert!(apply(&DistinctPruning, &e).is_none());
    }

    #[test]
    fn distinct_pruned_via_declared_key() {
        let cat = catalog();
        let mut keys = mera_analyze::KeyEnv::new();
        keys.declare("r", vec![1]);
        let ctx = RuleContext::new(&cat).with_keys(&keys);
        // δ(σ_p(r)) with r keyed on %1: the selection preserves the key,
        // so the input is provably duplicate-free — δ is the identity
        let inner = RelExpr::scan("r").select(ScalarExpr::attr(1).eq(ScalarExpr::int(1)));
        let e = inner.clone().distinct();
        let out = DistinctPruning.apply(&e, &ctx).expect("rule application");
        assert_eq!(out, Some(inner));
        // without the key environment the same plan keeps its δ
        let bare = RuleContext::new(&cat);
        assert!(DistinctPruning
            .apply(&e, &bare)
            .expect("rule application")
            .is_none());
        // a key on an unrelated relation licenses nothing
        let mut other = mera_analyze::KeyEnv::new();
        other.declare("s", vec![1]);
        let ctx = RuleContext::new(&cat).with_keys(&other);
        assert!(DistinctPruning
            .apply(&e, &ctx)
            .expect("rule application")
            .is_none());
    }
}
