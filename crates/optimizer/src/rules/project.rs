//! Projection insertion before group-by — the transformation of
//! Example 3.2.
//!
//! The paper's example inserts `π_(alcperc,country)` between the join and
//! the group-by "to reduce the size of intermediate results", and stresses
//! that under *multi-set* semantics both expressions yield the same result
//! (under set semantics the insertion would be wrong, because the
//! projection would collapse duplicates feeding the average).

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::RelExpr;

use super::{Precondition, Rule, RuleContext};

/// `γ_{a,f,p}(E) → γ_{a',f,p'}(π_{a∪{p}}(E))` when `E` carries attributes
/// that neither the grouping list nor the aggregate needs.
///
/// Sound in the bag algebra because projection preserves the total
/// multiplicity of each group (collapsing tuples *sum*), so every
/// aggregate — including CNT and AVG, which are duplicate-sensitive —
/// sees exactly the same value bag.
pub struct ProjectBeforeGroupBy;

impl Rule for ProjectBeforeGroupBy {
    fn name(&self) -> &'static str {
        "project-before-group-by"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "Example 3.2: π collapsing tuples *sums* multiplicities, so every \
             group hands its aggregate the same value bag (bag semantics only \
             — unsound under set semantics)",
        )
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        let RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } = expr
        else {
            return Ok(None);
        };
        let arity = ctx.arity(input)?;
        // needed attributes: grouping keys plus the aggregated one
        let mut needed: Vec<usize> = keys.clone();
        if !needed.contains(attr) {
            needed.push(*attr);
        }
        needed.sort_unstable();
        if needed.len() >= arity {
            return Ok(None); // nothing to prune
        }
        // position (1-based) of an old attribute inside the pruned schema
        let pos = |old: usize| -> usize {
            needed
                .iter()
                .position(|&n| n == old)
                .expect("needed contains all referenced attrs")
                + 1
        };
        let new_keys: Vec<usize> = keys.iter().map(|&k| pos(k)).collect();
        let new_attr = pos(*attr);
        let pruned = RelExpr::Project {
            input: Arc::new(input.as_ref().clone()),
            attrs: AttrList::new(needed)?,
        };
        Ok(Some(RelExpr::GroupBy {
            input: Arc::new(pruned),
            keys: new_keys,
            agg: *agg,
            attr: new_attr,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::{Aggregate, ScalarExpr};

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh")
    }

    fn apply(e: &RelExpr) -> Option<RelExpr> {
        let cat = catalog();
        let ctx = RuleContext::new(&cat);
        ProjectBeforeGroupBy
            .apply(e, &ctx)
            .expect("rule application")
    }

    #[test]
    fn example_3_2_projection_inserted() {
        // gamma[(country=%6), AVG, alcperc=%3] over the 6-wide join
        let join = RelExpr::scan("beer").join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        );
        let e = join.clone().group_by(&[6], Aggregate::Avg, 3);
        let out = apply(&e).expect("applies");
        // π(%3,%6) inserted; keys/attr re-based: alcperc→%1, country→%2
        let want = join.project(&[3, 6]).group_by(&[2], Aggregate::Avg, 1);
        assert_eq!(out, want);
    }

    #[test]
    fn no_insertion_when_all_attrs_needed() {
        let e = RelExpr::scan("brewery").group_by(&[1, 3], Aggregate::Cnt, 2);
        assert!(apply(&e).is_none());
        // after one application the rule must not fire again (fixpoint)
        let join = RelExpr::scan("beer").join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        );
        let e = join.group_by(&[6], Aggregate::Avg, 3);
        let once = apply(&e).expect("applies");
        assert!(apply(&once).is_none());
    }

    #[test]
    fn empty_keys_prune_to_single_attr() {
        let e = RelExpr::scan("beer").group_by(&[], Aggregate::Avg, 3);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("beer")
            .project(&[3])
            .group_by(&[], Aggregate::Avg, 1);
        assert_eq!(out, want);
    }

    #[test]
    fn aggregate_attr_inside_keys_not_duplicated() {
        // grouping on %2 and aggregating %2: needed = {2} only
        let e = RelExpr::scan("beer").group_by(&[2], Aggregate::Cnt, 2);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("beer")
            .project(&[2])
            .group_by(&[1], Aggregate::Cnt, 1);
        assert_eq!(out, want);
    }
}
