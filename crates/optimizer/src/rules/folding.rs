//! Constant folding and trivial-selection elimination.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr};

use super::{Precondition, Rule, RuleContext};

/// Folds constant scalar subexpressions inside selection and join
/// predicates and extended projections, and eliminates trivial selections:
///
/// * `σ_true(E) → E`,
/// * `σ_false(E) → ∅` (an empty `Values` of E's schema),
/// * `true ∧ p → p`, `false ∨ p → p`, etc.
///
/// Folding is conservative: a constant subexpression that *errors* (e.g.
/// `1/0`) is left in place so the runtime error is preserved — the paper's
/// expressions are partial functions and rewrites must not change
/// definedness.
pub struct ConstantFold;

impl ConstantFold {
    /// Folds one scalar tree; returns the folded tree and whether anything
    /// changed.
    fn fold(e: &ScalarExpr) -> (ScalarExpr, bool) {
        // fold children first
        let (node, child_changed) = match e {
            ScalarExpr::Arith(op, l, r) => {
                let (fl, cl) = Self::fold(l);
                let (fr, cr) = Self::fold(r);
                (ScalarExpr::Arith(*op, Arc::new(fl), Arc::new(fr)), cl || cr)
            }
            ScalarExpr::Cmp(op, l, r) => {
                let (fl, cl) = Self::fold(l);
                let (fr, cr) = Self::fold(r);
                (ScalarExpr::Cmp(*op, Arc::new(fl), Arc::new(fr)), cl || cr)
            }
            ScalarExpr::And(l, r) => {
                let (fl, cl) = Self::fold(l);
                let (fr, cr) = Self::fold(r);
                // boolean simplifications that respect strictness on the
                // *left* operand (our And short-circuits left to right):
                match (&fl, &fr) {
                    (ScalarExpr::Literal(Value::Bool(true)), _) => return (fr, true),
                    (ScalarExpr::Literal(Value::Bool(false)), _) => {
                        return (ScalarExpr::bool(false), true)
                    }
                    (_, ScalarExpr::Literal(Value::Bool(true))) => return (fl, true),
                    _ => {}
                }
                (ScalarExpr::And(Arc::new(fl), Arc::new(fr)), cl || cr)
            }
            ScalarExpr::Or(l, r) => {
                let (fl, cl) = Self::fold(l);
                let (fr, cr) = Self::fold(r);
                match (&fl, &fr) {
                    (ScalarExpr::Literal(Value::Bool(false)), _) => return (fr, true),
                    (ScalarExpr::Literal(Value::Bool(true)), _) => {
                        return (ScalarExpr::bool(true), true)
                    }
                    (_, ScalarExpr::Literal(Value::Bool(false))) => return (fl, true),
                    _ => {}
                }
                (ScalarExpr::Or(Arc::new(fl), Arc::new(fr)), cl || cr)
            }
            ScalarExpr::Not(x) => {
                let (fx, cx) = Self::fold(x);
                if let ScalarExpr::Not(inner) = &fx {
                    return (inner.as_ref().clone(), true);
                }
                (ScalarExpr::Not(Arc::new(fx)), cx)
            }
            ScalarExpr::Neg(x) => {
                let (fx, cx) = Self::fold(x);
                (ScalarExpr::Neg(Arc::new(fx)), cx)
            }
            ScalarExpr::Concat(l, r) => {
                let (fl, cl) = Self::fold(l);
                let (fr, cr) = Self::fold(r);
                (ScalarExpr::Concat(Arc::new(fl), Arc::new(fr)), cl || cr)
            }
            leaf => (leaf.clone(), false),
        };
        // then try to evaluate this node if fully constant
        if !matches!(node, ScalarExpr::Literal(_)) && node.is_constant() {
            // evaluating a constant needs no tuple
            if let Ok(v) = node.eval(&Tuple::empty()) {
                return (ScalarExpr::Literal(v), true);
            }
        }
        (node, child_changed)
    }
}

impl Rule for ConstantFold {
    fn name(&self) -> &'static str {
        "constant-fold"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "constant subexpressions are replaced by their values; erroring \
             constants are left in place, so definedness is unchanged",
        )
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        match expr {
            RelExpr::Select { input, predicate } => {
                let (folded, changed) = Self::fold(predicate);
                match folded {
                    ScalarExpr::Literal(Value::Bool(true)) => Ok(Some(input.as_ref().clone())),
                    ScalarExpr::Literal(Value::Bool(false)) => {
                        let schema = ctx.schema(input)?;
                        Ok(Some(RelExpr::values(Relation::empty(schema))))
                    }
                    _ if changed => Ok(Some(RelExpr::Select {
                        input: Arc::new(input.as_ref().clone()),
                        predicate: folded,
                    })),
                    _ => Ok(None),
                }
            }
            RelExpr::Join {
                left,
                right,
                predicate,
            } => {
                let (folded, changed) = Self::fold(predicate);
                match folded {
                    // ⋈_true = × (Definition 3.2 with φ ≡ true)
                    ScalarExpr::Literal(Value::Bool(true)) => Ok(Some(RelExpr::Product(
                        Arc::new(left.as_ref().clone()),
                        Arc::new(right.as_ref().clone()),
                    ))),
                    ScalarExpr::Literal(Value::Bool(false)) => {
                        let schema =
                            Arc::new(ctx.schema(left)?.concat(ctx.schema(right)?.as_ref()));
                        Ok(Some(RelExpr::values(Relation::empty(schema))))
                    }
                    _ if changed => Ok(Some(RelExpr::Join {
                        left: Arc::new(left.as_ref().clone()),
                        right: Arc::new(right.as_ref().clone()),
                        predicate: folded,
                    })),
                    _ => Ok(None),
                }
            }
            RelExpr::ExtProject { input, exprs } => {
                let mut changed = false;
                let folded: Vec<ScalarExpr> = exprs
                    .iter()
                    .map(|e| {
                        let (f, c) = Self::fold(e);
                        changed |= c;
                        f
                    })
                    .collect();
                if changed {
                    Ok(Some(RelExpr::ExtProject {
                        input: Arc::new(input.as_ref().clone()),
                        exprs: folded,
                    }))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::ArithOp;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh")
    }

    fn apply(e: &RelExpr) -> Option<RelExpr> {
        let cat = catalog();
        let ctx = RuleContext::new(&cat);
        ConstantFold.apply(e, &ctx).expect("rule application")
    }

    #[test]
    fn select_true_vanishes() {
        let e = RelExpr::scan("r").select(ScalarExpr::bool(true));
        assert_eq!(apply(&e).expect("applies"), RelExpr::scan("r"));
    }

    #[test]
    fn select_false_becomes_empty_values() {
        let e = RelExpr::scan("r").select(ScalarExpr::bool(false));
        let out = apply(&e).expect("applies");
        match out {
            RelExpr::Values(rel) => {
                assert!(rel.is_empty());
                assert_eq!(rel.schema().arity(), 2);
            }
            other => panic!("expected empty Values, got {other}"),
        }
    }

    #[test]
    fn arithmetic_constants_fold() {
        // %1 = 2 + 3 → %1 = 5
        let p = ScalarExpr::attr(1).eq(ScalarExpr::int(2).add(ScalarExpr::int(3)));
        let e = RelExpr::scan("r").select(p);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("r").select(ScalarExpr::attr(1).eq(ScalarExpr::int(5)));
        assert_eq!(out, want);
    }

    #[test]
    fn boolean_identities_fold() {
        let p = ScalarExpr::bool(true).and(ScalarExpr::attr(2).eq(ScalarExpr::str("x")));
        let e = RelExpr::scan("r").select(p);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("r").select(ScalarExpr::attr(2).eq(ScalarExpr::str("x")));
        assert_eq!(out, want);

        let p = ScalarExpr::attr(2)
            .eq(ScalarExpr::str("x"))
            .or(ScalarExpr::bool(false));
        let e = RelExpr::scan("r").select(p);
        let out = apply(&e).expect("applies");
        assert_eq!(out, want);
    }

    #[test]
    fn double_negation_folds() {
        let p = ScalarExpr::attr(2).eq(ScalarExpr::str("x")).not().not();
        let e = RelExpr::scan("r").select(p);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("r").select(ScalarExpr::attr(2).eq(ScalarExpr::str("x")));
        assert_eq!(out, want);
    }

    #[test]
    fn erroring_constants_preserved() {
        // 1/0 = 1 must NOT fold away — definedness is part of semantics
        let p = ScalarExpr::int(1)
            .div(ScalarExpr::int(0))
            .eq(ScalarExpr::int(1));
        let e = RelExpr::scan("r").select(p);
        // the fold leaves the erroring subtree; nothing changes
        assert!(apply(&e).is_none());
    }

    #[test]
    fn join_true_becomes_product() {
        let e = RelExpr::scan("r").join(RelExpr::scan("r"), ScalarExpr::bool(true));
        let out = apply(&e).expect("applies");
        assert_eq!(out, RelExpr::scan("r").product(RelExpr::scan("r")));
    }

    #[test]
    fn ext_project_folds_expressions() {
        let e = RelExpr::scan("r").ext_project(vec![
            ScalarExpr::int(1).arith(ArithOp::Mul, ScalarExpr::int(10))
        ]);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("r").ext_project(vec![ScalarExpr::int(10)]);
        assert_eq!(out, want);
    }

    #[test]
    fn no_change_returns_none() {
        let e = RelExpr::scan("r").select(ScalarExpr::attr(1).eq(ScalarExpr::int(1)));
        assert!(apply(&e).is_none());
        assert!(apply(&RelExpr::scan("r")).is_none());
    }
}
