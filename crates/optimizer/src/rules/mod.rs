//! Rewrite rules.
//!
//! Every rule is a semantics-preserving transformation justified by an
//! equivalence that holds in the *multi-set* algebra — most directly from
//! the paper's §3.3 (Theorems 3.1–3.3), the rest standard bag-algebra
//! identities proven by the same pointwise multiplicity reasoning and
//! checked here by property tests against the reference evaluator.
//!
//! A rule is a local pattern: it looks at one node (with its children) and
//! either produces a replacement or declines. The [`driver`](crate::driver)
//! applies rules bottom-up to a fixpoint.

mod distinct_join;
mod folding;
mod fuse;
mod keyed_group;
mod project;
mod project_join;
mod pushdown;

pub use distinct_join::PushDistinctIntoJoin;
pub use folding::ConstantFold;
pub use fuse::{DistinctPruning, FuseSelections, SelectProductToJoin};
pub use keyed_group::SimplifyKeyedGroupBy;
pub use project::ProjectBeforeGroupBy;
pub use project_join::PushProjectionIntoJoin;
pub use pushdown::{PushProjectionThroughUnion, PushSelectionIntoJoin, PushSelectionThroughBinary};

use mera_analyze::KeyEnv;
use mera_core::prelude::*;
use mera_expr::{RelExpr, SchemaProvider};

use crate::stats::CatalogStats;

pub use mera_analyze::{Condition, Precondition};

/// Context handed to rules: schema access for arity-sensitive rewrites,
/// plus (optionally) the maintained statistics for cost-gated rules and
/// the declared key constraints for property-licensed rules.
pub struct RuleContext<'a> {
    provider: &'a dyn DynSchemaProvider,
    stats: Option<&'a CatalogStats>,
    keys: Option<&'a KeyEnv>,
}

/// Object-safe schema lookup (rules are dyn, so the provider must be too).
pub(crate) trait DynSchemaProvider {
    fn schema_of(&self, name: &str) -> CoreResult<SchemaRef>;
}

impl<P: SchemaProvider> DynSchemaProvider for P {
    fn schema_of(&self, name: &str) -> CoreResult<SchemaRef> {
        self.relation_schema(name)
    }
}

impl<'a> RuleContext<'a> {
    /// Builds a context over any schema provider (no statistics:
    /// cost-gated rules decline).
    pub fn new<P: SchemaProvider>(provider: &'a P) -> Self {
        RuleContext {
            provider,
            stats: None,
            keys: None,
        }
    }

    /// Builds a context with maintained statistics, enabling cost-gated
    /// rules.
    pub fn with_stats<P: SchemaProvider>(provider: &'a P, stats: &'a CatalogStats) -> Self {
        RuleContext {
            provider,
            stats: Some(stats),
            keys: None,
        }
    }

    /// Attaches declared key constraints, enabling property-licensed
    /// rules (δ-elimination over provably-duplicate-free inputs, keyed-γ
    /// simplification) and the key-aware precondition discharge.
    pub fn with_keys(mut self, keys: &'a KeyEnv) -> Self {
        self.keys = Some(keys);
        self
    }

    /// The maintained statistics, when the caller supplied them.
    pub fn stats(&self) -> Option<&CatalogStats> {
        self.stats
    }

    /// The declared key constraints, when the caller supplied them.
    pub fn keys(&self) -> Option<&KeyEnv> {
        self.keys
    }

    /// The schema of a subexpression.
    pub fn schema(&self, expr: &RelExpr) -> CoreResult<SchemaRef> {
        expr.schema(&ProviderShim(self.provider))
    }

    /// The arity of a subexpression.
    pub fn arity(&self, expr: &RelExpr) -> CoreResult<usize> {
        Ok(self.schema(expr)?.arity())
    }

    /// The context's schema access as a [`SchemaProvider`] — what the
    /// driver hands to precondition discharge and differential
    /// verification.
    pub(crate) fn as_provider(&self) -> ProviderShim<'_> {
        ProviderShim(self.provider)
    }
}

pub(crate) struct ProviderShim<'a>(pub(crate) &'a dyn DynSchemaProvider);

impl SchemaProvider for ProviderShim<'_> {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        self.0.schema_of(name)
    }
}

/// A local rewrite rule.
pub trait Rule {
    /// Rule name for reports and ablation selection.
    fn name(&self) -> &'static str;

    /// Attempts to rewrite `expr` (looking only at this node and its
    /// children). Returns `Ok(None)` when the rule does not apply.
    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>>;

    /// The rule's declared soundness argument, as data. The driver
    /// discharges it on **every** application ([`mera_analyze::discharge`])
    /// and refuses applications whose obligations fail, so a rule cannot
    /// silently apply outside its justification. The default is the
    /// baseline every rule owes: schema preservation.
    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "local rewrite justified by a pointwise multiplicity argument",
        )
    }
}
