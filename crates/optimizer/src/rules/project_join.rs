//! Projection pushdown through products and joins.
//!
//! `π_a(E₁ ⋈_φ E₂) = π_{a'}(π_{n₁}(E₁) ⋈_{φ'} π_{n₂}(E₂))` where `n₁`/`n₂`
//! are the attributes each side actually contributes to `a` or `φ`, and
//! `a'`/`φ'` are re-based into the narrowed layout.
//!
//! Bag-valid by the same argument as Example 3.2's transformation: the
//! inner projections *sum* the multiplicities of collapsing tuples, the
//! join multiplies them, and the double sum factors — provided `φ` only
//! references kept attributes, which the rule guarantees by adding `φ`'s
//! attributes to the needed set.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr};

use super::{Precondition, Rule, RuleContext};

/// Narrows join/product inputs to the attributes the projection above (and
/// the join predicate) actually use.
pub struct PushProjectionIntoJoin;

impl Rule for PushProjectionIntoJoin {
    fn name(&self) -> &'static str {
        "push-projection-into-join"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "inner projections sum collapsing multiplicities, the join \
             multiplies them, and the double sum factors; the predicate only \
             references kept attributes by construction",
        )
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        // unify the two projection forms into an expression list
        let (input, out_exprs, is_plain): (&Arc<RelExpr>, Vec<ScalarExpr>, bool) = match expr {
            RelExpr::Project { input, attrs } => (
                input,
                attrs
                    .indexes()
                    .iter()
                    .map(|&i| ScalarExpr::Attr(i))
                    .collect(),
                true,
            ),
            RelExpr::ExtProject { input, exprs } => (input, exprs.clone(), false),
            _ => return Ok(None),
        };
        let (left, right, predicate) = match input.as_ref() {
            RelExpr::Product(l, r) => (l, r, None),
            RelExpr::Join {
                left,
                right,
                predicate,
            } => (left, right, Some(predicate)),
            _ => return Ok(None),
        };
        let la = ctx.arity(left)?;
        let ra = ctx.arity(right)?;

        // attributes the rewrite must keep: projection outputs + predicate
        let mut needed: Vec<usize> = out_exprs.iter().flat_map(|e| e.attrs_used()).collect();
        if let Some(p) = predicate {
            needed.extend(p.attrs_used());
        }
        needed.sort_unstable();
        needed.dedup();

        let mut left_needed: Vec<usize> = needed.iter().copied().filter(|&g| g <= la).collect();
        let mut right_needed: Vec<usize> = needed
            .iter()
            .filter(|&&g| g > la)
            .map(|&g| g - la)
            .collect();
        // a projection needs at least one attribute per narrowed side;
        // keep the first attribute of an otherwise-unused side (its
        // multiplicity contribution must survive)
        if left_needed.is_empty() {
            left_needed.push(1);
        }
        if right_needed.is_empty() {
            right_needed.push(1);
        }
        if left_needed.len() >= la && right_needed.len() >= ra {
            return Ok(None); // nothing to prune
        }

        // global old index → global new index (1-based)
        let remap = |g: usize| -> CoreResult<usize> {
            if g <= la {
                left_needed
                    .iter()
                    .position(|&x| x == g)
                    .map(|p| p + 1)
                    .ok_or(CoreError::AttrIndexOutOfRange {
                        index: g,
                        arity: la,
                    })
            } else {
                right_needed
                    .iter()
                    .position(|&x| x == g - la)
                    .map(|p| left_needed.len() + p + 1)
                    .ok_or(CoreError::AttrIndexOutOfRange {
                        index: g,
                        arity: la + ra,
                    })
            }
        };

        let narrow = |side: &Arc<RelExpr>, needed: &[usize], arity: usize| -> RelExpr {
            if needed.len() >= arity {
                side.as_ref().clone()
            } else {
                side.as_ref().clone().project(needed)
            }
        };
        let new_left = narrow(left, &left_needed, la);
        let new_right = narrow(right, &right_needed, ra);

        let core = match predicate {
            None => new_left.product(new_right),
            Some(p) => {
                let p2 = p.clone().map_attrs(&mut |g| remap(g))?;
                new_left.join(new_right, p2)
            }
        };
        let new_out: CoreResult<Vec<ScalarExpr>> = out_exprs
            .iter()
            .map(|e| e.clone().map_attrs(&mut |g| remap(g)))
            .collect();
        let new_out = new_out?;
        Ok(Some(if is_plain {
            let attrs: Vec<usize> = new_out
                .iter()
                .map(|e| match e {
                    ScalarExpr::Attr(i) => *i,
                    _ => unreachable!("plain projections only remap attrs"),
                })
                .collect();
            core.project(&attrs)
        } else {
            core.ext_project(new_out)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::CmpOp;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh")
    }

    fn apply(e: &RelExpr) -> Option<RelExpr> {
        let cat = catalog();
        let ctx = RuleContext::new(&cat);
        PushProjectionIntoJoin
            .apply(e, &ctx)
            .expect("rule application")
    }

    #[test]
    fn narrows_both_sides_of_a_join() {
        // π(%1, %6)(beer ⋈_{%2=%4} brewery): needed = {1,2} ⊕ {4,6}
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .project(&[1, 6]);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("beer")
            .project(&[1, 2])
            .join(
                RelExpr::scan("brewery").project(&[1, 3]),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(3)),
            )
            .project(&[1, 4]);
        assert_eq!(out, want);
        // fixpoint: a second application does nothing
        assert!(apply(&out).is_none());
    }

    #[test]
    fn keeps_predicate_attributes_alive() {
        // the projection drops %2/%4 but the predicate needs them
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .project(&[3]);
        let out = apply(&e).expect("applies");
        let cat = catalog();
        // must still type-check and keep arity 1
        assert_eq!(out.schema(&cat).expect("types").arity(), 1);
    }

    #[test]
    fn product_without_predicate_narrows_too() {
        let e = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .project(&[3, 6]);
        let out = apply(&e).expect("applies");
        let want = RelExpr::scan("beer")
            .project(&[3])
            .product(RelExpr::scan("brewery").project(&[3]))
            .project(&[1, 2]);
        assert_eq!(out, want);
    }

    #[test]
    fn side_with_no_needed_attrs_keeps_one_for_multiplicity() {
        // π(%1): the right side contributes nothing but its cardinality
        // still multiplies — one attribute must survive
        let e = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .project(&[1]);
        let out = apply(&e).expect("applies");
        let cat = catalog();
        assert_eq!(out.schema(&cat).expect("types").arity(), 1);
        let want = RelExpr::scan("beer")
            .project(&[1])
            .product(RelExpr::scan("brewery").project(&[1]))
            .project(&[1]);
        assert_eq!(out, want);
    }

    #[test]
    fn ext_projection_pushes_as_well() {
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .ext_project(vec![ScalarExpr::attr(3).mul(ScalarExpr::real(2.0))]);
        let out = apply(&e).expect("applies");
        let cat = catalog();
        let s = out.schema(&cat).expect("types");
        assert_eq!(s.arity(), 1);
        assert_eq!(s.dtype(1).expect("typed"), DataType::Real);
    }

    #[test]
    fn no_change_when_everything_is_needed() {
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .project(&[1, 2, 3, 4, 5, 6]);
        assert!(apply(&e).is_none());
        // non-join inputs pass through
        let e = RelExpr::scan("beer").project(&[1]);
        assert!(apply(&e).is_none());
    }

    #[test]
    fn range_predicates_keep_their_attrs() {
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(3)
                    .cmp(CmpOp::Gt, ScalarExpr::real(5.0))
                    .and(ScalarExpr::attr(2).eq(ScalarExpr::attr(4))),
            )
            .project(&[6]);
        let out = apply(&e).expect("applies");
        let cat = catalog();
        assert_eq!(out.schema(&cat).expect("types").arity(), 1);
    }
}
