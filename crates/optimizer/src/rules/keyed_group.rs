//! Property-licensed γ simplification: `γ_{K; f(a)}(E) → π̂(E)` when the
//! grouping columns `K` form a candidate key of `E`.
//!
//! A key in the bag model bounds the *summed multiplicity* per key point by
//! 1 (see [`mera_analyze::infer_props`]), so a keyed input is
//! duplicate-free and every group is a singleton: the group-by collapses
//! to an extended projection of the grouping columns plus the aggregate of
//! a one-element group — `cnt → 1`, and `sum`/`min`/`max` of a singleton
//! is the aggregated value itself. `avg` (result type changes to real),
//! `stdev` and `median` are left alone: their singleton forms either
//! retype the column or buy nothing.
//!
//! The license comes from the property-inference pass over declared key
//! constraints, so the rule only fires when the optimizer was handed a
//! [`KeyEnv`](mera_analyze::KeyEnv); the driver re-proves the claim via
//! the key-aware precondition discharge.

use mera_core::prelude::*;
use mera_expr::{Aggregate, RelExpr, ScalarExpr};

use super::{Condition, Precondition, Rule, RuleContext};

/// `γ_{K; f(a)}(E) → π̂_{K, f'}(E)` when `K` is a superkey of `E` per the
/// inferred plan properties.
pub struct SimplifyKeyedGroupBy;

impl Rule for SimplifyKeyedGroupBy {
    fn name(&self) -> &'static str {
        "simplify-keyed-group-by"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "γ over an input keyed by its grouping columns: summed \
             multiplicity per key point is ≤ 1, so every group is a \
             singleton and each aggregate reduces to a projection of the \
             single member (cnt → 1; sum/min/max → the value)",
        )
        .with(Condition::InputKeyedByGroupColumns)
    }

    fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        let Some(keys_env) = ctx.keys() else {
            return Ok(None);
        };
        let RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } = expr
        else {
            return Ok(None);
        };
        // a whole-relation γ (no grouping columns) yields one row even on
        // empty input for cnt — not expressible as a projection; skip
        if keys.is_empty() {
            return Ok(None);
        }
        let value = match agg {
            Aggregate::Cnt => ScalarExpr::int(1),
            Aggregate::Sum | Aggregate::Min | Aggregate::Max => ScalarExpr::attr(*attr),
            Aggregate::Avg | Aggregate::StdDev | Aggregate::Median => return Ok(None),
        };
        let props = mera_analyze::infer_props(input, &ctx.as_provider(), keys_env);
        let cols = keys.iter().copied().collect();
        if !props.is_superkey(&cols) {
            return Ok(None);
        }
        let mut exprs: Vec<ScalarExpr> = keys.iter().map(|k| ScalarExpr::attr(*k)).collect();
        exprs.push(value);
        Ok(Some(input.as_ref().clone().ext_project(exprs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_analyze::KeyEnv;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
    }

    fn keyed_ctx(cat: &DatabaseSchema, keys: &KeyEnv) -> RuleContext<'static> {
        // tests leak the catalog/env to satisfy the context lifetime simply
        let cat: &'static DatabaseSchema = Box::leak(Box::new(cat.clone()));
        let keys: &'static KeyEnv = Box::leak(Box::new(keys.clone()));
        RuleContext::new(cat).with_keys(keys)
    }

    #[test]
    fn keyed_count_becomes_literal_projection() {
        let mut keys = KeyEnv::new();
        keys.declare("r", vec![1]);
        let ctx = keyed_ctx(&catalog(), &keys);
        let e = RelExpr::scan("r").group_by(&[1], Aggregate::Cnt, 2);
        let out = SimplifyKeyedGroupBy.apply(&e, &ctx).expect("rule");
        let want = RelExpr::scan("r").ext_project(vec![ScalarExpr::attr(1), ScalarExpr::int(1)]);
        assert_eq!(out, Some(want));
    }

    #[test]
    fn keyed_sum_projects_the_value() {
        let mut keys = KeyEnv::new();
        keys.declare("r", vec![1]);
        let ctx = keyed_ctx(&catalog(), &keys);
        let e = RelExpr::scan("r").group_by(&[1], Aggregate::Sum, 2);
        let out = SimplifyKeyedGroupBy.apply(&e, &ctx).expect("rule");
        let want = RelExpr::scan("r").ext_project(vec![ScalarExpr::attr(1), ScalarExpr::attr(2)]);
        assert_eq!(out, Some(want));
    }

    #[test]
    fn superkey_grouping_also_fires() {
        // grouping by (%1,%2) with key %1: still a superkey
        let mut keys = KeyEnv::new();
        keys.declare("r", vec![1]);
        let ctx = keyed_ctx(&catalog(), &keys);
        let e = RelExpr::scan("r").group_by(&[1, 2], Aggregate::Min, 2);
        assert!(SimplifyKeyedGroupBy
            .apply(&e, &ctx)
            .expect("rule")
            .is_some());
    }

    #[test]
    fn declines_without_key_avg_or_empty_groups() {
        let cat = catalog();
        // no keys attached at all
        let bare = RuleContext::new(&cat);
        let e = RelExpr::scan("r").group_by(&[1], Aggregate::Cnt, 2);
        assert!(SimplifyKeyedGroupBy
            .apply(&e, &bare)
            .expect("rule")
            .is_none());
        // key on the non-grouped column: (%2) is not a superkey via %1
        let mut keys = KeyEnv::new();
        keys.declare("r", vec![1]);
        let ctx = keyed_ctx(&cat, &keys);
        let e = RelExpr::scan("r").group_by(&[2], Aggregate::Cnt, 1);
        assert!(SimplifyKeyedGroupBy
            .apply(&e, &ctx)
            .expect("rule")
            .is_none());
        // avg retypes the column — excluded
        let e = RelExpr::scan("r").group_by(&[1], Aggregate::Avg, 2);
        assert!(SimplifyKeyedGroupBy
            .apply(&e, &ctx)
            .expect("rule")
            .is_none());
        // whole-relation γ — excluded (empty-input semantics differ)
        let e = RelExpr::scan("r").group_by(&[], Aggregate::Cnt, 1);
        assert!(SimplifyKeyedGroupBy
            .apply(&e, &ctx)
            .expect("rule")
            .is_none());
    }
}
