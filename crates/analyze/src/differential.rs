//! Differential verification of applied rewrites.
//!
//! Static precondition discharge ([`crate::rewrite`]) is conservative; a
//! rule whose `apply` is simply *wrong* (the classic mistake: assuming
//! `δ(E₁ ⊎ E₂) = δE₁ ⊎ δE₂`, refuted by Theorem 3.3) may still declare a
//! dischargeable precondition. In debug builds the optimizer therefore
//! cross-checks every application dynamically: generate a handful of tiny
//! randomized database instances over the schemas the plans scan,
//! evaluate original and replacement with the reference engine, and
//! demand identical results. Instances are deliberately small (≤ 3 rows,
//! multiplicities up to 2, values from small pools) so that collisions —
//! the inputs that expose bag-semantics bugs — are likely, and the check
//! stays cheap enough to leave on for every debug-mode optimization.

use std::collections::HashMap;

use mera_core::prelude::*;
use mera_eval::provider::RelationProvider;
use mera_expr::{RelExpr, SchemaProvider};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::diag::{Code, Diagnostic, Span};
use crate::props::KeyEnv;

/// Cross-checks one rewrite on `trials` randomized instances. `Err`
/// carries an `E0201` diagnostic with the counterexample.
pub fn verify_rewrite<P: SchemaProvider>(
    rule_name: &str,
    before: &RelExpr,
    after: &RelExpr,
    provider: &P,
    trials: u32,
    seed: u64,
) -> Result<(), Diagnostic> {
    verify_rewrite_with(
        rule_name,
        before,
        after,
        provider,
        trials,
        seed,
        &KeyEnv::new(),
    )
}

/// [`verify_rewrite`] with declared key constraints in scope: generated
/// instances *satisfy* the keys (rows colliding on a declared key are
/// dropped and keyed relations get multiplicity 1), since a key-licensed
/// rewrite is only claimed sound on databases where the constraint
/// actually holds — an unconstrained random instance would refute it
/// spuriously.
pub fn verify_rewrite_with<P: SchemaProvider>(
    rule_name: &str,
    before: &RelExpr,
    after: &RelExpr,
    provider: &P,
    trials: u32,
    seed: u64,
    keys: &KeyEnv,
) -> Result<(), Diagnostic> {
    // the instance must cover whatever either side reads
    let mut names: Vec<&str> = before.scanned_relations();
    for n in after.scanned_relations() {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    let mut schemas = Vec::with_capacity(names.len());
    for name in &names {
        match provider.relation_schema(name) {
            Ok(s) => schemas.push((*name, s)),
            // unknown relation: the schema pass owns that complaint, and
            // no instance can be generated — skip verification
            Err(_) => return Ok(()),
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    for trial in 0..trials {
        let db = random_instance(&schemas, &mut rng, keys);
        let expected = mera_eval::eval(before, &db);
        let actual = mera_eval::eval(after, &db);
        let agree = match (&expected, &actual) {
            (Ok(e), Ok(a)) => e == a,
            // both failing (e.g. a partial aggregate on empty input) is
            // agreement: the rewrite did not change observable behaviour
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !agree {
            let mut d = Diagnostic::new(
                Code::UnsoundRewrite,
                Span::root(before.op_name()),
                format!(
                    "rule `{rule_name}` produced a rewrite refuted by differential \
                     evaluation (trial {trial}, seed {seed})"
                ),
            );
            for (name, _) in &schemas {
                d = d.with_note(format!("instance {name} = {}", db.relations[*name]));
            }
            d = d
                .with_note(format!("original evaluates to {}", render(&expected)))
                .with_note(format!("replacement evaluates to {}", render(&actual)));
            return Err(d);
        }
    }
    Ok(())
}

fn render(r: &CoreResult<Relation>) -> String {
    match r {
        Ok(rel) => rel.to_string(),
        Err(e) => format!("error: {e}"),
    }
}

/// A tiny randomized database instance.
struct Instance {
    relations: HashMap<String, Relation>,
}

impl RelationProvider for Instance {
    fn relation(&self, name: &str) -> CoreResult<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.to_owned()))
    }
}

fn random_instance(schemas: &[(&str, SchemaRef)], rng: &mut StdRng, keys: &KeyEnv) -> Instance {
    let mut relations = HashMap::new();
    for (name, schema) in schemas {
        let rows = rng.gen_range(0..4usize);
        let declared: Vec<&Vec<usize>> = keys
            .keys_of(name)
            .iter()
            .filter(|k| k.iter().all(|&a| a >= 1 && a <= schema.arity()))
            .collect();
        // key points (per declared key) already used by an inserted row
        let mut used: Vec<Vec<Vec<Value>>> = vec![Vec::new(); declared.len()];
        let mut rel = Relation::empty(std::sync::Arc::clone(schema));
        for _ in 0..rows {
            let values: Vec<Value> = schema
                .attributes()
                .iter()
                .map(|a| random_value(a.dtype, rng))
                .collect();
            let points: Vec<Vec<Value>> = declared
                .iter()
                .map(|k| k.iter().map(|&a| values[a - 1].clone()).collect())
                .collect();
            if points.iter().zip(&used).any(|(p, u)| u.contains(p)) {
                continue; // would violate a declared key — drop the row
            }
            for (p, u) in points.into_iter().zip(&mut used) {
                u.push(p);
            }
            // a keyed relation bounds summed multiplicity per key point by
            // 1, so its rows must come in with multiplicity exactly 1
            let m = if declared.is_empty() {
                rng.gen_range(1..3u64)
            } else {
                1
            };
            rel.insert(Tuple::new(values), m).expect("schema-typed row");
        }
        relations.insert((*name).to_owned(), rel);
    }
    Instance { relations }
}

/// Draws from a pool of 3–5 values per domain, small enough that repeated
/// draws collide often (duplicates and join matches are the interesting
/// cases in a bag algebra).
fn random_value(dtype: DataType, rng: &mut StdRng) -> Value {
    match dtype {
        DataType::Bool => Value::Bool(rng.gen_range(0..2u8) == 1),
        DataType::Int => Value::Int(rng.gen_range(0..4i64)),
        DataType::Real => {
            const POOL: [f64; 4] = [0.0, 1.0, 2.5, 4.0];
            Value::real(POOL[rng.gen_range(0..POOL.len())]).expect("finite")
        }
        DataType::Str => {
            const POOL: [&str; 3] = ["a", "b", "c"];
            Value::str(POOL[rng.gen_range(0..POOL.len())])
        }
        DataType::Date => {
            Value::Date(Date::from_ymd(2020, 1, 1 + rng.gen_range(0..3u32)).expect("valid date"))
        }
        DataType::Time => {
            Value::Time(Time::from_hms(rng.gen_range(0..3u32), 0, 0).expect("valid time"))
        }
        DataType::Money => Value::Money(Money(rng.gen_range(0..4i64))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::ScalarExpr;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh")
            .with("s", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh")
    }

    #[test]
    fn sound_rewrite_passes() {
        // σ_true(E) → E: the identity, trivially sound
        let before = RelExpr::scan("r").select(ScalarExpr::bool(true));
        let after = RelExpr::scan("r");
        verify_rewrite("identity", &before, &after, &catalog(), 4, 42).expect("sound");
    }

    #[test]
    fn delta_over_union_is_refuted() {
        // THE canonical misrewrite (Theorem 3.3): δ(r ⊎ s) → δr ⊎ δs.
        // With values drawn from small pools, r and s share tuples with
        // overwhelming probability across a few trials.
        let before = RelExpr::scan("r").union(RelExpr::scan("s")).distinct();
        let after = RelExpr::scan("r")
            .distinct()
            .union(RelExpr::scan("s").distinct());
        let d = verify_rewrite("delta-over-union", &before, &after, &catalog(), 8, 42)
            .expect_err("refuted");
        assert_eq!(d.code, Code::UnsoundRewrite);
        assert!(d.message.contains("differential"), "{}", d.message);
        assert!(
            d.notes.iter().any(|n| n.starts_with("instance r = ")),
            "counterexample instance attached: {:?}",
            d.notes
        );
    }

    #[test]
    fn unknown_relations_skip_verification() {
        let before = RelExpr::scan("nope").distinct();
        let after = RelExpr::scan("nope");
        verify_rewrite("x", &before, &after, &catalog(), 4, 1).expect("skipped");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let before = RelExpr::scan("r").union(RelExpr::scan("s")).distinct();
        let after = RelExpr::scan("r")
            .distinct()
            .union(RelExpr::scan("s").distinct());
        let a = verify_rewrite("d", &before, &after, &catalog(), 8, 7).unwrap_err();
        let b = verify_rewrite("d", &before, &after, &catalog(), 8, 7).unwrap_err();
        assert_eq!(a, b);
    }
}
