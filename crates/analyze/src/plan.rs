//! Plan analysis: schema/type inference and the emptiness lattice, in one
//! bottom-up walk that keeps going after the first problem.
//!
//! Two facts are computed per node:
//!
//! * its **schema**, with every attribute reference and arithmetic
//!   expression resolved (pass 1) — `None` when a child already failed, so
//!   one root cause does not cascade into spurious follow-on errors;
//! * its **cardinality abstraction** in the three-point lattice
//!   [`Card`] = {`Empty`, `NonEmpty`, `Unknown`} (pass 2), which feeds the
//!   partiality lint: Definition 3.4 makes `AVG`/`MIN`/`MAX` *partial* —
//!   undefined on the empty multi-set — so a whole-relation `γ` over a
//!   possibly-empty input is a [`Code::PartialAggregateMayBeUndefined`]
//!   warning and over a provably-empty input a
//!   [`Code::PartialAggregateOnEmpty`] error.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{arith_result_type, RelExpr, ScalarExpr, SchemaProvider};

use crate::diag::{Code, Diagnostic, Span};

/// The emptiness abstraction of a multi-set: a three-point lattice with
/// `Unknown` on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Card {
    /// Provably the empty multi-set.
    Empty,
    /// Provably contains at least one tuple.
    NonEmpty,
    /// Nothing is known statically.
    #[default]
    Unknown,
}

impl Card {
    /// The abstraction of a concrete relation.
    pub fn of_relation(rel: &Relation) -> Card {
        if rel.is_empty() {
            Card::Empty
        } else {
            Card::NonEmpty
        }
    }

    /// Least upper bound: agreeing values survive, disagreement is
    /// `Unknown`. This is the merge used when a relation may hold either
    /// of two abstract values (e.g. across alternative program paths).
    pub fn join(self, other: Card) -> Card {
        if self == other {
            self
        } else {
            Card::Unknown
        }
    }
}

/// Cardinality facts about named relations, supplied by the embedder
/// (e.g. from the live database state, or the program analyzer's abstract
/// store). Missing names are `Unknown`.
pub type CardEnv = std::collections::HashMap<String, Card>;

/// The result of analyzing one plan.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// The inferred output schema, when the plan is well-formed enough to
    /// have one.
    pub schema: Option<SchemaRef>,
    /// The emptiness abstraction of the output.
    pub card: Card,
    /// Everything found, in walk order (children before parents).
    pub diagnostics: Vec<Diagnostic>,
}

impl PlanAnalysis {
    /// True when no error-severity diagnostic was produced.
    pub fn is_accepted(&self) -> bool {
        !crate::diag::has_errors(&self.diagnostics)
    }
}

/// Analyzes a bare relational expression against a catalog, with
/// cardinality facts for the scanned relations.
pub fn analyze_plan<P: SchemaProvider>(
    expr: &RelExpr,
    provider: &P,
    cards: &CardEnv,
) -> PlanAnalysis {
    let mut diagnostics = Vec::new();
    let (schema, card) = walk(
        expr,
        provider,
        cards,
        &Span::root(expr.op_name()),
        &mut diagnostics,
    );
    PlanAnalysis {
        schema,
        card,
        diagnostics,
    }
}

/// Like [`analyze_plan`] but placing spans inside statement `stmt` (used
/// by the program analyzer).
pub(crate) fn analyze_plan_in_stmt<P: SchemaProvider>(
    expr: &RelExpr,
    provider: &P,
    cards: &CardEnv,
    stmt: usize,
    diagnostics: &mut Vec<Diagnostic>,
) -> (Option<SchemaRef>, Card) {
    walk(
        expr,
        provider,
        cards,
        &Span::root(expr.op_name()).in_stmt(stmt),
        diagnostics,
    )
}

fn walk<P: SchemaProvider>(
    expr: &RelExpr,
    provider: &P,
    cards: &CardEnv,
    span: &Span,
    diags: &mut Vec<Diagnostic>,
) -> (Option<SchemaRef>, Card) {
    // analyze children first (left to right), so diagnostics surface in
    // walk order and parent checks can rely on child schemas
    let children = expr.children();
    let mut kids: Vec<(Option<SchemaRef>, Card)> = Vec::with_capacity(children.len());
    for (i, child) in children.iter().enumerate() {
        let child_span = span.child(i, child.op_name());
        kids.push(walk(child, provider, cards, &child_span, diags));
    }

    match expr {
        RelExpr::Scan(name) => match provider.relation_schema(name) {
            Ok(s) => (
                Some(s),
                cards.get(name.as_str()).copied().unwrap_or(Card::Unknown),
            ),
            Err(_) => {
                diags.push(Diagnostic::new(
                    Code::UnknownRelation,
                    span.clone(),
                    format!("unknown relation `{name}`"),
                ));
                (None, Card::Unknown)
            }
        },
        RelExpr::Values(rel) => (Some(Arc::clone(rel.schema())), Card::of_relation(rel)),
        RelExpr::Union(..) | RelExpr::Difference(..) | RelExpr::Intersect(..) => {
            let (ls, lc) = kids[0].clone();
            let (rs, rc) = kids[1].clone();
            let schema = match (ls, rs) {
                (Some(l), Some(r)) => {
                    if l.same_types(&r) {
                        Some(l)
                    } else {
                        diags.push(
                            Diagnostic::new(
                                Code::IncompatibleOperands,
                                span.clone(),
                                format!("operands of {} have incompatible schemas", expr.op_name()),
                            )
                            .with_note(format!("left operand has schema {l}"))
                            .with_note(format!("right operand has schema {r}")),
                        );
                        None
                    }
                }
                _ => None,
            };
            let card = match expr {
                RelExpr::Union(..) => match (lc, rc) {
                    (Card::Empty, Card::Empty) => Card::Empty,
                    (Card::NonEmpty, _) | (_, Card::NonEmpty) => Card::NonEmpty,
                    _ => Card::Unknown,
                },
                RelExpr::Difference(..) => match (lc, rc) {
                    (Card::Empty, _) => Card::Empty,
                    // subtracting nothing keeps the left abstraction
                    (l, Card::Empty) => l,
                    _ => Card::Unknown,
                },
                // intersection below either operand
                _ => match (lc, rc) {
                    (Card::Empty, _) | (_, Card::Empty) => Card::Empty,
                    _ => Card::Unknown,
                },
            };
            (schema, card)
        }
        RelExpr::Product(..) => {
            let (ls, lc) = kids[0].clone();
            let (rs, rc) = kids[1].clone();
            let schema = match (ls, rs) {
                (Some(l), Some(r)) => Some(Arc::new(l.concat(&r))),
                _ => None,
            };
            (schema, product_card(lc, rc))
        }
        RelExpr::Join { predicate, .. } => {
            let (ls, lc) = kids[0].clone();
            let (rs, rc) = kids[1].clone();
            let schema = match (ls, rs) {
                (Some(l), Some(r)) => {
                    let joined = Arc::new(l.concat(&r));
                    check_predicate(predicate, &joined, span, diags);
                    Some(joined)
                }
                _ => None,
            };
            // a join can filter everything: only emptiness propagates
            let card = match (lc, rc) {
                (Card::Empty, _) | (_, Card::Empty) => Card::Empty,
                _ => Card::Unknown,
            };
            (schema, card)
        }
        RelExpr::Select { predicate, .. } => {
            let (is, ic) = kids[0].clone();
            if let Some(s) = &is {
                check_predicate(predicate, s, span, diags);
            }
            let card = match predicate {
                // constant predicates decide the selection statically
                ScalarExpr::Literal(Value::Bool(true)) => ic,
                ScalarExpr::Literal(Value::Bool(false)) => Card::Empty,
                _ => match ic {
                    Card::Empty => Card::Empty,
                    _ => Card::Unknown,
                },
            };
            (is, card)
        }
        RelExpr::Project { attrs, .. } => {
            let (is, ic) = kids[0].clone();
            let schema = is.and_then(|s| match s.project(attrs) {
                Ok(p) => Some(Arc::new(p)),
                Err(_) => {
                    for &i in attrs.indexes() {
                        if i == 0 || i > s.arity() {
                            diags.push(unresolved_attr(i, &s, span));
                        }
                    }
                    None
                }
            });
            // π preserves the total multiplicity of its input exactly
            (schema, ic)
        }
        RelExpr::ExtProject { exprs, .. } => {
            let (is, ic) = kids[0].clone();
            if exprs.is_empty() {
                diags.push(Diagnostic::new(
                    Code::MalformedOperator,
                    span.clone(),
                    "extended projection needs at least one expression",
                ));
                return (None, ic);
            }
            let schema = is.and_then(|s| {
                let mut attrs = Vec::with_capacity(exprs.len());
                let mut ok = true;
                for e in exprs {
                    match check_scalar(e, &s, span, diags) {
                        Some(t) => {
                            let name = match e {
                                ScalarExpr::Attr(i) => s.attr(*i).ok().and_then(|a| a.name.clone()),
                                _ => None,
                            };
                            attrs.push(Attribute { name, dtype: t });
                        }
                        None => ok = false,
                    }
                }
                ok.then(|| Arc::new(Schema::new(attrs)))
            });
            (schema, ic)
        }
        RelExpr::Distinct(_) => kids[0].clone(), // δ preserves emptiness
        RelExpr::Closure(_) => {
            let (is, ic) = kids[0].clone();
            let schema = is.and_then(|s| {
                if s.arity() != 2 {
                    diags.push(Diagnostic::new(
                        Code::MalformedOperator,
                        span.clone(),
                        format!(
                            "transitive closure needs a binary relation, found arity {}",
                            s.arity()
                        ),
                    ));
                    return None;
                }
                let (d1, d2) = (s.dtype(1).ok()?, s.dtype(2).ok()?);
                if d1 != d2 {
                    diags.push(Diagnostic::new(
                        Code::MalformedOperator,
                        span.clone(),
                        format!(
                            "transitive closure needs matching attribute domains, \
                             found {d1} and {d2}"
                        ),
                    ));
                    return None;
                }
                Some(s)
            });
            // one edge already yields the pair it connects
            (schema, ic)
        }
        RelExpr::GroupBy {
            keys, agg, attr, ..
        } => {
            let (is, ic) = kids[0].clone();
            let Some(s) = is else {
                return (None, Card::Unknown);
            };
            let mut ok = true;
            let mut seen = std::collections::HashSet::new();
            for &k in keys {
                if k == 0 || k > s.arity() {
                    diags.push(unresolved_attr(k, &s, span));
                    ok = false;
                } else if !seen.insert(k) {
                    diags.push(Diagnostic::new(
                        Code::MalformedOperator,
                        span.clone(),
                        format!("attribute %{k} repeated in the grouping list"),
                    ));
                    ok = false;
                }
            }
            if *attr == 0 || *attr > s.arity() {
                diags.push(unresolved_attr(*attr, &s, span));
                ok = false;
            }
            let out_type = if ok {
                match s.dtype(*attr).and_then(|t| agg.result_type(t)) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        diags.push(Diagnostic::new(
                            Code::TypeMismatch,
                            span.clone(),
                            e.to_string(),
                        ));
                        None
                    }
                }
            } else {
                None
            };
            // the partiality lint (Definition 3.4): a whole-relation γ
            // hands the aggregate the entire input bag, which may be empty;
            // a keyed γ only ever aggregates nonempty groups
            let card = if keys.is_empty() {
                if agg.is_partial() {
                    match ic {
                        Card::Empty => diags.push(
                            Diagnostic::new(
                                Code::PartialAggregateOnEmpty,
                                span.clone(),
                                format!(
                                    "{} is undefined on an empty multi-set, and its \
                                     input here is provably empty",
                                    agg.name()
                                ),
                            )
                            .with_note(
                                "AVG, MIN and MAX are partial functions (Definition 3.4); \
                                 evaluating this plan always aborts",
                            ),
                        ),
                        Card::Unknown => diags.push(
                            Diagnostic::new(
                                Code::PartialAggregateMayBeUndefined,
                                span.clone(),
                                format!("{} over a whole relation that may be empty", agg.name()),
                            )
                            .with_note(
                                "AVG, MIN and MAX are partial functions (Definition 3.4): \
                                 undefined on the empty multi-set",
                            )
                            .with_note(
                                "guard the input so it is provably nonempty, or expect a \
                                 runtime abort on empty input",
                            ),
                        ),
                        Card::NonEmpty => {} // proved safe
                    }
                }
                // a defined whole-relation γ yields exactly one tuple
                match (agg.is_partial(), ic) {
                    (true, Card::Empty) => Card::Empty, // undefined anyway
                    _ => Card::NonEmpty,
                }
            } else {
                ic // one output tuple per nonempty group
            };
            let schema = out_type.map(|t| {
                let key_schema = if keys.is_empty() {
                    Schema::new(vec![])
                } else {
                    // indexes validated above, so the projection succeeds
                    let list = AttrList::new_unique(keys.clone()).expect("validated keys");
                    s.project(&list).expect("validated keys")
                };
                Arc::new(key_schema.with_attr(Attribute::anon(t)))
            });
            (schema, card)
        }
    }
}

/// Cartesian-product cardinality: multiplicities multiply.
fn product_card(l: Card, r: Card) -> Card {
    match (l, r) {
        (Card::Empty, _) | (_, Card::Empty) => Card::Empty,
        (Card::NonEmpty, Card::NonEmpty) => Card::NonEmpty,
        _ => Card::Unknown,
    }
}

fn unresolved_attr(index: usize, schema: &Schema, span: &Span) -> Diagnostic {
    Diagnostic::new(
        Code::UnresolvedAttr,
        span.clone(),
        format!(
            "attribute %{index} does not resolve (input arity {})",
            schema.arity()
        ),
    )
    .with_note(format!("the input schema is {schema}"))
}

/// Type-checks a selection/join condition: every problem inside the
/// predicate is reported, then the result type must be boolean.
fn check_predicate(
    predicate: &ScalarExpr,
    schema: &Schema,
    span: &Span,
    diags: &mut Vec<Diagnostic>,
) {
    if let Some(t) = check_scalar(predicate, schema, span, diags) {
        if t != DataType::Bool {
            diags.push(Diagnostic::new(
                Code::TypeMismatch,
                span.clone(),
                format!("condition has type {t}, expected bool"),
            ));
        }
    }
}

/// Resolves and types one scalar expression, reporting *all* unresolved
/// attributes and type clashes it contains (unlike
/// [`ScalarExpr::infer_type`], which stops at the first). Returns the
/// output domain when the tree typed.
pub(crate) fn check_scalar(
    e: &ScalarExpr,
    schema: &Schema,
    span: &Span,
    diags: &mut Vec<Diagnostic>,
) -> Option<DataType> {
    match e {
        ScalarExpr::Attr(i) => match schema.dtype(*i) {
            Ok(t) => Some(t),
            Err(_) => {
                diags.push(unresolved_attr(*i, schema, span));
                None
            }
        },
        ScalarExpr::Literal(v) => Some(v.data_type()),
        ScalarExpr::Arith(op, l, r) => {
            let lt = check_scalar(l, schema, span, diags);
            let rt = check_scalar(r, schema, span, diags);
            let (lt, rt) = (lt?, rt?);
            match arith_result_type(*op, lt, rt) {
                Ok(t) => Some(t),
                Err(e) => {
                    diags.push(Diagnostic::new(
                        Code::TypeMismatch,
                        span.clone(),
                        e.to_string(),
                    ));
                    None
                }
            }
        }
        ScalarExpr::Neg(inner) => {
            let t = check_scalar(inner, schema, span, diags)?;
            if t.is_numeric() {
                Some(t)
            } else {
                diags.push(Diagnostic::new(
                    Code::TypeMismatch,
                    span.clone(),
                    format!("cannot negate {t}"),
                ));
                None
            }
        }
        ScalarExpr::Cmp(op, l, r) => {
            let lt = check_scalar(l, schema, span, diags);
            let rt = check_scalar(r, schema, span, diags);
            let (lt, rt) = (lt?, rt?);
            if lt != rt {
                diags.push(Diagnostic::new(
                    Code::TypeMismatch,
                    span.clone(),
                    format!("cannot compare {lt} with {rt}"),
                ));
                return None;
            }
            if op.needs_order() && !lt.is_ordered() {
                diags.push(Diagnostic::new(
                    Code::TypeMismatch,
                    span.clone(),
                    format!("domain {lt} has no order for {op}"),
                ));
                return None;
            }
            Some(DataType::Bool)
        }
        ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
            let mut ok = true;
            for side in [l, r] {
                if let Some(t) = check_scalar(side, schema, span, diags) {
                    if t != DataType::Bool {
                        diags.push(Diagnostic::new(
                            Code::TypeMismatch,
                            span.clone(),
                            format!("boolean connective applied to {t}"),
                        ));
                        ok = false;
                    }
                } else {
                    ok = false;
                }
            }
            ok.then_some(DataType::Bool)
        }
        ScalarExpr::Not(inner) => {
            let t = check_scalar(inner, schema, span, diags)?;
            if t != DataType::Bool {
                diags.push(Diagnostic::new(
                    Code::TypeMismatch,
                    span.clone(),
                    format!("NOT applied to {t}"),
                ));
                return None;
            }
            Some(DataType::Bool)
        }
        ScalarExpr::Concat(l, r) => {
            let lt = check_scalar(l, schema, span, diags);
            let rt = check_scalar(r, schema, span, diags);
            let (lt, rt) = (lt?, rt?);
            if lt == DataType::Str && rt == DataType::Str {
                Some(DataType::Str)
            } else {
                diags.push(Diagnostic::new(
                    Code::TypeMismatch,
                    span.clone(),
                    format!("cannot concatenate {lt} with {rt}"),
                ));
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::Aggregate;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh")
    }

    fn analyze(expr: &RelExpr) -> PlanAnalysis {
        analyze_plan(expr, &catalog(), &CardEnv::new())
    }

    fn codes(a: &PlanAnalysis) -> Vec<Code> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn well_formed_plan_accepted_with_schema() {
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.0)))
            .project(&[1, 2]);
        let a = analyze(&e);
        assert!(a.is_accepted(), "{:?}", a.diagnostics);
        assert_eq!(a.schema.expect("typed").arity(), 2);
        assert_eq!(a.card, Card::Unknown);
    }

    #[test]
    fn unresolved_attribute_is_e0001_with_span() {
        let e = RelExpr::scan("beer").select(ScalarExpr::attr(7).eq(ScalarExpr::int(1)));
        let a = analyze(&e);
        assert_eq!(codes(&a), vec![Code::UnresolvedAttr]);
        assert_eq!(a.diagnostics[0].span.op, "select");
        assert!(a.schema.is_some(), "selection keeps its input schema");
    }

    #[test]
    fn multiple_problems_all_reported() {
        // %7 unresolved AND a str+int arithmetic clash, in one predicate
        let bad = ScalarExpr::attr(7).eq(ScalarExpr::int(1)).and(
            ScalarExpr::attr(1)
                .add(ScalarExpr::int(1))
                .eq(ScalarExpr::int(2)),
        );
        let a = analyze(&RelExpr::scan("beer").select(bad));
        assert_eq!(codes(&a), vec![Code::UnresolvedAttr, Code::TypeMismatch]);
    }

    #[test]
    fn unknown_relation_is_e0002_and_does_not_cascade() {
        let e = RelExpr::scan("ale").select(ScalarExpr::attr(1).eq(ScalarExpr::int(1)));
        let a = analyze(&e);
        // one root cause, no follow-on predicate errors
        assert_eq!(codes(&a), vec![Code::UnknownRelation]);
        assert!(a.schema.is_none());
    }

    #[test]
    fn incompatible_union_is_e0004() {
        let a = analyze(&RelExpr::scan("beer").union(RelExpr::scan("brewery")));
        assert_eq!(codes(&a), vec![Code::IncompatibleOperands]);
    }

    #[test]
    fn ext_project_type_error_is_e0003() {
        let e = RelExpr::scan("beer").ext_project(vec![
            ScalarExpr::attr(1).add(ScalarExpr::int(1)), // str + int
            ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)),
        ]);
        let a = analyze(&e);
        assert_eq!(codes(&a), vec![Code::TypeMismatch]);
        assert!(a.schema.is_none());
    }

    #[test]
    fn group_by_checks_keys_and_aggregate() {
        let a = analyze(&RelExpr::scan("beer").group_by(&[2, 2], Aggregate::Cnt, 1));
        assert_eq!(codes(&a), vec![Code::MalformedOperator]);
        let a = analyze(&RelExpr::scan("beer").group_by(&[2], Aggregate::Sum, 1));
        assert_eq!(codes(&a), vec![Code::TypeMismatch]);
        let a = analyze(&RelExpr::scan("beer").group_by(&[9], Aggregate::Cnt, 1));
        assert_eq!(codes(&a), vec![Code::UnresolvedAttr]);
    }

    #[test]
    fn partial_aggregate_over_unknown_input_warns_w0101() {
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::attr(3).cmp(mera_expr::CmpOp::Gt, ScalarExpr::real(9.0)))
            .group_by(&[], Aggregate::Avg, 3);
        let a = analyze(&e);
        assert_eq!(codes(&a), vec![Code::PartialAggregateMayBeUndefined]);
        assert!(a.is_accepted(), "warnings do not reject");
        assert_eq!(
            a.card,
            Card::NonEmpty,
            "a defined whole-relation γ yields one tuple"
        );
    }

    #[test]
    fn partial_aggregate_over_provably_empty_is_e0102() {
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::bool(false))
            .group_by(&[], Aggregate::Avg, 3);
        let a = analyze(&e);
        assert_eq!(codes(&a), vec![Code::PartialAggregateOnEmpty]);
        assert!(!a.is_accepted());
    }

    #[test]
    fn keyed_group_by_never_warns() {
        // groups are nonempty by construction
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::bool(false))
            .group_by(&[2], Aggregate::Avg, 3);
        let a = analyze(&e);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.card, Card::Empty);
    }

    #[test]
    fn total_aggregates_never_warn() {
        for agg in [Aggregate::Cnt, Aggregate::Sum] {
            let e = RelExpr::scan("beer")
                .select(ScalarExpr::bool(false))
                .group_by(&[], agg, 3);
            let a = analyze(&e);
            assert!(a.diagnostics.is_empty(), "{agg:?}: {:?}", a.diagnostics);
            assert_eq!(a.card, Card::NonEmpty);
        }
    }

    #[test]
    fn nonempty_literal_proves_partial_aggregate_safe() {
        let rel = relation_of(
            Schema::anon(&[DataType::Int]),
            vec![tuple![1_i64], tuple![2_i64]],
        )
        .expect("typed");
        let e = RelExpr::values(rel).group_by(&[], Aggregate::Avg, 1);
        let a = analyze(&e);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn card_env_feeds_scans() {
        let mut cards = CardEnv::new();
        cards.insert("beer".into(), Card::NonEmpty);
        let e = RelExpr::scan("beer").group_by(&[], Aggregate::Avg, 3);
        let a = analyze_plan(&e, &catalog(), &cards);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        cards.insert("beer".into(), Card::Empty);
        let a = analyze_plan(&e, &catalog(), &cards);
        assert_eq!(codes(&a), vec![Code::PartialAggregateOnEmpty]);
    }

    #[test]
    fn card_propagation_through_operators() {
        let mut cards = CardEnv::new();
        cards.insert("beer".into(), Card::NonEmpty);
        let cat = catalog();
        let card = |e: &RelExpr| analyze_plan(e, &cat, &cards).card;
        let beer = RelExpr::scan("beer");
        assert_eq!(card(&beer), Card::NonEmpty);
        assert_eq!(card(&beer.clone().distinct()), Card::NonEmpty);
        assert_eq!(card(&beer.clone().project(&[1])), Card::NonEmpty);
        assert_eq!(
            card(&beer.clone().union(RelExpr::scan("beer"))),
            Card::NonEmpty
        );
        assert_eq!(
            card(&beer.clone().product(RelExpr::scan("beer"))),
            Card::NonEmpty
        );
        assert_eq!(
            card(&beer.clone().select(ScalarExpr::bool(true))),
            Card::NonEmpty
        );
        assert_eq!(
            card(&beer.clone().select(ScalarExpr::bool(false))),
            Card::Empty
        );
        assert_eq!(
            card(&beer.clone().difference(RelExpr::scan("beer"))),
            Card::Unknown
        );
        assert_eq!(
            card(
                &beer
                    .clone()
                    .difference(RelExpr::scan("beer").select(ScalarExpr::bool(false)))
            ),
            Card::NonEmpty,
            "subtracting a provably-empty bag is the identity"
        );
        assert_eq!(
            card(&beer.intersect(RelExpr::scan("brewery"))),
            Card::Unknown
        );
    }

    #[test]
    fn lattice_join() {
        assert_eq!(Card::Empty.join(Card::Empty), Card::Empty);
        assert_eq!(Card::NonEmpty.join(Card::NonEmpty), Card::NonEmpty);
        assert_eq!(Card::Empty.join(Card::NonEmpty), Card::Unknown);
        assert_eq!(Card::Unknown.join(Card::Empty), Card::Unknown);
    }
}
