//! Structured diagnostics with stable codes.
//!
//! Every finding of the analyzer is a [`Diagnostic`]: a stable [`Code`]
//! (never renumbered, so tooling and tests can match on it), a
//! [`Severity`], a [`Span`] locating the offending plan node, a primary
//! message and optional notes. Rendering is deterministic — golden tests
//! pin the exact output.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The construct is suspicious but may execute fine (lint).
    Warning,
    /// The construct is certain to fail (or be unsound) at runtime.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes.
///
/// The numbering is grouped by pass: `E00xx` schema/type inference,
/// `x01xx` partiality/emptiness analysis, `E02xx` rewrite soundness,
/// `E03xx` materialized-view validation, `E04xx` key constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `E0001` — an attribute reference `%i` that does not resolve against
    /// the input schema (out of range, or index 0).
    UnresolvedAttr,
    /// `E0002` — a scanned relation name unknown to the catalog.
    UnknownRelation,
    /// `E0003` — an ill-typed scalar expression or aggregate/domain
    /// mismatch (arithmetic between incompatible domains, non-boolean
    /// predicate, `SUM` over strings, …).
    TypeMismatch,
    /// `E0004` — operands of `⊎`/`−`/`∩` (or a DML source and its target
    /// relation) with incompatible schemas.
    IncompatibleOperands,
    /// `E0005` — a structurally malformed operator: empty extended
    /// projection list, duplicated group-by key, non-binary closure input.
    MalformedOperator,
    /// `E0006` — an assignment that would shadow a database relation.
    DuplicateRelation,
    /// `E0007` — an `update` expression list that changes the target
    /// relation's schema (Definition 4.1 requires structure preservation).
    UpdateSchemaChange,
    /// `W0101` — a partial aggregate (`AVG`/`MIN`/`MAX`/…) applied by a
    /// whole-relation `γ` to an input that *may* be empty (Definition 3.4:
    /// these aggregates are undefined on the empty multi-set).
    PartialAggregateMayBeUndefined,
    /// `E0102` — a partial aggregate applied by a whole-relation `γ` to an
    /// input that is *provably* empty: the plan cannot evaluate.
    PartialAggregateOnEmpty,
    /// `E0201` — a rewrite whose declared precondition could not be
    /// discharged, or that a differential check proved unsound.
    UnsoundRewrite,
    /// `E0301` — a materialized view whose definition scans the view
    /// itself (directly or through another view): delta maintenance needs
    /// a well-founded dependency order.
    SelfReferentialView,
    /// `E0302` — a DML statement (`insert`/`delete`/`update`/assignment)
    /// targeting a materialized view; views are refreshed from their base
    /// relations, never written directly.
    DmlOnView,
    /// `E0303` — a view definition that is not *total*: some database
    /// state would make its evaluation fail (a partial aggregate over a
    /// possibly-empty input). Views must refresh unconditionally at every
    /// commit, so the `W0101` lint escalates to an error here.
    PartialView,
    /// `E0401` — a transaction whose commit would violate a declared key:
    /// after applying the deltas, some point of the key projection would
    /// carry a summed multiplicity greater than one.
    KeyViolation,
    /// `E0402` — a key declared on a materialized view; keys constrain
    /// base relations, a view's duplicate-freeness is *derived* (from its
    /// definition) rather than declared.
    KeyOnView,
    /// `E0403` — a key declared twice for the same relation and attribute
    /// set; declarations are durable DDL, so a redeclaration is a bug in
    /// the script rather than a no-op.
    DuplicateKeyDeclaration,
}

impl Code {
    /// The stable textual code (`E0001`, `W0101`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnresolvedAttr => "E0001",
            Code::UnknownRelation => "E0002",
            Code::TypeMismatch => "E0003",
            Code::IncompatibleOperands => "E0004",
            Code::MalformedOperator => "E0005",
            Code::DuplicateRelation => "E0006",
            Code::UpdateSchemaChange => "E0007",
            Code::PartialAggregateMayBeUndefined => "W0101",
            Code::PartialAggregateOnEmpty => "E0102",
            Code::UnsoundRewrite => "E0201",
            Code::SelfReferentialView => "E0301",
            Code::DmlOnView => "E0302",
            Code::PartialView => "E0303",
            Code::KeyViolation => "E0401",
            Code::KeyOnView => "E0402",
            Code::DuplicateKeyDeclaration => "E0403",
        }
    }

    /// The severity this code always carries (`W…` codes warn, `E…` codes
    /// error).
    pub fn severity(self) -> Severity {
        match self {
            Code::PartialAggregateMayBeUndefined => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: a statement index within the analyzed
/// program (if any) and a root-to-node child path within that statement's
/// plan tree, tagged with the node's operator name.
///
/// Plans have no source text of their own, so the span is *structural*:
/// `/1/0` names the first child of the root's second child. Front-ends
/// that track source positions can attach them via [`Diagnostic::notes`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Span {
    /// 0-based statement index inside the analyzed program, if the
    /// diagnostic arose from program analysis.
    pub stmt: Option<usize>,
    /// Child indexes from the plan root down to the node.
    pub path: Vec<usize>,
    /// The operator name of the node (`"group-by"`, `"select"`, …).
    pub op: &'static str,
}

impl Span {
    /// A span at the root of a bare expression.
    pub fn root(op: &'static str) -> Self {
        Span {
            stmt: None,
            path: Vec::new(),
            op,
        }
    }

    /// Extends the path with one child step.
    pub fn child(&self, index: usize, op: &'static str) -> Self {
        let mut path = self.path.clone();
        path.push(index);
        Span {
            stmt: self.stmt,
            path,
            op,
        }
    }

    /// The same span placed inside statement `stmt`.
    pub fn in_stmt(mut self, stmt: usize) -> Self {
        self.stmt = Some(stmt);
        self
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = self.stmt {
            write!(f, "stmt {s}, ")?;
        }
        write!(f, "node /")?;
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " ({})", self.op)
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (derived from the code).
    pub severity: Severity,
    /// Where in the program/plan.
    pub span: Span,
    /// The primary message.
    pub message: String,
    /// Secondary explanations (rendered as indented `note:` lines).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic; severity comes from the code.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Appends an explanatory note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// True for error-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    /// `error[E0102]: AVG is undefined … [stmt 0, node /0 (group-by)]`
    /// followed by one indented `note:` line per note.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} [{}]",
            self.severity, self.code, self.message, self.span
        )?;
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

/// Renders a batch of diagnostics one per line (notes indented), in the
/// order produced by the analyzer.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&d.to_string());
    }
    out
}

/// True when any diagnostic is error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// The first error-severity diagnostic, if any.
pub fn first_error(diags: &[Diagnostic]) -> Option<&Diagnostic> {
    diags.iter().find(|d| d.is_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Code::UnresolvedAttr.as_str(), "E0001");
        assert_eq!(Code::PartialAggregateMayBeUndefined.as_str(), "W0101");
        assert_eq!(Code::PartialAggregateOnEmpty.as_str(), "E0102");
        assert_eq!(Code::UnsoundRewrite.as_str(), "E0201");
        assert_eq!(Code::KeyViolation.as_str(), "E0401");
        assert_eq!(Code::KeyOnView.as_str(), "E0402");
        assert_eq!(Code::DuplicateKeyDeclaration.as_str(), "E0403");
        assert_eq!(
            Code::PartialAggregateMayBeUndefined.severity(),
            Severity::Warning
        );
        assert_eq!(Code::UnresolvedAttr.severity(), Severity::Error);
    }

    #[test]
    fn rendering_is_deterministic() {
        let d = Diagnostic::new(
            Code::UnresolvedAttr,
            Span::root("select").child(0, "scan").in_stmt(2),
            "attribute %4 does not resolve (input arity 3)",
        )
        .with_note("the input schema is (int, str, real)");
        assert_eq!(
            d.to_string(),
            "error[E0001]: attribute %4 does not resolve (input arity 3) \
             [stmt 2, node /0 (scan)]\n  note: the input schema is (int, str, real)"
        );
    }

    #[test]
    fn span_paths_compose() {
        let root = Span::root("union");
        let right = root.child(1, "select").child(0, "scan");
        assert_eq!(right.to_string(), "node /1/0 (scan)");
        assert_eq!(root.to_string(), "node / (union)");
    }

    #[test]
    fn error_helpers() {
        let w = Diagnostic::new(
            Code::PartialAggregateMayBeUndefined,
            Span::root("group-by"),
            "may be empty",
        );
        let e = Diagnostic::new(
            Code::UnknownRelation,
            Span::root("scan"),
            "no such relation",
        );
        assert!(!has_errors(std::slice::from_ref(&w)));
        assert!(has_errors(&[w.clone(), e.clone()]));
        assert_eq!(first_error(&[w, e.clone()]), Some(&e));
        assert!(render(std::slice::from_ref(&e)).starts_with("error[E0002]"));
    }
}
