//! Rewrite-soundness checking: rule preconditions as data.
//!
//! The paper's §3.3 is precise about which classical identities survive
//! the move to multi-sets — and which do not (Theorem 3.3: `δ` does *not*
//! distribute over `⊎`). An optimizer rule therefore carries its
//! soundness argument as a [`Precondition`]: a citation-style
//! justification plus zero or more machine-checkable [`Condition`]s. The
//! driver calls [`discharge`] on **every** application; a condition that
//! cannot be discharged turns the application into a refusal carrying a
//! [`Code::UnsoundRewrite`] diagnostic instead of a rewritten plan.
//!
//! Static discharge is necessarily conservative; the companion
//! [`differential`](crate::differential) module cross-checks applied
//! rewrites dynamically in debug builds.

use mera_expr::{RelExpr, ScalarExpr, SchemaProvider};

use mera_core::prelude::Value;

use crate::diag::{Code, Diagnostic, Span};
use crate::props::{infer_props, KeyEnv};

/// One machine-checkable soundness obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// The replacement must have the same schema as the original (every
    /// rule owes this; Definition 3.2's operators are schema-functional).
    SchemaPreserved,
    /// The replacement's output must be provably duplicate-free — the
    /// obligation of `δE → E` style rules, where dropping the `δ` is only
    /// the identity on multi-sets that are already sets.
    OutputDuplicateFree,
    /// The original must be `δ(E₁ ⊎ E₂)` with provably *disjoint*
    /// operands — the only case where `δ` distributes over `⊎`
    /// (Theorem 3.3 shows it does not in general). Statically this is
    /// dischargeable only when one operand is provably empty.
    DisjointUnionOperands,
    /// The original must be a `γ` whose grouping columns form a superkey
    /// of its input under the inferred plan properties
    /// ([`infer_props`]) — the obligation of keyed-γ simplification,
    /// where every group is a singleton with multiplicity 1. Only
    /// dischargeable when declared keys are in scope ([`discharge_with`]).
    InputKeyedByGroupColumns,
}

/// A rule's declared soundness argument.
#[derive(Debug, Clone)]
pub struct Precondition {
    /// Why the rewrite is sound (a theorem citation or a multiplicity
    /// argument) — surfaced in refusal diagnostics.
    pub justification: &'static str,
    /// The obligations [`discharge`] must prove per application.
    pub conditions: Vec<Condition>,
}

impl Precondition {
    /// The baseline every rule owes: schema preservation.
    pub fn schema_preserving(justification: &'static str) -> Self {
        Precondition {
            justification,
            conditions: vec![Condition::SchemaPreserved],
        }
    }

    /// Adds an obligation.
    pub fn with(mut self, condition: Condition) -> Self {
        self.conditions.push(condition);
        self
    }
}

/// Attempts to discharge every obligation of `pre` for one application
/// rewriting `before` into `after`. `Err` carries the `E0201` diagnostic
/// the driver turns into a refusal.
///
/// Discharges against an empty [`KeyEnv`]: only syntactic facts are
/// available. Use [`discharge_with`] to make declared keys (and the
/// property inference built on them) available to the obligations.
pub fn discharge<P: SchemaProvider>(
    rule_name: &str,
    pre: &Precondition,
    before: &RelExpr,
    after: &RelExpr,
    provider: &P,
) -> Result<(), Diagnostic> {
    discharge_with(rule_name, pre, before, after, provider, &KeyEnv::new())
}

/// [`discharge`] with declared key constraints in scope: the
/// `OutputDuplicateFree` obligation is proven either syntactically
/// ([`duplicate_free`]) or semantically, from the property lattice
/// ([`infer_props`]) grounded in `keys`.
pub fn discharge_with<P: SchemaProvider>(
    rule_name: &str,
    pre: &Precondition,
    before: &RelExpr,
    after: &RelExpr,
    provider: &P,
    keys: &KeyEnv,
) -> Result<(), Diagnostic> {
    for condition in &pre.conditions {
        match condition {
            Condition::SchemaPreserved => {
                // an untypable original is not this rule's fault — the
                // schema pass reports it; only judge typable inputs
                let Ok(b) = before.schema(provider) else {
                    continue;
                };
                let a = after.schema(provider).map_err(|e| {
                    refusal(
                        rule_name,
                        pre,
                        before,
                        format!("replacement does not type: {e}"),
                    )
                })?;
                if !b.same_types(&a) {
                    return Err(refusal(
                        rule_name,
                        pre,
                        before,
                        format!("replacement changes the schema from {b} to {a}"),
                    ));
                }
            }
            Condition::OutputDuplicateFree => {
                if !duplicate_free_with(after, provider, keys) {
                    return Err(refusal(
                        rule_name,
                        pre,
                        before,
                        "cannot prove the replacement's output duplicate-free",
                    )
                    .with_note(
                        "dropping a δ is only sound over multi-sets that are \
                         already sets",
                    ));
                }
            }
            Condition::InputKeyedByGroupColumns => {
                let keyed = match before {
                    RelExpr::GroupBy {
                        input,
                        keys: group_cols,
                        ..
                    } if !group_cols.is_empty() => {
                        let cols = group_cols.iter().copied().collect();
                        infer_props(input.as_ref(), provider, keys).is_superkey(&cols)
                    }
                    _ => false,
                };
                if !keyed {
                    return Err(refusal(
                        rule_name,
                        pre,
                        before,
                        "cannot prove the grouping columns form a key of the \
                         γ input",
                    )
                    .with_note(
                        "collapsing γ to a projection is only sound when every \
                         group is a singleton with multiplicity 1",
                    ));
                }
            }
            Condition::DisjointUnionOperands => {
                let disjoint = match before {
                    RelExpr::Distinct(inner) => match inner.as_ref() {
                        RelExpr::Union(l, r) => provably_empty(l) || provably_empty(r),
                        _ => false,
                    },
                    _ => false,
                };
                if !disjoint {
                    return Err(refusal(
                        rule_name,
                        pre,
                        before,
                        "cannot prove the union operands disjoint",
                    )
                    .with_note(
                        "δ does not distribute over ⊎ (Theorem 3.3): \
                         δ(E₁ ⊎ E₂) = δE₁ ⊎ δE₂ fails whenever the operands share \
                         a tuple",
                    ));
                }
            }
        }
    }
    Ok(())
}

fn refusal(
    rule_name: &str,
    pre: &Precondition,
    before: &RelExpr,
    why: impl Into<String>,
) -> Diagnostic {
    Diagnostic::new(
        Code::UnsoundRewrite,
        Span::root(before.op_name()),
        format!("rule `{rule_name}` refused: {}", why.into()),
    )
    .with_note(format!("rule justification: {}", pre.justification))
}

/// True when every tuple of `expr`'s output provably has multiplicity 1.
///
/// This is the static property behind distinct-pruning: `δ`, `γ` and `α`
/// produce sets by definition, a literal is a set when its multiplicities
/// all equal 1, and `σ` preserves set-ness. Everything else (notably `⊎`,
/// `×` and `π`, which *create* duplicates) is conservatively `false`.
pub fn duplicate_free(expr: &RelExpr) -> bool {
    match expr {
        RelExpr::Distinct(_) | RelExpr::GroupBy { .. } | RelExpr::Closure(_) => true,
        RelExpr::Values(rel) => rel.iter().all(|(_, m)| m == 1),
        RelExpr::Select { input, .. } => duplicate_free(input),
        _ => false,
    }
}

/// [`duplicate_free`] strengthened by declared key constraints: falls
/// back to the full property inference ([`infer_props`]) when the
/// syntactic check fails, so e.g. a scan of a keyed relation — or a
/// key-preserving join/projection chain over one — is recognized as a
/// set.
pub fn duplicate_free_with<P: SchemaProvider + ?Sized>(
    expr: &RelExpr,
    provider: &P,
    keys: &KeyEnv,
) -> bool {
    duplicate_free(expr) || (!keys.is_empty() && infer_props(expr, provider, keys).duplicate_free)
}

/// True when `expr` provably evaluates to the empty multi-set, by
/// structure alone (no catalog facts): an empty literal, `σ_false`, and
/// the emptiness-propagation laws of the operators.
pub fn provably_empty(expr: &RelExpr) -> bool {
    match expr {
        RelExpr::Scan(_) => false,
        RelExpr::Values(rel) => rel.is_empty(),
        RelExpr::Union(l, r) => provably_empty(l) && provably_empty(r),
        RelExpr::Difference(l, _) => provably_empty(l),
        RelExpr::Product(l, r)
        | RelExpr::Join {
            left: l, right: r, ..
        } => provably_empty(l) || provably_empty(r),
        RelExpr::Intersect(l, r) => provably_empty(l) || provably_empty(r),
        RelExpr::Select { input, predicate } => {
            matches!(predicate, ScalarExpr::Literal(Value::Bool(false))) || provably_empty(input)
        }
        RelExpr::Project { input, .. }
        | RelExpr::ExtProject { input, .. }
        | RelExpr::Distinct(input)
        | RelExpr::Closure(input) => provably_empty(input),
        // a whole-relation γ of an empty input either errors (partial
        // aggregate) or yields one tuple (CNT/SUM) — never empty
        RelExpr::GroupBy { input, keys, .. } => !keys.is_empty() && provably_empty(input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::prelude::*;
    use mera_expr::Aggregate;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh")
    }

    fn empty_scan() -> RelExpr {
        RelExpr::scan("r").select(ScalarExpr::bool(false))
    }

    #[test]
    fn schema_preservation_discharges_and_refuses() {
        let pre = Precondition::schema_preserving("test");
        let before = RelExpr::scan("r").select(ScalarExpr::bool(true));
        let same = RelExpr::scan("r");
        assert!(discharge("t", &pre, &before, &same, &catalog()).is_ok());

        let narrower = RelExpr::scan("r").project(&[1]);
        let d = discharge("t", &pre, &before, &narrower, &catalog()).unwrap_err();
        assert_eq!(d.code, Code::UnsoundRewrite);
        assert!(d.message.contains("changes the schema"), "{}", d.message);
    }

    #[test]
    fn untypable_original_is_not_judged() {
        let pre = Precondition::schema_preserving("test");
        let before = RelExpr::scan("nonexistent");
        let after = RelExpr::scan("also_nonexistent");
        assert!(discharge("t", &pre, &before, &after, &catalog()).is_ok());
    }

    #[test]
    fn duplicate_free_obligation() {
        let pre = Precondition::schema_preserving("δE → E when E is a set")
            .with(Condition::OutputDuplicateFree);
        let set = RelExpr::scan("r").distinct();
        let before = set.clone().distinct();
        assert!(discharge("t", &pre, &before, &set, &catalog()).is_ok());

        let bag = RelExpr::scan("r");
        let before = bag.clone().distinct();
        let d = discharge("t", &pre, &before, &bag, &catalog()).unwrap_err();
        assert_eq!(d.code, Code::UnsoundRewrite);
    }

    #[test]
    fn disjoint_union_only_discharges_with_an_empty_operand() {
        let pre = Precondition::schema_preserving("δ over ⊎ needs disjointness")
            .with(Condition::DisjointUnionOperands);
        // δ(r ⊎ r): operands share every tuple — must refuse
        let before = RelExpr::scan("r").union(RelExpr::scan("r")).distinct();
        let after = RelExpr::scan("r")
            .distinct()
            .union(RelExpr::scan("r").distinct());
        let d = discharge("t", &pre, &before, &after, &catalog()).unwrap_err();
        assert_eq!(d.code, Code::UnsoundRewrite);
        assert!(d.notes.iter().any(|n| n.contains("Theorem 3.3")));

        // δ(r ⊎ σ_false(r)): right operand provably empty — disjoint
        let before = RelExpr::scan("r").union(empty_scan()).distinct();
        let after = RelExpr::scan("r").distinct().union(empty_scan().distinct());
        assert!(discharge("t", &pre, &before, &after, &catalog()).is_ok());
    }

    #[test]
    fn provably_empty_structure() {
        assert!(provably_empty(&empty_scan()));
        assert!(provably_empty(&empty_scan().product(RelExpr::scan("r"))));
        assert!(provably_empty(&empty_scan().project(&[1])));
        assert!(provably_empty(&empty_scan().group_by(
            &[1],
            Aggregate::Cnt,
            1
        )));
        assert!(!provably_empty(&RelExpr::scan("r")));
        assert!(!provably_empty(&empty_scan().group_by(
            &[],
            Aggregate::Cnt,
            1
        )));
        assert!(!provably_empty(&RelExpr::scan("r").union(empty_scan())));
        assert!(provably_empty(&empty_scan().union(empty_scan())));
    }

    #[test]
    fn duplicate_free_structure() {
        assert!(duplicate_free(&RelExpr::scan("r").distinct()));
        assert!(duplicate_free(&RelExpr::scan("r").group_by(
            &[1],
            Aggregate::Cnt,
            1
        )));
        assert!(duplicate_free(
            &RelExpr::scan("r").distinct().select(ScalarExpr::bool(true))
        ));
        assert!(!duplicate_free(&RelExpr::scan("r")));
        assert!(!duplicate_free(
            &RelExpr::scan("r")
                .distinct()
                .union(RelExpr::scan("r").distinct())
        ));
    }
}
