//! Plan-property inference: keys, functional dependencies and
//! duplicate-freeness as *derivable* properties of an expression.
//!
//! The paper's formal core is exactly when δ commutes with or becomes
//! redundant under the multi-set operators (Theorem 3.3 and the
//! Definition 3.4 family). This module answers that question *semantically*
//! instead of syntactically: a bottom-up abstract interpretation derives,
//! for every plan node, a [`Props`] lattice element — candidate keys,
//! functional dependencies, duplicate-freeness ("set-ness"), and constant
//! columns — from declared key constraints ([`KeyEnv`]) and the structure
//! of the operators.
//!
//! # The bag-model key
//!
//! Over multi-sets, a column set `K` is a **key** of an expression `E` iff
//! for every point of the `K`-projection the summed multiplicity of the
//! tuples of `E` agreeing on `K` is at most one. Two consequences shape
//! the lattice:
//!
//! * a key implies duplicate-freeness (each tuple's own multiplicity is
//!   bounded by its `K`-group's total), and
//! * the empty key means `|E| ≤ 1`.
//!
//! # Transfer functions
//!
//! * `scan r` — the declared keys of `r` ([`KeyEnv`]);
//! * `values` — duplicate-free iff every multiplicity is 1 (then the full
//!   column set is a key); single-valued columns are constants;
//! * `σ` — preserves keys and set-ness (multiplicities only shrink);
//!   `%i = lit` conjuncts add constants, `%i = %j` conjuncts add FDs, and
//!   constants shrink keys (a constant column discriminates nothing);
//! * `π` — keeps a key iff the retained columns *determine* it (FD
//!   closure); otherwise collapsing sums multiplicities and every fact is
//!   lost;
//! * `×` — set iff both sides are sets; keys compose pairwise;
//! * `⋈` — `×` then `σ`, plus the equi-join FD refinement: when one
//!   side's join columns cover a key of that side, each tuple of the
//!   *other* side matches at most once, so the other side's keys survive
//!   alone;
//! * `⊎` — destroys set-ness unless an operand is provably empty
//!   (Theorem 3.3's caveat: δ does not distribute over ⊎);
//! * `−`, `∩` — multiplicities only decrease, so facts of the left
//!   operand (both operands, for `∩`) persist;
//! * `δ`, `α` — sets by definition (full column set is a key);
//! * `γ` — one output tuple per group: the group-by columns are a key of
//!   the output (the empty grouping yields at most one row).
//!
//! Non-nullability is part of the lattice in spirit but vacuous in this
//! core: the value domain ([`mera_core::prelude::Value`]) has no NULL, so
//! every column of every expression is trivially non-nullable and no
//! transfer function needs to track it.

use std::collections::{BTreeMap, BTreeSet};

use mera_expr::{CmpOp, RelExpr, ScalarExpr, SchemaProvider};

use crate::rewrite::provably_empty;

/// Declared key constraints: the ground facts of the property inference.
///
/// Maps each relation to its declared candidate keys (1-based attribute
/// sets). Built from the catalog's durable key definitions; the planner
/// must omit relations whose pre-transaction key facts are stale (dirtied
/// by the running transaction), exactly like index access paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyEnv {
    keys: BTreeMap<String, Vec<Vec<usize>>>,
}

impl KeyEnv {
    /// An environment with no declared keys.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no key is declared at all.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Declares `attrs` (1-based) as a candidate key of `relation`.
    pub fn declare(&mut self, relation: impl Into<String>, attrs: Vec<usize>) {
        self.keys.entry(relation.into()).or_default().push(attrs);
    }

    /// Builds an environment from durable `(relation, key attrs)`
    /// definitions — the shape the catalog's key set reports.
    pub fn from_definitions(defs: &[(String, Vec<usize>)]) -> Self {
        let mut env = KeyEnv::new();
        for (relation, attrs) in defs {
            env.declare(relation.clone(), attrs.clone());
        }
        env
    }

    /// The declared keys of a relation (empty when none).
    pub fn keys_of(&self, relation: &str) -> &[Vec<usize>] {
        self.keys
            .get(relation)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }
}

/// The structural properties of one plan node's output.
///
/// `keys` holds *minimal* candidate keys (no key is a superset of
/// another); `fds` holds functional dependencies gathered from equality
/// predicates; `constants` holds columns provably single-valued. The
/// invariant `!keys.is_empty() ⇒ duplicate_free` always holds (see the
/// module docs for the bag-model key definition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Props {
    /// Output arity (0 when the expression does not type-check).
    pub arity: usize,
    /// Minimal candidate keys, as 1-based column sets.
    pub keys: Vec<BTreeSet<usize>>,
    /// Functional dependencies `lhs → rhs` from equality predicates.
    pub fds: Vec<(BTreeSet<usize>, usize)>,
    /// True when every output tuple provably has multiplicity 1.
    pub duplicate_free: bool,
    /// Columns provably holding a single value across all output tuples.
    pub constants: BTreeSet<usize>,
}

impl Props {
    /// The bottom element: nothing is known.
    pub fn bottom(arity: usize) -> Self {
        Props {
            arity,
            keys: Vec::new(),
            fds: Vec::new(),
            duplicate_free: false,
            constants: BTreeSet::new(),
        }
    }

    /// Adds a candidate key, keeping the key list minimal: supersets of an
    /// existing key are dropped, existing supersets of the new key are
    /// evicted. A key implies duplicate-freeness.
    pub fn add_key(&mut self, key: BTreeSet<usize>) {
        if self.keys.iter().any(|k| k.is_subset(&key)) {
            return;
        }
        self.keys.retain(|k| !key.is_subset(k));
        self.keys.push(key);
        self.duplicate_free = true;
    }

    /// True when `cols` is a (super)key of this output.
    pub fn is_superkey(&self, cols: &BTreeSet<usize>) -> bool {
        let closed = self.closure(cols);
        self.keys.iter().any(|k| k.is_subset(&closed))
    }

    /// The FD closure of a column set: everything determined by `cols`
    /// under the gathered dependencies, with constants determined by ∅.
    pub fn closure(&self, cols: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closed: BTreeSet<usize> = cols.union(&self.constants).copied().collect();
        loop {
            let before = closed.len();
            for (lhs, rhs) in &self.fds {
                if lhs.is_subset(&closed) {
                    closed.insert(*rhs);
                }
            }
            if closed.len() == before {
                return closed;
            }
        }
    }

    /// Constants discriminate nothing, so every key shrinks by them;
    /// re-minimalizes the key list.
    fn shrink_keys_by_constants(&mut self) {
        if self.constants.is_empty() || self.keys.is_empty() {
            return;
        }
        let old = std::mem::take(&mut self.keys);
        for k in old {
            self.add_key(k.difference(&self.constants).copied().collect());
        }
    }

    /// Renders the properties for EXPLAIN output: `[key: (a,b), set]`.
    /// Empty when nothing beyond the trivial is known.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(key) = self.keys.iter().min_by_key(|k| (k.len(), (*k).clone())) {
            let cols: Vec<String> = key.iter().map(|c| format!("%{c}")).collect();
            parts.push(format!("key: ({})", cols.join(",")));
        }
        if self.duplicate_free {
            parts.push("set".to_owned());
        }
        if !self.constants.is_empty() {
            let cols: Vec<String> = self.constants.iter().map(|c| format!("%{c}")).collect();
            parts.push(format!("const: {}", cols.join(",")));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("[{}]", parts.join(", "))
        }
    }
}

/// Derives the structural properties of `expr`'s output by bottom-up
/// abstract interpretation (see the module docs for the per-operator
/// transfer functions). Total: an expression that does not type-check
/// gets [`Props::bottom`], never an error.
pub fn infer_props<P: SchemaProvider + ?Sized>(
    expr: &RelExpr,
    provider: &P,
    env: &KeyEnv,
) -> Props {
    match expr {
        RelExpr::Scan(name) => {
            let Ok(schema) = provider.relation_schema(name) else {
                return Props::bottom(0);
            };
            let arity = schema.arity();
            let mut p = Props::bottom(arity);
            for key in env.keys_of(name) {
                if key.iter().all(|&a| a >= 1 && a <= arity) {
                    p.add_key(key.iter().copied().collect());
                }
            }
            p
        }
        RelExpr::Values(rel) => {
            let arity = rel.schema().arity();
            let mut p = Props::bottom(arity);
            let mut total: u64 = 0;
            let mut duplicate_free = true;
            for (_, m) in rel.iter() {
                total += m;
                if m != 1 {
                    duplicate_free = false;
                }
            }
            if total <= 1 {
                p.add_key(BTreeSet::new());
            } else if duplicate_free {
                p.add_key((1..=arity).collect());
            }
            for col in 1..=arity {
                let mut values = rel.support().map(|t| &t.values()[col - 1]);
                if let Some(first) = values.next() {
                    if values.all(|v| v == first) {
                        p.constants.insert(col);
                    }
                }
            }
            p.shrink_keys_by_constants();
            p
        }
        RelExpr::Select { input, predicate } => {
            let p = infer_props(input, provider, env);
            apply_predicate(p, predicate)
        }
        RelExpr::Project { input, attrs } => {
            let p = infer_props(input, provider, env);
            project_props(&p, attrs.indexes())
        }
        RelExpr::ExtProject { input, exprs } => {
            let p = infer_props(input, provider, env);
            let mut out = ext_project_props(&p, exprs);
            for (pos, e) in exprs.iter().enumerate() {
                if matches!(e, ScalarExpr::Literal(_)) {
                    out.constants.insert(pos + 1);
                }
            }
            out.shrink_keys_by_constants();
            out
        }
        RelExpr::Union(l, r) => {
            // Theorem 3.3's caveat: ⊎ adds multiplicities, so set-ness dies
            // unless an operand contributes nothing.
            if provably_empty(l) {
                infer_props(r, provider, env)
            } else if provably_empty(r) {
                infer_props(l, provider, env)
            } else {
                Props::bottom(infer_props(l, provider, env).arity)
            }
        }
        RelExpr::Difference(l, _) => {
            // max(0, m₁−m₂): a sub-bag of the left operand, so every left
            // fact persists.
            infer_props(l, provider, env)
        }
        RelExpr::Intersect(l, r) => {
            // min(m₁, m₂): a sub-bag of both operands over one schema.
            let pl = infer_props(l, provider, env);
            let pr = infer_props(r, provider, env);
            let mut p = pl;
            for k in pr.keys {
                p.add_key(k);
            }
            p.duplicate_free |= pr.duplicate_free;
            p.constants.extend(pr.constants);
            p.fds.extend(pr.fds);
            p.shrink_keys_by_constants();
            p
        }
        RelExpr::Product(l, r) => {
            let pl = infer_props(l, provider, env);
            let pr = infer_props(r, provider, env);
            product_props(&pl, &pr)
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let pl = infer_props(left, provider, env);
            let pr = infer_props(right, provider, env);
            let la = pl.arity;
            let product = product_props(&pl, &pr);
            let mut p = apply_predicate(product, predicate);
            if la == 0 || pl.arity + pr.arity != p.arity {
                return p;
            }
            // equi-join FD refinement: one side's join columns covering a
            // key of that side bounds the match count per opposite tuple
            let mut left_cols = BTreeSet::new();
            let mut right_cols = BTreeSet::new();
            for conj in predicate.conjuncts() {
                if let ScalarExpr::Cmp(CmpOp::Eq, a, b) = conj {
                    if let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) {
                        let (lo, hi) = if i <= j { (*i, *j) } else { (*j, *i) };
                        if lo >= 1 && lo <= la && hi > la && hi <= p.arity {
                            left_cols.insert(lo);
                            right_cols.insert(hi - la);
                        }
                    }
                }
            }
            if pr.is_superkey(&right_cols) && !right_cols.is_empty() {
                for k in &pl.keys {
                    p.add_key(k.clone());
                }
                p.duplicate_free |= pl.duplicate_free && pr.duplicate_free;
            }
            if pl.is_superkey(&left_cols) && !left_cols.is_empty() {
                for k in &pr.keys {
                    p.add_key(k.iter().map(|c| c + la).collect());
                }
                p.duplicate_free |= pl.duplicate_free && pr.duplicate_free;
            }
            p.shrink_keys_by_constants();
            p
        }
        RelExpr::Distinct(input) => {
            let mut p = infer_props(input, provider, env);
            p.duplicate_free = true;
            p.add_key((1..=p.arity).collect());
            p.shrink_keys_by_constants();
            p
        }
        RelExpr::GroupBy { input, keys, .. } => {
            let p = infer_props(input, provider, env);
            let arity = keys.len() + 1;
            let mut out = Props::bottom(arity);
            out.add_key((1..=keys.len()).collect());
            for (pos, &src) in keys.iter().enumerate() {
                if p.constants.contains(&src) {
                    out.constants.insert(pos + 1);
                }
            }
            out.shrink_keys_by_constants();
            out
        }
        RelExpr::Closure(_) => {
            // α is duplicate-free by definition (Definition 3.5)
            let mut p = Props::bottom(2);
            p.add_key([1, 2].into_iter().collect());
            p
        }
    }
}

/// The σ transfer function: keys and set-ness survive (multiplicities
/// only shrink), equality conjuncts add constants and FDs, and constants
/// shrink keys.
fn apply_predicate(mut p: Props, predicate: &ScalarExpr) -> Props {
    for conj in predicate.conjuncts() {
        if let ScalarExpr::Cmp(CmpOp::Eq, a, b) = conj {
            match (a.as_ref(), b.as_ref()) {
                (ScalarExpr::Attr(i), ScalarExpr::Literal(_))
                | (ScalarExpr::Literal(_), ScalarExpr::Attr(i))
                    if *i >= 1 && *i <= p.arity =>
                {
                    p.constants.insert(*i);
                }
                (ScalarExpr::Attr(i), ScalarExpr::Attr(j))
                    if *i >= 1 && *i <= p.arity && *j >= 1 && *j <= p.arity && i != j =>
                {
                    p.fds.push(([*i].into_iter().collect(), *j));
                    p.fds.push(([*j].into_iter().collect(), *i));
                }
                _ => {}
            }
        }
    }
    p.shrink_keys_by_constants();
    p
}

/// The π transfer function over a plain attribute list (1-based input
/// attrs in output order).
fn project_props(p: &Props, attrs: &[usize]) -> Props {
    let arity = attrs.len();
    let mut out = Props::bottom(arity);
    if attrs.iter().any(|&a| a < 1 || a > p.arity) {
        return out;
    }
    // first output position of each retained input attr
    let mut pos_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (pos, &src) in attrs.iter().enumerate() {
        pos_of.entry(src).or_insert(pos + 1);
    }
    let retained: BTreeSet<usize> = pos_of.keys().copied().collect();

    // π keeps a key iff it retains a determining set: the retained
    // columns' FD closure covering a key means no two input tuples agree
    // on the retained set, so nothing collapses
    let closed = p.closure(&retained);
    let superkey = p.keys.iter().any(|k| k.is_subset(&closed));
    if superkey {
        // keys expressible directly in retained columns survive as-is
        for k in &p.keys {
            if k.iter().all(|c| retained.contains(c)) {
                out.add_key(k.iter().map(|c| pos_of[c]).collect());
            }
        }
        // the full retained set is always a superkey here
        out.add_key(pos_of.values().copied().collect());
    }
    for (lhs, rhs) in &p.fds {
        if retained.contains(rhs) && lhs.iter().all(|c| retained.contains(c)) {
            out.fds
                .push((lhs.iter().map(|c| pos_of[c]).collect(), pos_of[rhs]));
        }
    }
    for c in &p.constants {
        if let Some(&pos) = pos_of.get(c) {
            out.constants.insert(pos);
        }
    }
    // duplicated output columns are mutually determined
    for (pos, &src) in attrs.iter().enumerate() {
        let first = pos_of[&src];
        if first != pos + 1 {
            out.fds.push(([first].into_iter().collect(), pos + 1));
            out.fds.push(([pos + 1].into_iter().collect(), first));
        }
    }
    out.shrink_keys_by_constants();
    out
}

/// The π̄ (extended projection) transfer function: only pure attribute
/// outputs participate in the key mapping; computed outputs are
/// deterministic functions of their inputs but are not tracked as keys.
fn ext_project_props(p: &Props, exprs: &[ScalarExpr]) -> Props {
    let arity = exprs.len();
    let mut out = Props::bottom(arity);
    let mut pos_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (pos, e) in exprs.iter().enumerate() {
        if let ScalarExpr::Attr(src) = e {
            if *src >= 1 && *src <= p.arity {
                pos_of.entry(*src).or_insert(pos + 1);
            }
        }
    }
    let retained: BTreeSet<usize> = pos_of.keys().copied().collect();
    let closed = p.closure(&retained);
    // every output column is a deterministic function of the input tuple;
    // when the pure-attr outputs determine a key, distinct input tuples
    // stay distinct and each carries its multiplicity-1 forward
    if p.keys.iter().any(|k| k.is_subset(&closed)) {
        for k in &p.keys {
            if k.iter().all(|c| retained.contains(c)) {
                out.add_key(k.iter().map(|c| pos_of[c]).collect());
            }
        }
        out.add_key(pos_of.values().copied().collect());
    }
    for c in &p.constants {
        if let Some(&pos) = pos_of.get(c) {
            out.constants.insert(pos);
        }
    }
    out.shrink_keys_by_constants();
    out
}

/// The × transfer function: keys compose pairwise, set-ness needs both.
fn product_props(pl: &Props, pr: &Props) -> Props {
    let la = pl.arity;
    let mut p = Props::bottom(la + pr.arity);
    for kl in &pl.keys {
        for kr in &pr.keys {
            p.add_key(
                kl.iter()
                    .copied()
                    .chain(kr.iter().map(|c| c + la))
                    .collect(),
            );
        }
    }
    p.duplicate_free = pl.duplicate_free && pr.duplicate_free;
    p.constants = pl
        .constants
        .iter()
        .copied()
        .chain(pr.constants.iter().map(|c| c + la))
        .collect();
    p.fds = pl
        .fds
        .iter()
        .cloned()
        .chain(
            pr.fds
                .iter()
                .map(|(lhs, rhs)| (lhs.iter().map(|c| c + la).collect(), rhs + la)),
        )
        .collect();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::prelude::*;
    use mera_core::tuple;
    use mera_expr::Aggregate;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "r",
                Schema::anon(&[DataType::Int, DataType::Str, DataType::Int]),
            )
            .expect("fresh")
            .with("s", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
    }

    fn keyed() -> KeyEnv {
        let mut env = KeyEnv::new();
        env.declare("r", vec![1]);
        env.declare("s", vec![1]);
        env
    }

    fn set_of(cols: &[usize]) -> BTreeSet<usize> {
        cols.iter().copied().collect()
    }

    #[test]
    fn scan_uses_declared_keys() {
        let cat = catalog();
        let p = infer_props(&RelExpr::scan("r"), &cat, &keyed());
        assert!(p.duplicate_free);
        assert_eq!(p.keys, vec![set_of(&[1])]);
        let p = infer_props(&RelExpr::scan("r"), &cat, &KeyEnv::new());
        assert!(!p.duplicate_free);
        assert!(p.keys.is_empty());
    }

    #[test]
    fn select_preserves_keys_and_learns_constants() {
        let cat = catalog();
        let e = RelExpr::scan("r").select(ScalarExpr::attr(3).eq(ScalarExpr::int(7)));
        let p = infer_props(&e, &cat, &keyed());
        assert!(p.duplicate_free);
        assert_eq!(p.keys, vec![set_of(&[1])]);
        assert!(p.constants.contains(&3));
    }

    #[test]
    fn constant_key_column_shrinks_key_to_empty() {
        let cat = catalog();
        // σ(%1 = 7) over key(%1): at most one row survives — empty key
        let e = RelExpr::scan("r").select(ScalarExpr::attr(1).eq(ScalarExpr::int(7)));
        let p = infer_props(&e, &cat, &keyed());
        assert_eq!(p.keys, vec![BTreeSet::new()]);
    }

    #[test]
    fn projection_keeps_key_iff_determining_set_retained() {
        let cat = catalog();
        let keeps = RelExpr::scan("r").project(&[1, 2]);
        let p = infer_props(&keeps, &cat, &keyed());
        assert!(p.duplicate_free);
        assert!(p.keys.contains(&set_of(&[1])));
        // dropping the key column collapses multiplicities
        let drops = RelExpr::scan("r").project(&[2, 3]);
        let p = infer_props(&drops, &cat, &keyed());
        assert!(!p.duplicate_free);
        assert!(p.keys.is_empty());
    }

    #[test]
    fn projection_recovers_key_through_fd_closure() {
        let cat = catalog();
        // σ(%1 = %3) makes %3 determine %1 (the key); π(%2,%3) retains a
        // determining set even though the key column itself is dropped
        let e = RelExpr::scan("r")
            .select(ScalarExpr::attr(1).eq(ScalarExpr::attr(3)))
            .project(&[2, 3]);
        let p = infer_props(&e, &cat, &keyed());
        assert!(p.duplicate_free, "FD closure must recover the key");
    }

    #[test]
    fn join_composes_keys_via_unique_side() {
        let cat = catalog();
        // r ⋈[%3 = %4] s with key s(%1): each r row matches ≤ 1 s row, so
        // r's key survives alone
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(3).eq(ScalarExpr::attr(4)),
        );
        let p = infer_props(&e, &cat, &keyed());
        assert!(p.duplicate_free);
        assert!(p.keys.contains(&set_of(&[1])), "keys: {:?}", p.keys);
    }

    #[test]
    fn join_without_unique_side_composes_pairwise() {
        let cat = catalog();
        // joining on non-key columns: only the composed pairwise key holds
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(3).eq(ScalarExpr::attr(5)),
        );
        let p = infer_props(&e, &cat, &keyed());
        assert!(p.duplicate_free);
        assert!(p.keys.contains(&set_of(&[1, 4])), "keys: {:?}", p.keys);
    }

    #[test]
    fn union_destroys_setness_unless_disjoint() {
        let cat = catalog();
        let e = RelExpr::scan("r").union(RelExpr::scan("r"));
        let p = infer_props(&e, &cat, &keyed());
        assert!(!p.duplicate_free, "⊎ adds multiplicities (Theorem 3.3)");
        // with a provably empty operand the other side's facts survive
        let empty = RelExpr::scan("r").select(ScalarExpr::bool(false));
        let e = RelExpr::scan("r").union(empty);
        let p = infer_props(&e, &cat, &keyed());
        assert!(p.duplicate_free);
    }

    #[test]
    fn difference_and_intersection_preserve() {
        let cat = catalog();
        let p = infer_props(
            &RelExpr::scan("r").difference(RelExpr::scan("r")),
            &cat,
            &keyed(),
        );
        assert!(p.duplicate_free);
        // ∩ is a set when either side is
        let p = infer_props(
            &RelExpr::scan("s").intersect(RelExpr::scan("s")),
            &cat,
            &KeyEnv::from_definitions(&[("s".to_owned(), vec![1])]),
        );
        assert!(p.duplicate_free);
    }

    #[test]
    fn distinct_groupby_closure_are_sets() {
        let cat = catalog();
        let env = KeyEnv::new();
        let p = infer_props(&RelExpr::scan("r").distinct(), &cat, &env);
        assert!(p.duplicate_free);
        assert!(p.keys.contains(&set_of(&[1, 2, 3])));
        let p = infer_props(
            &RelExpr::scan("r").group_by(&[2], Aggregate::Cnt, 1),
            &cat,
            &env,
        );
        assert!(p.duplicate_free);
        assert_eq!(p.keys, vec![set_of(&[1])]);
        // empty grouping: at most one row
        let p = infer_props(
            &RelExpr::scan("r").group_by(&[], Aggregate::Cnt, 1),
            &cat,
            &env,
        );
        assert_eq!(p.keys, vec![BTreeSet::new()]);
        let p = infer_props(&RelExpr::scan("s").closure(), &cat, &env);
        assert!(p.duplicate_free);
    }

    #[test]
    fn values_props_are_exact() {
        let cat = catalog();
        let env = KeyEnv::new();
        let schema = std::sync::Arc::new(Schema::anon(&[DataType::Int, DataType::Int]));
        let rel = Relation::from_counted(
            std::sync::Arc::clone(&schema),
            vec![(tuple![1_i64, 5_i64], 1), (tuple![2_i64, 5_i64], 1)],
        )
        .expect("typed");
        let p = infer_props(&RelExpr::values(rel), &cat, &env);
        assert!(p.duplicate_free);
        assert!(p.constants.contains(&2));
        // constant column 2 shrinks the full-set key to {1}
        assert_eq!(p.keys, vec![set_of(&[1])]);
        let dup = Relation::from_counted(schema, vec![(tuple![1_i64, 5_i64], 2)]).expect("typed");
        let p = infer_props(&RelExpr::values(dup), &cat, &env);
        assert!(!p.duplicate_free);
    }

    #[test]
    fn render_shapes() {
        let cat = catalog();
        let p = infer_props(&RelExpr::scan("r"), &cat, &keyed());
        assert_eq!(p.render(), "[key: (%1), set]");
        let p = infer_props(&RelExpr::scan("r"), &cat, &KeyEnv::new());
        assert_eq!(p.render(), "");
    }

    #[test]
    fn untypable_expression_is_bottom() {
        let cat = catalog();
        let p = infer_props(&RelExpr::scan("nosuch"), &cat, &keyed());
        assert_eq!(p, Props::bottom(0));
    }
}
