//! Validation of materialized-view definitions.
//!
//! A view is an algebra expression that the transaction layer promises to
//! keep materialized across *every* future commit. That promise needs
//! three static guarantees beyond ordinary plan analysis:
//!
//! 1. **Well-founded dependencies** — the definition must not scan the
//!    view itself (`E0301`); views may reference base relations and
//!    previously-created views only, so the dependency graph is acyclic
//!    by construction.
//! 2. **Schema inference** — the view's relation schema is the plan's
//!    inferred output schema; a definition that does not infer is
//!    rejected with the ordinary `E00xx` diagnostics.
//! 3. **Totality** — refresh runs unconditionally at commit time, with no
//!    user around to handle an error, so a definition whose evaluation is
//!    partial (a whole-relation `γ` with `AVG`/`MIN`/`MAX`/… over a
//!    possibly-empty input, Definition 3.4) is rejected: the `W0101`
//!    warning escalates to the `E0303` error. Base-relation emptiness is
//!    deliberately *not* consulted — a view accepted today must stay
//!    valid after any sequence of inserts and deletes, so every scanned
//!    relation is analyzed at [`Card::Unknown`].

use mera_core::prelude::*;
use mera_expr::rel::{RelExpr, SchemaProvider};

use crate::diag::{Code, Diagnostic, Span};
use crate::plan::{analyze_plan, Card, CardEnv};

/// The result of validating one view definition.
#[derive(Debug, Clone)]
pub struct ViewAnalysis {
    /// The view's inferred schema, when the definition is well-formed.
    pub schema: Option<SchemaRef>,
    /// Names the definition scans (base relations and earlier views),
    /// sorted and deduplicated — the view's dependency set.
    pub deps: Vec<String>,
    /// Everything found; the definition is acceptable iff none of these
    /// is error-severity.
    pub diagnostics: Vec<Diagnostic>,
}

impl ViewAnalysis {
    /// True when no error-severity diagnostic was produced.
    pub fn is_accepted(&self) -> bool {
        !crate::diag::has_errors(&self.diagnostics)
    }
}

/// Validates the definition of a view called `name` against a catalog
/// that already resolves base relations and previously-created views.
pub fn analyze_view_def<P: SchemaProvider>(
    name: &str,
    expr: &RelExpr,
    provider: &P,
) -> ViewAnalysis {
    let mut diagnostics = Vec::new();
    let deps: Vec<String> = expr
        .scanned_relations()
        .into_iter()
        .map(str::to_owned)
        .collect();
    if deps.iter().any(|d| d == name) {
        diagnostics.push(
            Diagnostic::new(
                Code::SelfReferentialView,
                Span::root(expr.op_name()),
                format!("materialized view `{name}` scans itself"),
            )
            .with_note("view definitions may reference base relations and earlier views only"),
        );
    }
    // all scanned names at Unknown: acceptance must be state-independent
    let cards: CardEnv = deps.iter().map(|d| (d.clone(), Card::Unknown)).collect();
    let plan = analyze_plan(expr, provider, &cards);
    for d in plan.diagnostics {
        if d.code == Code::PartialAggregateMayBeUndefined {
            let mut escalated = Diagnostic::new(
                Code::PartialView,
                d.span.clone(),
                format!("materialized view `{name}` is not total: {}", d.message),
            )
            .with_note(
                "view refresh runs unconditionally at every commit; \
                 a partial aggregate over a possibly-empty input would make it fail",
            );
            escalated.notes.extend(d.notes);
            diagnostics.push(escalated);
        } else {
            diagnostics.push(d);
        }
    }
    ViewAnalysis {
        schema: plan.schema,
        deps,
        diagnostics,
    }
}

/// The emptiness abstraction of a view sub-plan with every scanned name
/// at [`Card::Unknown`] — the gate deciding whether a subtree is provably
/// empty in *all* states (and so needs no delta machinery at all).
pub fn structural_card<P: SchemaProvider>(expr: &RelExpr, provider: &P) -> Card {
    let cards: CardEnv = expr
        .scanned_relations()
        .into_iter()
        .map(|d| (d.to_owned(), Card::Unknown))
        .collect();
    analyze_plan(expr, provider, &cards).card
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::Aggregate;
    use std::sync::Arc;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "r",
                Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
            )
            .unwrap()
    }

    #[test]
    fn good_view_infers_schema_and_deps() {
        let expr = RelExpr::scan("r").group_by(&[1], Aggregate::Sum, 2);
        let va = analyze_view_def("totals", &expr, &catalog());
        assert!(va.is_accepted(), "{:?}", va.diagnostics);
        assert_eq!(va.schema.unwrap().arity(), 2);
        assert_eq!(va.deps, vec!["r".to_owned()]);
    }

    #[test]
    fn self_reference_is_rejected() {
        let expr = RelExpr::scan("totals").union(RelExpr::scan("totals"));
        let va = analyze_view_def("totals", &expr, &catalog());
        assert!(!va.is_accepted());
        assert!(va
            .diagnostics
            .iter()
            .any(|d| d.code == Code::SelfReferentialView));
    }

    #[test]
    fn partial_view_escalates_w0101() {
        // AVG over the whole relation: fine as a query (warns), fatal as a view
        let expr = RelExpr::scan("r").group_by(&[], Aggregate::Avg, 2);
        let va = analyze_view_def("avg_v", &expr, &catalog());
        assert!(!va.is_accepted());
        let d = va
            .diagnostics
            .iter()
            .find(|d| d.code == Code::PartialView)
            .expect("escalated");
        assert!(d.message.contains("not total"), "{}", d.message);
    }

    #[test]
    fn total_whole_relation_aggregates_pass() {
        // CNT and SUM are total (Definition 3.3): fine even with empty keys
        for agg in [Aggregate::Cnt, Aggregate::Sum] {
            let expr = RelExpr::scan("r").group_by(&[], agg, 2);
            let va = analyze_view_def("v", &expr, &catalog());
            assert!(va.is_accepted(), "{agg:?}: {:?}", va.diagnostics);
        }
    }

    #[test]
    fn structural_card_ignores_live_state() {
        assert_eq!(
            structural_card(&RelExpr::scan("r"), &catalog()),
            Card::Unknown
        );
        let empty = Relation::empty(Arc::new(Schema::anon(&[DataType::Int])));
        assert_eq!(
            structural_card(&RelExpr::values(empty).distinct(), &catalog()),
            Card::Empty
        );
    }
}
