//! Whole-program analysis for the database manipulation language of
//! Definition 4.1/4.2.
//!
//! Statements are analyzed in execution order against an *abstract*
//! intermediate state: the catalog extended with the schemas of
//! assignment-bound temporaries, plus a [`CardEnv`] tracking the emptiness
//! abstraction of every relation. Each statement first has its
//! expression(s) checked by the plan analyzer, then applies its abstract
//! effect:
//!
//! * `insert(R, E)` — `R ← R ⊎ E`: the union rule, so inserting a
//!   provably-nonempty bag *proves* `R` nonempty for the rest of the
//!   program (this is what lets a downstream whole-relation `AVG` pass
//!   the partiality lint);
//! * `delete(R, E)` — `R ← R − E`: the difference rule (`R` empty stays
//!   empty, subtracting a provably-empty bag changes nothing, anything
//!   else is unknown);
//! * `update(R, E, a)` — preserves total multiplicity exactly
//!   (`max(0,m−m') + min(m,m') = m`), so `R`'s abstraction is unchanged;
//! * `R = E` — binds a temporary's schema and abstraction;
//! * `?E` — no effect.
//!
//! The analyzer does not depend on `mera-txn`; callers map their statement
//! types onto the borrowed [`ProgramStmt`] view.

use std::collections::HashMap;
use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr, SchemaProvider};

use crate::diag::{Code, Diagnostic, Span};
use crate::plan::{analyze_plan_in_stmt, check_scalar, Card, CardEnv};

/// A borrowed view of one statement, mirroring Definition 4.1. Embedders
/// (`mera-txn`, `mera-sql`) map their own statement types onto this.
#[derive(Debug, Clone, Copy)]
pub enum ProgramStmt<'a> {
    /// `insert(R, E)`.
    Insert {
        /// Target relation name.
        relation: &'a str,
        /// Source expression.
        expr: &'a RelExpr,
    },
    /// `delete(R, E)`.
    Delete {
        /// Target relation name.
        relation: &'a str,
        /// Expression computing the tuples to remove.
        expr: &'a RelExpr,
    },
    /// `update(R, E, a)`.
    Update {
        /// Target relation name.
        relation: &'a str,
        /// Expression selecting the tuples to modify.
        expr: &'a RelExpr,
        /// The structure-preserving expression list `a`.
        exprs: &'a [ScalarExpr],
    },
    /// `R = E` (temporary binding).
    Assign {
        /// The temporary's name.
        name: &'a str,
        /// The bound expression.
        expr: &'a RelExpr,
    },
    /// `?E`.
    Query {
        /// The queried expression.
        expr: &'a RelExpr,
    },
}

/// The catalog plus the temporaries bound so far — the abstract analogue
/// of `txn`'s intermediate states `D_t.i`.
struct LayeredProvider<'a, P> {
    base: &'a P,
    temps: &'a HashMap<String, SchemaRef>,
}

impl<P: SchemaProvider> SchemaProvider for LayeredProvider<'_, P> {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        if let Some(s) = self.temps.get(name) {
            return Ok(Arc::clone(s));
        }
        self.base.relation_schema(name)
    }
}

/// Analyzes a statement sequence against a catalog, with initial
/// cardinality facts (typically [`Card::of_relation`] over the live
/// database state). Returns every finding; reject execution iff
/// [`crate::diag::has_errors`].
pub fn analyze_program<'a, P, I>(stmts: I, provider: &P, initial: &CardEnv) -> Vec<Diagnostic>
where
    P: SchemaProvider,
    I: IntoIterator<Item = ProgramStmt<'a>>,
{
    let mut diags = Vec::new();
    let mut temps: HashMap<String, SchemaRef> = HashMap::new();
    let mut cards = initial.clone();

    for (i, stmt) in stmts.into_iter().enumerate() {
        // moved out of the match so `temps` isn't double-borrowed
        let layered = LayeredProvider {
            base: provider,
            temps: &temps,
        };
        match stmt {
            ProgramStmt::Insert { relation, expr } => {
                let (schema, card) = analyze_plan_in_stmt(expr, &layered, &cards, i, &mut diags);
                if let Some(target) =
                    dml_target(relation, provider, &temps, i, expr.op_name(), &mut diags)
                {
                    if let Some(s) = schema {
                        if !s.same_types(&target) {
                            diags.push(
                                Diagnostic::new(
                                    Code::IncompatibleOperands,
                                    Span::root(expr.op_name()).in_stmt(i),
                                    format!(
                                        "insert source schema does not match relation \
                                         `{relation}`"
                                    ),
                                )
                                .with_note(format!("`{relation}` has schema {target}"))
                                .with_note(format!("the source expression has schema {s}")),
                            );
                        }
                    }
                    let old = card_of(&cards, relation);
                    // R ← R ⊎ E: the union card rule
                    let new = match (old, card) {
                        (Card::Empty, c) => c,
                        (c, Card::Empty) => c,
                        (Card::NonEmpty, _) | (_, Card::NonEmpty) => Card::NonEmpty,
                        _ => Card::Unknown,
                    };
                    cards.insert(relation.to_owned(), new);
                }
            }
            ProgramStmt::Delete { relation, expr } => {
                let (schema, card) = analyze_plan_in_stmt(expr, &layered, &cards, i, &mut diags);
                if let Some(target) =
                    dml_target(relation, provider, &temps, i, expr.op_name(), &mut diags)
                {
                    if let Some(s) = schema {
                        if !s.same_types(&target) {
                            diags.push(
                                Diagnostic::new(
                                    Code::IncompatibleOperands,
                                    Span::root(expr.op_name()).in_stmt(i),
                                    format!(
                                        "delete expression schema does not match relation \
                                         `{relation}`"
                                    ),
                                )
                                .with_note(format!("`{relation}` has schema {target}"))
                                .with_note(format!("the expression has schema {s}")),
                            );
                        }
                    }
                    // R ← R − E: the difference card rule
                    let new = match (card_of(&cards, relation), card) {
                        (Card::Empty, _) => Card::Empty,
                        (c, Card::Empty) => c,
                        _ => Card::Unknown,
                    };
                    cards.insert(relation.to_owned(), new);
                }
            }
            ProgramStmt::Update {
                relation,
                expr,
                exprs,
            } => {
                analyze_plan_in_stmt(expr, &layered, &cards, i, &mut diags);
                if let Some(target) =
                    dml_target(relation, provider, &temps, i, expr.op_name(), &mut diags)
                {
                    let span = Span::root(expr.op_name()).in_stmt(i);
                    let mut attrs = Vec::with_capacity(exprs.len());
                    let mut typed = true;
                    for e in exprs {
                        match check_scalar(e, &target, &span, &mut diags) {
                            Some(t) => attrs.push(Attribute::anon(t)),
                            None => typed = false,
                        }
                    }
                    if typed {
                        let updated = Schema::new(attrs);
                        if !updated.same_types(&target) {
                            diags.push(
                                Diagnostic::new(
                                    Code::UpdateSchemaChange,
                                    span,
                                    format!(
                                        "update expression list changes the schema of \
                                         `{relation}`"
                                    ),
                                )
                                .with_note(format!("`{relation}` has schema {target}"))
                                .with_note(format!("the expression list produces {updated}"))
                                .with_note(
                                    "update's π̄ₐ must preserve the target's structure \
                                     (Definition 4.1)",
                                ),
                            );
                        }
                    }
                    // (R − E) ⊎ π̄ₐ(R ∩ E) preserves total multiplicity
                }
            }
            ProgramStmt::Assign { name, expr } => {
                let (schema, card) = analyze_plan_in_stmt(expr, &layered, &cards, i, &mut diags);
                if provider.relation_schema(name).is_ok() {
                    diags.push(
                        Diagnostic::new(
                            Code::DuplicateRelation,
                            Span::root(expr.op_name()).in_stmt(i),
                            format!("assignment would shadow database relation `{name}`"),
                        )
                        .with_note("temporaries may not collide with database names (§4.3)"),
                    );
                } else if let Some(s) = schema {
                    temps.insert(name.to_owned(), s);
                    cards.insert(name.to_owned(), card);
                }
            }
            ProgramStmt::Query { expr } => {
                analyze_plan_in_stmt(expr, &layered, &cards, i, &mut diags);
            }
        }
    }
    diags
}

fn card_of(cards: &CardEnv, name: &str) -> Card {
    cards.get(name).copied().unwrap_or(Card::Unknown)
}

/// Resolves a DML target, which must be a *database* relation — writing a
/// temporary is not part of Definition 4.1 and fails at runtime.
fn dml_target<P: SchemaProvider>(
    relation: &str,
    provider: &P,
    temps: &HashMap<String, SchemaRef>,
    stmt: usize,
    op: &'static str,
    diags: &mut Vec<Diagnostic>,
) -> Option<SchemaRef> {
    match provider.relation_schema(relation) {
        Ok(s) => Some(s),
        Err(_) => {
            let mut d = Diagnostic::new(
                Code::UnknownRelation,
                Span::root(op).in_stmt(stmt),
                format!("unknown relation `{relation}` as DML target"),
            );
            if temps.contains_key(relation) {
                d = d.with_note(format!(
                    "`{relation}` is a temporary; insert/delete/update only \
                     target database relations"
                ));
            }
            diags.push(d);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::Aggregate;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
    }

    fn beer_row() -> Relation {
        relation_of(
            Schema::anon(&[DataType::Str, DataType::Str, DataType::Real]),
            vec![tuple!["Grolsch", "Grolsche", 5.0_f64]],
        )
        .expect("typed")
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn insert_of_nonempty_literal_proves_aggregate_safe() {
        // the ISSUE example: γ downstream of insert of a literal nonempty
        // relation is *proved* safe even when the table starts empty
        let mut cards = CardEnv::new();
        cards.insert("beer".into(), Card::Empty);
        let insert = RelExpr::values(beer_row());
        let query = RelExpr::scan("beer").group_by(&[], Aggregate::Avg, 3);
        let stmts = [
            ProgramStmt::Insert {
                relation: "beer",
                expr: &insert,
            },
            ProgramStmt::Query { expr: &query },
        ];
        let diags = analyze_program(stmts, &catalog(), &cards);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn aggregate_over_initially_empty_relation_is_e0102() {
        let mut cards = CardEnv::new();
        cards.insert("beer".into(), Card::Empty);
        let query = RelExpr::scan("beer").group_by(&[], Aggregate::Min, 1);
        let diags = analyze_program([ProgramStmt::Query { expr: &query }], &catalog(), &cards);
        assert_eq!(codes(&diags), vec![Code::PartialAggregateOnEmpty]);
        assert_eq!(diags[0].span.stmt, Some(0));
    }

    #[test]
    fn delete_invalidates_nonemptiness() {
        let mut cards = CardEnv::new();
        cards.insert("beer".into(), Card::NonEmpty);
        let del = RelExpr::scan("beer").select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.0)));
        let query = RelExpr::scan("beer").group_by(&[], Aggregate::Avg, 3);
        let stmts = [
            ProgramStmt::Delete {
                relation: "beer",
                expr: &del,
            },
            ProgramStmt::Query { expr: &query },
        ];
        let diags = analyze_program(stmts, &catalog(), &cards);
        assert_eq!(codes(&diags), vec![Code::PartialAggregateMayBeUndefined]);
    }

    #[test]
    fn update_preserves_cardinality_facts() {
        let mut cards = CardEnv::new();
        cards.insert("beer".into(), Card::NonEmpty);
        let sel = RelExpr::scan("beer");
        let query = RelExpr::scan("beer").group_by(&[], Aggregate::Avg, 3);
        let exprs = vec![
            ScalarExpr::attr(1),
            ScalarExpr::attr(2),
            ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)),
        ];
        let stmts = [
            ProgramStmt::Update {
                relation: "beer",
                expr: &sel,
                exprs: &exprs,
            },
            ProgramStmt::Query { expr: &query },
        ];
        let diags = analyze_program(stmts, &catalog(), &cards);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn update_schema_change_is_e0007() {
        let sel = RelExpr::scan("beer");
        let exprs = vec![ScalarExpr::attr(1)]; // drops two attributes
        let stmts = [ProgramStmt::Update {
            relation: "beer",
            expr: &sel,
            exprs: &exprs,
        }];
        let diags = analyze_program(stmts, &catalog(), &CardEnv::new());
        assert_eq!(codes(&diags), vec![Code::UpdateSchemaChange]);
    }

    #[test]
    fn insert_schema_mismatch_is_e0004() {
        let src = RelExpr::scan("beer").project(&[1]);
        let stmts = [ProgramStmt::Insert {
            relation: "beer",
            expr: &src,
        }];
        let diags = analyze_program(stmts, &catalog(), &CardEnv::new());
        assert_eq!(codes(&diags), vec![Code::IncompatibleOperands]);
    }

    #[test]
    fn assignment_shadowing_is_e0006_and_temp_is_visible() {
        let bind = RelExpr::scan("beer");
        let use_it = RelExpr::scan("strong").project(&[1]);
        let stmts = [
            ProgramStmt::Assign {
                name: "strong",
                expr: &bind,
            },
            ProgramStmt::Query { expr: &use_it },
        ];
        let diags = analyze_program(stmts, &catalog(), &CardEnv::new());
        assert!(diags.is_empty(), "temps resolve: {diags:?}");

        let shadow = [ProgramStmt::Assign {
            name: "beer",
            expr: &bind,
        }];
        let diags = analyze_program(shadow, &catalog(), &CardEnv::new());
        assert_eq!(codes(&diags), vec![Code::DuplicateRelation]);
    }

    #[test]
    fn assignment_card_flows_into_uses() {
        let bind = RelExpr::scan("beer").select(ScalarExpr::bool(false));
        let agg = RelExpr::scan("empties").group_by(&[], Aggregate::Max, 3);
        let stmts = [
            ProgramStmt::Assign {
                name: "empties",
                expr: &bind,
            },
            ProgramStmt::Query { expr: &agg },
        ];
        let diags = analyze_program(stmts, &catalog(), &CardEnv::new());
        assert_eq!(codes(&diags), vec![Code::PartialAggregateOnEmpty]);
    }

    #[test]
    fn dml_cannot_target_a_temporary() {
        let bind = RelExpr::scan("beer");
        let row = RelExpr::values(beer_row());
        let stmts = [
            ProgramStmt::Assign {
                name: "t",
                expr: &bind,
            },
            ProgramStmt::Insert {
                relation: "t",
                expr: &row,
            },
        ];
        let diags = analyze_program(stmts, &catalog(), &CardEnv::new());
        assert_eq!(codes(&diags), vec![Code::UnknownRelation]);
        assert!(diags[0].notes[0].contains("temporary"));
    }
}
