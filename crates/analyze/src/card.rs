//! The cardinality-estimation lattice: intervals refining [`Card`].
//!
//! The emptiness lattice `{empty, nonempty, unknown}` answers one
//! question — *can this bag be empty?* — which is all the partiality lint
//! needs. A cost-based planner needs more: *how many tuples* (counted
//! with multiplicity, per Definition 3.1) can flow out of a node. This
//! module widens the three points into the interval lattice
//!
//! ```text
//!     CardRange = { [lo, hi] | lo ∈ ℕ, hi ∈ ℕ ∪ {∞}, lo ≤ hi }
//! ```
//!
//! ordered by inclusion, with `[0, ∞)` on top. The abstract transformers
//! below are *sound*: for every operator `op` and every database state,
//! `|op(E…)| ∈ op♯(range(E)…)`. They follow directly from the
//! multiplicity laws of Definitions 3.1–3.4 — e.g. `⊎` adds
//! multiplicities, so intervals add; `−` is `max(0, m₁ − m₂)` pointwise,
//! so the lower bound is the saturating difference of `lo₁` and `hi₂`.
//!
//! [`CardRange::to_card`] is the Galois connection back down to the
//! emptiness lattice: `[0,0] ↦ Empty`, `lo ≥ 1 ↦ NonEmpty`, the rest
//! `Unknown`. The optimizer uses these sound bounds to *clamp* its
//! (unsound, selectivity-based) point estimates.

use std::collections::HashMap;

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr};

use crate::plan::Card;

/// An interval `[lo, hi]` of possible total multiplicities; `hi = None`
/// means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CardRange {
    /// Smallest possible total multiplicity.
    pub lo: u64,
    /// Largest possible total multiplicity (`None` = unbounded).
    pub hi: Option<u64>,
}

/// Row-count facts about named relations, supplied by the embedder (e.g.
/// exact counters off the live database state). Missing names are `top()`.
pub type RangeEnv = HashMap<String, CardRange>;

impl CardRange {
    /// The top element `[0, ∞)` — nothing known.
    pub fn top() -> CardRange {
        CardRange { lo: 0, hi: None }
    }

    /// The exact singleton `[n, n]`.
    pub fn exactly(n: u64) -> CardRange {
        CardRange { lo: n, hi: Some(n) }
    }

    /// An interval `[lo, hi]`.
    pub fn between(lo: u64, hi: u64) -> CardRange {
        debug_assert!(lo <= hi);
        CardRange { lo, hi: Some(hi) }
    }

    /// Whether `n` lies in the interval.
    pub fn contains(&self, n: u64) -> bool {
        n >= self.lo && self.hi.is_none_or(|h| n <= h)
    }

    /// Least upper bound (interval hull) — the merge across alternative
    /// states, mirroring [`Card::join`].
    pub fn join(self, other: CardRange) -> CardRange {
        CardRange {
            lo: self.lo.min(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// The Galois connection down to the emptiness lattice.
    pub fn to_card(self) -> Card {
        if self.hi == Some(0) {
            Card::Empty
        } else if self.lo >= 1 {
            Card::NonEmpty
        } else {
            Card::Unknown
        }
    }

    /// Clamps a point estimate into the interval (the planner's
    /// estimates are heuristic; the bounds are sound, so the bounds win).
    pub fn clamp_estimate(&self, est: f64) -> f64 {
        let mut e = est.max(self.lo as f64);
        if let Some(h) = self.hi {
            e = e.min(h as f64);
        }
        e
    }

    // ---- abstract transformers (Definitions 3.1–3.4) ----

    fn add(self, other: CardRange) -> CardRange {
        CardRange {
            lo: self.lo.saturating_add(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }

    fn mul(self, other: CardRange) -> CardRange {
        CardRange {
            lo: self.lo.saturating_mul(other.lo),
            // n × 0 = 0 even when the other side is unbounded
            hi: match (self.hi, other.hi) {
                (Some(0), _) | (_, Some(0)) => Some(0),
                (Some(a), Some(b)) => Some(a.saturating_mul(b)),
                _ => None,
            },
        }
    }

    /// `max(0, m₁ − m₂)` pointwise: at most everything on the left
    /// survives; at least `lo₁ − hi₂` must.
    fn bag_difference(self, other: CardRange) -> CardRange {
        CardRange {
            lo: other.hi.map_or(0, |h| self.lo.saturating_sub(h)),
            hi: self.hi,
        }
    }

    /// `min(m₁, m₂)` pointwise — but tuples outside the intersection of
    /// supports drop to 0, so only the upper bound survives.
    fn bag_intersect(self, other: CardRange) -> CardRange {
        CardRange {
            lo: 0,
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, b) => b,
            },
        }
    }

    /// Anything from keeping everything to filtering everything.
    fn filtered(self) -> CardRange {
        CardRange { lo: 0, hi: self.hi }
    }

    /// δ: at least one tuple survives a nonempty input, at most all do.
    fn distinct(self) -> CardRange {
        CardRange {
            lo: self.lo.min(1),
            hi: self.hi,
        }
    }
}

/// Sound total-multiplicity bounds for a plan, given bounds for the
/// relations it scans. Conservative on any structural problem (this is a
/// bounds estimator, not a validator — pair it with [`analyze_plan`] for
/// diagnostics).
///
/// [`analyze_plan`]: crate::analyze_plan
pub fn range_of_plan(expr: &RelExpr, env: &RangeEnv) -> CardRange {
    match expr {
        RelExpr::Scan(name) => env
            .get(name.as_str())
            .copied()
            .unwrap_or_else(CardRange::top),
        RelExpr::Values(rel) => CardRange::exactly(rel.len()),
        RelExpr::Union(l, r) => range_of_plan(l, env).add(range_of_plan(r, env)),
        RelExpr::Difference(l, r) => range_of_plan(l, env).bag_difference(range_of_plan(r, env)),
        RelExpr::Intersect(l, r) => range_of_plan(l, env).bag_intersect(range_of_plan(r, env)),
        RelExpr::Product(l, r) => range_of_plan(l, env).mul(range_of_plan(r, env)),
        // ⋈_φ = σ_φ ∘ × (Definition 3.2)
        RelExpr::Join { left, right, .. } => range_of_plan(left, env)
            .mul(range_of_plan(right, env))
            .filtered(),
        RelExpr::Select { input, predicate } => {
            let i = range_of_plan(input, env);
            match predicate {
                ScalarExpr::Literal(Value::Bool(true)) => i,
                ScalarExpr::Literal(Value::Bool(false)) => CardRange::exactly(0),
                _ => i.filtered(),
            }
        }
        // π preserves total multiplicity exactly (plain and extended)
        RelExpr::Project { input, .. } | RelExpr::ExtProject { input, .. } => {
            range_of_plan(input, env)
        }
        RelExpr::Distinct(input) => range_of_plan(input, env).distinct(),
        RelExpr::GroupBy { input, keys, .. } => {
            let i = range_of_plan(input, env);
            if keys.is_empty() {
                // one output tuple (partial aggregates abort on empty
                // input rather than producing an empty result — the
                // partiality lint owns that case)
                CardRange::exactly(1)
            } else {
                // one tuple per nonempty group: bounded by the input
                i.distinct()
            }
        }
        RelExpr::Closure(input) => {
            let i = range_of_plan(input, env);
            // δ-based fixpoint: duplicate-free pairs over the endpoint
            // domain — at most (2·|E|)² when the edge count is bounded
            CardRange {
                lo: i.lo.min(1),
                hi: i
                    .hi
                    .map(|h| h.saturating_mul(2).saturating_mul(h.saturating_mul(2))),
            }
        }
    }
}

/// Lifts exact per-relation row counts off a database state.
pub fn range_env_of_database(db: &Database) -> RangeEnv {
    db.relation_names()
        .map(|n| {
            let rows = db.relation(n).map(|r| r.len()).unwrap_or(0);
            (n.to_owned(), CardRange::exactly(rows))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::Aggregate;
    use std::sync::Arc;

    fn values(n: u64) -> RelExpr {
        let mut rel = Relation::empty(Arc::new(Schema::anon(&[DataType::Int])));
        for i in 0..n {
            rel.insert(tuple![i as i64], 1).expect("typed");
        }
        RelExpr::values(rel)
    }

    fn range(e: &RelExpr) -> CardRange {
        range_of_plan(e, &RangeEnv::new())
    }

    #[test]
    fn values_are_exact() {
        assert_eq!(range(&values(7)), CardRange::exactly(7));
    }

    #[test]
    fn unknown_scan_is_top() {
        assert_eq!(range(&RelExpr::scan("r")), CardRange::top());
        let mut env = RangeEnv::new();
        env.insert("r".into(), CardRange::exactly(42));
        assert_eq!(
            range_of_plan(&RelExpr::scan("r"), &env),
            CardRange::exactly(42)
        );
    }

    #[test]
    fn transformers_follow_the_multiplicity_laws() {
        let e = values(3).union(values(4));
        assert_eq!(range(&e), CardRange::exactly(7), "⊎ adds");
        let e = values(3).product(values(4));
        assert_eq!(range(&e), CardRange::exactly(12), "× multiplies");
        let e = values(5).difference(values(2));
        assert_eq!(range(&e), CardRange::between(3, 5), "− saturates");
        let e = values(5).intersect(values(2));
        assert_eq!(range(&e), CardRange::between(0, 2), "∩ below either");
        let e = values(5).distinct();
        assert_eq!(
            range(&e),
            CardRange::between(1, 5),
            "δ keeps ≥1 of nonempty"
        );
        let e = values(5).select(ScalarExpr::bool(false));
        assert_eq!(range(&e), CardRange::exactly(0), "σ_false empties");
        let e = values(5).select(ScalarExpr::bool(true));
        assert_eq!(range(&e), CardRange::exactly(5), "σ_true is identity");
        let e = values(5).project(&[1]);
        assert_eq!(range(&e), CardRange::exactly(5), "π preserves multiplicity");
        let e = values(5).group_by(&[], Aggregate::Cnt, 1);
        assert_eq!(range(&e), CardRange::exactly(1), "whole-relation γ");
        let e = values(5).group_by(&[1], Aggregate::Cnt, 1);
        assert_eq!(range(&e), CardRange::between(1, 5), "keyed γ");
    }

    #[test]
    fn galois_connection_to_emptiness() {
        assert_eq!(CardRange::exactly(0).to_card(), Card::Empty);
        assert_eq!(CardRange::exactly(3).to_card(), Card::NonEmpty);
        assert_eq!(CardRange::between(1, 9).to_card(), Card::NonEmpty);
        assert_eq!(CardRange::top().to_card(), Card::Unknown);
        assert_eq!(CardRange::between(0, 5).to_card(), Card::Unknown);
    }

    #[test]
    fn join_is_interval_hull() {
        let a = CardRange::between(2, 4);
        let b = CardRange::between(3, 9);
        assert_eq!(a.join(b), CardRange::between(2, 9));
        assert_eq!(a.join(CardRange::top()), CardRange::top());
    }

    #[test]
    fn clamp_respects_bounds() {
        let r = CardRange::between(10, 100);
        assert_eq!(r.clamp_estimate(5.0), 10.0);
        assert_eq!(r.clamp_estimate(50.0), 50.0);
        assert_eq!(r.clamp_estimate(5000.0), 100.0);
        assert_eq!(CardRange::top().clamp_estimate(7.5), 7.5);
    }

    #[test]
    fn bounds_contain_actual_execution() {
        // 3 × 2 joined under a selective predicate: actual ∈ [0, 6]
        let e = values(3).join(values(2), ScalarExpr::attr(1).eq(ScalarExpr::attr(2)));
        let r = range(&e);
        assert_eq!(r, CardRange::between(0, 6));
        assert!(r.contains(2), "the equi-join result fits the bounds");
    }
}
