//! Static semantic analysis for the multi-set extended relational algebra.
//!
//! The paper (Grefen & de By, ICDE 1994) makes the algebra *formal*
//! precisely so properties can be established before execution; this crate
//! turns that formal layer into tooling. Three passes, all producing
//! structured [`Diagnostic`]s with stable codes:
//!
//! 1. **Schema/type inference** ([`analyze_plan`]) — every attribute
//!    reference and arithmetic expression is resolved against inferred
//!    schemas, with structural spans, reporting *all* problems instead of
//!    stopping at the first (`E0001` unresolved attribute, `E0002` unknown
//!    relation, `E0003` type mismatch, `E0004` incompatible operands,
//!    `E0005` malformed operator).
//! 2. **Partiality/emptiness analysis** (same walk) — the three-point
//!    lattice [`Card`] = {empty, nonempty, unknown} is propagated through
//!    `⊎ − × σ π δ γ`, warning when a *partial* aggregate (Definition 3.4:
//!    `AVG`/`MIN`/`MAX`/… are undefined on the empty multi-set) may receive
//!    an empty bag (`W0101`), erroring when it provably does (`E0102`),
//!    and staying silent when safety is proved. [`analyze_program`] extends
//!    the lattice across statements, so `insert` of a nonempty literal
//!    proves a downstream aggregate safe.
//! 3. **Rewrite-soundness checking** ([`rewrite`], [`differential`]) —
//!    optimizer rules declare their soundness argument as a
//!    [`Precondition`] the driver must [`discharge`] per application
//!    (`E0201` on refusal), and debug builds additionally cross-check each
//!    applied rewrite by differential evaluation on small randomized
//!    instances, catching δ-over-⊎ style misrewrites by construction.
//! 4. **Plan-property inference** ([`props`]) — a bottom-up abstract
//!    interpretation deriving candidate keys, functional dependencies,
//!    duplicate-freeness and constant columns for every plan node from
//!    declared key constraints ([`KeyEnv`]), with `E0401`–`E0403`
//!    diagnostics guarding the constraints themselves.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod card;
pub mod diag;
pub mod differential;
pub mod plan;
pub mod program;
pub mod props;
pub mod rewrite;
pub mod views;

pub use card::{range_env_of_database, range_of_plan, CardRange, RangeEnv};
pub use diag::{first_error, has_errors, render, Code, Diagnostic, Severity, Span};
pub use differential::{verify_rewrite, verify_rewrite_with};
pub use plan::{analyze_plan, Card, CardEnv, PlanAnalysis};
pub use program::{analyze_program, ProgramStmt};
pub use props::{infer_props, KeyEnv, Props};
pub use rewrite::{
    discharge, discharge_with, duplicate_free, duplicate_free_with, provably_empty, Condition,
    Precondition,
};
pub use views::{analyze_view_def, structural_card, ViewAnalysis};
