//! The storage abstraction: a flat namespace of byte files.
//!
//! All durable I/O goes through the [`Storage`] trait so the same WAL,
//! snapshot and recovery code runs against two very different backends:
//!
//! * [`DirStorage`] — real files in a directory, with `fsync` and
//!   write-temp-then-rename atomic replacement (the production backend);
//! * [`MemStorage`] — an in-memory fault-injecting backend that accounts
//!   every byte written and can simulate a crash after the N-th byte,
//!   enabling the deterministic crash-at-every-point recovery harness
//!   (no real fsync, so it runs identically everywhere, tmpfs included).
//!
//! The fault model of [`MemStorage`] is the standard one for WAL testing:
//! every byte that was written before the crash point is durable, every
//! byte after it is lost, and a crash can land *inside* any write. Renames
//! are atomic (one unit): a crash during [`Storage::replace_atomic`]
//! leaves either the old content or the new, never a mixture — which is
//! exactly the contract `rename(2)` gives the real backend.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::{StoreError, StoreResult};

/// A flat namespace of append-able, atomically-replaceable byte files.
pub trait Storage {
    /// Reads the entire contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>>;

    /// Appends `bytes` to `name`, creating the file if missing.
    fn append(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()>;

    /// Durably flushes all previous appends to `name` (fsync).
    fn sync(&mut self, name: &str) -> StoreResult<()>;

    /// Atomically replaces the contents of `name` with `bytes`: the new
    /// content is written to a temporary sibling, flushed, and renamed
    /// into place, so a crash leaves either the old or the new version.
    fn replace_atomic(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()>;

    /// Truncates `name` to `len` bytes (drops a torn WAL tail).
    fn truncate(&mut self, name: &str, len: u64) -> StoreResult<()>;
}

/// Real-file backend rooted at a directory.
///
/// Append handles are cached per file so a commit is one `write(2)` plus
/// (policy permitting) one `fsync(2)`, not an open/close pair.
pub struct DirStorage {
    root: PathBuf,
    handles: BTreeMap<String, fs::File>,
}

impl DirStorage {
    /// Opens (creating if needed) a storage directory.
    pub fn open(root: impl AsRef<Path>) -> StoreResult<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DirStorage {
            root,
            handles: BTreeMap::new(),
        })
    }

    /// The directory this storage lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn handle(&mut self, name: &str) -> StoreResult<&mut fs::File> {
        if !self.handles.contains_key(name) {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))?;
            self.handles.insert(name.to_owned(), file);
        }
        Ok(self.handles.get_mut(name).expect("just inserted"))
    }

    /// Flushes the directory entry itself, making renames durable.
    fn sync_dir(&self) -> StoreResult<()> {
        // best-effort on platforms where directories cannot be opened
        if let Ok(dir) = fs::File::open(&self.root) {
            dir.sync_all()?;
        }
        Ok(())
    }
}

impl Storage for DirStorage {
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        self.handle(name)?.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self, name: &str) -> StoreResult<()> {
        self.handle(name)?.sync_all()?;
        Ok(())
    }

    fn replace_atomic(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        // the cached append handle (if any) points at the old inode
        self.handles.remove(name);
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))?;
        self.sync_dir()
    }

    fn truncate(&mut self, name: &str, len: u64) -> StoreResult<()> {
        self.handles.remove(name);
        let f = fs::OpenOptions::new().write(true).open(self.path(name))?;
        f.set_len(len)?;
        f.sync_all()?;
        Ok(())
    }
}

/// One step of the fault-injection write accounting.
///
/// Appends and temp-file writes cost one unit per byte; a rename and a
/// truncate are single atomic units. The budget counts units, so "crash
/// after byte N" sweeps land inside every append and between every
/// atomic step.
const RENAME_COST: u64 = 1;
const TRUNCATE_COST: u64 = 1;

#[derive(Debug, Clone, Default)]
struct MemInner {
    files: BTreeMap<String, Vec<u8>>,
    /// Remaining write units before the simulated crash (`None` = no fault).
    budget: Option<u64>,
    crashed: bool,
    /// Total write units consumed (the fault-free run reads this to learn
    /// how many crash points a workload has).
    units: u64,
    syncs: u64,
}

impl MemInner {
    /// Charges up to `cost` units; returns how many units may be applied
    /// before the crash fires. When the budget runs dry the store is
    /// marked crashed.
    fn charge(&mut self, cost: u64) -> u64 {
        let applied = match self.budget {
            None => cost,
            Some(b) if b >= cost => {
                self.budget = Some(b - cost);
                cost
            }
            Some(b) => {
                self.budget = Some(0);
                self.crashed = true;
                b
            }
        };
        self.units += applied;
        applied
    }
}

/// In-memory fault-injecting backend. Cloning the handle shares the same
/// underlying files, so a test can keep one handle while the store under
/// test owns another — after a simulated crash the test clones the
/// surviving bytes into a fresh store and "reboots".
#[derive(Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// A fault-free in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store that crashes after `units` write units: every byte of an
    /// append or temp-file write is one unit, a rename or truncate is one
    /// unit. Writes up to the budget are durable; the write in flight is
    /// truncated at the crash point, and every later operation fails with
    /// [`StoreError::Crashed`].
    pub fn with_budget(units: u64) -> Self {
        let store = Self::new();
        store.inner.lock().expect("unpoisoned").budget = Some(units);
        store
    }

    /// Installs (or replaces) the crash budget on a live handle. With
    /// `0`, the very next write-unit crashes the store.
    pub fn set_budget(&self, units: u64) {
        self.inner.lock().expect("unpoisoned").budget = Some(units);
    }

    /// True once the injected fault has fired.
    pub fn crashed(&self) -> bool {
        self.inner.lock().expect("unpoisoned").crashed
    }

    /// Total write units consumed so far (crash points of a workload).
    pub fn units_written(&self) -> u64 {
        self.inner.lock().expect("unpoisoned").units
    }

    /// Number of [`Storage::sync`] calls observed.
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().expect("unpoisoned").syncs
    }

    /// The surviving files, as a "disk image" after the crash.
    pub fn image(&self) -> BTreeMap<String, Vec<u8>> {
        self.inner.lock().expect("unpoisoned").files.clone()
    }

    /// Builds a fresh, fault-free store over a disk image (the reboot).
    pub fn from_image(files: BTreeMap<String, Vec<u8>>) -> Self {
        let store = Self::new();
        store.inner.lock().expect("unpoisoned").files = files;
        store
    }

    fn guard<T>(&self, f: impl FnOnce(&mut MemInner) -> StoreResult<T>) -> StoreResult<T> {
        let mut inner = self.inner.lock().expect("unpoisoned");
        if inner.crashed {
            return Err(StoreError::Crashed);
        }
        f(&mut inner)
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>> {
        self.guard(|inner| Ok(inner.files.get(name).cloned()))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        self.guard(|inner| {
            let applied = inner.charge(bytes.len() as u64) as usize;
            inner
                .files
                .entry(name.to_owned())
                .or_default()
                .extend_from_slice(&bytes[..applied]);
            if applied < bytes.len() {
                Err(StoreError::Crashed)
            } else {
                Ok(())
            }
        })
    }

    fn sync(&mut self, name: &str) -> StoreResult<()> {
        let _ = name;
        self.guard(|inner| {
            inner.syncs += 1;
            Ok(())
        })
    }

    fn replace_atomic(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        self.guard(|inner| {
            // phase 1: write the temporary sibling, byte-accounted
            let applied = inner.charge(bytes.len() as u64) as usize;
            let tmp = format!("{name}.tmp");
            inner.files.insert(tmp.clone(), bytes[..applied].to_vec());
            if applied < bytes.len() {
                return Err(StoreError::Crashed);
            }
            // phase 2: the atomic rename — all or nothing
            if inner.charge(RENAME_COST) < RENAME_COST {
                return Err(StoreError::Crashed);
            }
            let content = inner.files.remove(&tmp).expect("just written");
            inner.files.insert(name.to_owned(), content);
            Ok(())
        })
    }

    fn truncate(&mut self, name: &str, len: u64) -> StoreResult<()> {
        self.guard(|inner| {
            if inner.charge(TRUNCATE_COST) < TRUNCATE_COST {
                return Err(StoreError::Crashed);
            }
            if let Some(f) = inner.files.get_mut(name) {
                f.truncate(len as usize);
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_append_read_roundtrip() {
        let mut s = MemStorage::new();
        assert_eq!(s.read("a").unwrap(), None);
        s.append("a", b"hello ").unwrap();
        s.append("a", b"world").unwrap();
        assert_eq!(s.read("a").unwrap().unwrap(), b"hello world");
        assert_eq!(s.units_written(), 11);
    }

    #[test]
    fn mem_crash_truncates_the_write_in_flight() {
        let mut s = MemStorage::with_budget(8);
        s.append("a", b"hello ").unwrap(); // 6 units
        let err = s.append("a", b"world").unwrap_err(); // crashes after 2 more
        assert_eq!(err, StoreError::Crashed);
        assert!(s.crashed());
        // every later operation fails
        assert_eq!(s.read("a").unwrap_err(), StoreError::Crashed);
        // ...but the image shows the durable prefix
        assert_eq!(s.image()["a"], b"hello wo");
    }

    #[test]
    fn mem_replace_atomic_is_all_or_nothing() {
        // budget covers the old content plus part of the new temp file:
        // the target keeps its old content
        let mut s = MemStorage::with_budget(5 + 3);
        s.append("f", b"old!!").unwrap();
        assert_eq!(
            s.replace_atomic("f", b"newer").unwrap_err(),
            StoreError::Crashed
        );
        assert_eq!(s.image()["f"], b"old!!");
        // with budget through the rename, the new content lands
        let mut s = MemStorage::with_budget(5 + 5 + RENAME_COST);
        s.append("f", b"old!!").unwrap();
        s.replace_atomic("f", b"newer").unwrap();
        assert_eq!(s.read("f").unwrap().unwrap(), b"newer");
        // crash exactly between temp write and rename: old content survives,
        // the temp file is left behind (and must be ignored by recovery)
        let mut s = MemStorage::with_budget(5 + 5);
        s.append("f", b"old!!").unwrap();
        assert_eq!(
            s.replace_atomic("f", b"newer").unwrap_err(),
            StoreError::Crashed
        );
        let image = s.image();
        assert_eq!(image["f"], b"old!!");
        assert_eq!(image["f.tmp"], b"newer");
    }

    #[test]
    fn mem_reboot_from_image() {
        let mut s = MemStorage::with_budget(4);
        let _ = s.append("wal", b"abcdefgh");
        assert!(s.crashed());
        let rebooted = MemStorage::from_image(s.image());
        assert!(!rebooted.crashed());
        assert_eq!(rebooted.read("wal").unwrap().unwrap(), b"abcd");
    }

    #[test]
    fn dir_storage_roundtrip() {
        let root = std::env::temp_dir().join(format!(
            "mera-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let mut s = DirStorage::open(&root).unwrap();
        assert_eq!(s.read("wal").unwrap(), None);
        s.append("wal", b"one").unwrap();
        s.append("wal", b"two").unwrap();
        s.sync("wal").unwrap();
        assert_eq!(s.read("wal").unwrap().unwrap(), b"onetwo");
        s.truncate("wal", 4).unwrap();
        assert_eq!(s.read("wal").unwrap().unwrap(), b"onet");
        s.replace_atomic("snap", b"snapshot bytes").unwrap();
        assert_eq!(s.read("snap").unwrap().unwrap(), b"snapshot bytes");
        // reopening sees the same files
        let s2 = DirStorage::open(&root).unwrap();
        assert_eq!(s2.read("wal").unwrap().unwrap(), b"onet");
        let _ = fs::remove_dir_all(&root);
    }
}
