//! [`ConcurrentDb`]: the MVCC transaction engine wired to a shared WAL
//! with cross-client group commit.
//!
//! Where [`DurableDb`](crate::DurableDb) is `&mut self` throughout — one
//! writer, log-then-publish — this front is `&self` everywhere: any
//! number of threads (one per client connection, in `mera-server`)
//! execute transactions concurrently against the [`MvccManager`]'s
//! version chain, and the WAL becomes a shared resource coordinated by a
//! small group-commit protocol:
//!
//! * **Commit order = log order.** Each committed transaction's redo
//!   frame is produced inside the MVCC commit section (the `durability`
//!   hook of [`MvccManager::try_commit`] runs under the commit lock,
//!   after validation, before publication), so frames are generated in
//!   strictly increasing logical-time order and the serial recovery code
//!   replays interleaved histories unchanged.
//! * **[`FsyncPolicy::Always`]** appends and fsyncs the frame right in
//!   the hook — one fsync per commit, fully serialized. This is the
//!   latency-honest baseline.
//! * **[`FsyncPolicy::EveryN`]** is *group commit with
//!   ack-after-durability*: the hook only stages the frame into an
//!   in-memory buffer (so the commit section never waits on the disk),
//!   and the committer then waits on the group. Batching is *natural*:
//!   whenever no flush is in flight the first waiter becomes the
//!   **leader**, writes the whole staged batch with one append and one
//!   fsync, and wakes everyone whose frame it covered. Commits that
//!   arrive while a flush is in flight pile up behind it and ride the
//!   next batch, so group size adapts to concurrency — a lone committer
//!   pays exactly one fsync (no worse than `Always`), while under load
//!   one fsync amortizes across many commits. The `n` is a WAL-batching
//!   hint honored by the serial front; here every ack is durable and
//!   `n` does not gate the flush. Unlike the serial `EveryN` (which
//!   acked before syncing), no transaction is acknowledged until its
//!   frame is durable.
//! * **[`FsyncPolicy::Never`]** appends in the hook without syncing —
//!   the OS flushes when it pleases, exactly like the serial front.
//!
//! A storage failure while flushing staged frames is fail-stop: versions
//! for those frames are already published to readers, so the front
//! *poisons* — every later commit and flush fails with the original
//! error — rather than let the in-memory history silently diverge from
//! the durable one. (A failure on the `Always` path aborts just that
//! commit before publication, like the serial front.)

use std::sync::Arc;

use crate::durable::{DurableDb, DurableParts, FsyncPolicy, StoreOptions, SNAPSHOT_FILE, WAL_FILE};
use crate::error::{StoreError, StoreResult};
use crate::snapshot;
use crate::storage::Storage;
use crate::wal::{self, WalRecord};
use mera_core::prelude::*;
use mera_expr::RelExpr;
use mera_lang::{lower_script, parse_script, program_to_xra, rel_to_xra, RunResult};
use mera_txn::mvcc::{MvccManager, Version};
use mera_txn::{AbortReason, ConstraintSet, DeclareKeyError, Outcome, Outputs, Program};
use parking_lot::{Condvar, Mutex};

/// Group-commit bookkeeping: frames staged but not yet written, and the
/// durable horizon acks wait on. Tickets are per-frame sequence numbers
/// issued in commit order.
struct Group {
    /// Encoded frames staged in commit order, awaiting the next leader.
    staged: Vec<u8>,
    /// Tickets issued (frames staged or directly appended).
    appended: u64,
    /// Tickets durable on disk.
    durable: u64,
    /// A leader is currently writing a batch.
    flushing: bool,
    /// First storage error seen while flushing published commits; once
    /// set, the front is fail-stop.
    poisoned: Option<StoreError>,
}

/// A concurrent durable database: MVCC snapshots over the version chain,
/// shared-WAL group commit underneath. All methods take `&self`; the
/// intended use is one `Arc<ConcurrentDb>` shared by every client
/// session.
pub struct ConcurrentDb<S: Storage> {
    mvcc: MvccManager,
    storage: Mutex<S>,
    group: Mutex<Group>,
    group_cv: Condvar,
    options: StoreOptions,
}

impl<S: Storage> std::fmt::Debug for ConcurrentDb<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentDb")
            .field("time", &self.mvcc.time())
            .field("fsync", &self.options.fsync)
            .finish_non_exhaustive()
    }
}

impl<S: Storage> ConcurrentDb<S> {
    /// Opens (or recovers) a concurrent durable database.
    ///
    /// Recovery is exactly the serial path — [`DurableDb::open`] replays
    /// the WAL single-threaded (interleaved histories were logged in
    /// commit order, so nothing about replay changes) — and the result
    /// seeds version 0 of the MVCC chain.
    pub fn open(
        storage: S,
        initial_schema: DatabaseSchema,
        options: StoreOptions,
    ) -> StoreResult<Self> {
        Ok(Self::from_durable(DurableDb::open(
            storage,
            initial_schema,
            options,
        )?))
    }

    /// Wraps an already-opened serial database.
    pub fn from_durable(db: DurableDb<S>) -> Self {
        let DurableParts {
            storage,
            db,
            views,
            stats,
            indexes,
            keys,
            options,
        } = db.into_parts();
        let mvcc = MvccManager::from_parts(
            db,
            views,
            stats,
            indexes,
            keys,
            options.exec,
            ConstraintSet::new(),
        );
        ConcurrentDb {
            mvcc,
            storage: Mutex::new(storage),
            group: Mutex::new(Group {
                staged: Vec::new(),
                appended: 0,
                durable: 0,
                flushing: false,
                poisoned: None,
            }),
            group_cv: Condvar::new(),
            options,
        }
    }

    /// The MVCC manager — for direct `prepare`/`try_commit` use and for
    /// tests that need version-level access.
    pub fn mvcc(&self) -> &MvccManager {
        &self.mvcc
    }

    /// Pins the newest published version for lock-free reading.
    pub fn pin(&self) -> Arc<Version> {
        self.mvcc.pin()
    }

    /// The store options this database was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// Runs a read-only program against a pinned version without
    /// touching the commit path or the WAL.
    pub fn read(&self, version: &Arc<Version>, program: &Program) -> StoreResult<Outputs> {
        self.mvcc
            .read(version, program)
            .map_err(|r| StoreError::TransactionAborted(r.to_string()))
    }

    /// Runs one transaction to its typed outcome: committed outputs, or
    /// an abort reason ([`AbortReason::Conflict`] tells a caller the
    /// retry is worthwhile). Storage failures are errors; an
    /// acknowledged commit is durable per the fsync policy.
    pub fn try_execute(&self, program: &Program) -> StoreResult<Outcome> {
        let start = self.mvcc.pin();
        let prepared = match self.mvcc.prepare(start, program) {
            Ok(p) => p,
            Err(reason) => return Ok(Outcome::Aborted(reason)),
        };
        if prepared.is_read_only() {
            let (outcome, _) = self.mvcc.try_commit::<StoreError>(prepared, |_| Ok(()))?;
            return Ok(outcome);
        }
        let text = program_to_xra(program);
        match self.options.fsync {
            FsyncPolicy::Always => {
                let (outcome, _) = self.mvcc.try_commit(prepared, |time| {
                    self.append_direct(&commit_frame(time, &text), true)
                })?;
                Ok(outcome)
            }
            FsyncPolicy::Never => {
                let (outcome, _) = self.mvcc.try_commit(prepared, |time| {
                    self.append_direct(&commit_frame(time, &text), false)
                })?;
                Ok(outcome)
            }
            FsyncPolicy::EveryN(_) => {
                let mut ticket = None;
                let (outcome, _) = self.mvcc.try_commit(prepared, |time| {
                    ticket = Some(self.stage(&commit_frame(time, &text))?);
                    Ok::<(), StoreError>(())
                })?;
                if let Some(ticket) = ticket {
                    self.await_durable(ticket)?;
                }
                Ok(outcome)
            }
        }
    }

    /// Runs one transaction with durable commit; aborts (including
    /// conflicts) surface as [`StoreError::TransactionAborted`].
    pub fn execute(&self, program: &Program) -> StoreResult<Outputs> {
        match self.try_execute(program)? {
            Outcome::Committed(outputs) => Ok(outputs),
            Outcome::Aborted(reason) => Err(StoreError::TransactionAborted(reason.to_string())),
        }
    }

    /// Appends one frame under the storage lock, optionally fsyncing —
    /// the `Always`/`Never` commit hook and runs inside the MVCC commit
    /// section, so tickets stay in commit order.
    fn append_direct(&self, frame: &[u8], sync: bool) -> StoreResult<()> {
        let mut group = self.group.lock();
        if let Some(e) = &group.poisoned {
            return Err(e.clone());
        }
        // staged frames (left over from a policy that staged, or a
        // future mixed mode) must precede this one
        debug_assert!(group.staged.is_empty());
        let mut storage = self.storage.lock();
        storage.append(WAL_FILE, frame)?;
        if sync {
            storage.sync(WAL_FILE)?;
        }
        drop(storage);
        group.appended += 1;
        group.durable = group.appended;
        Ok(())
    }

    /// Stages one frame for the next group flush; returns the ticket the
    /// committer must wait on. Runs inside the MVCC commit section —
    /// memory-only, so commits never wait on the disk here.
    fn stage(&self, frame: &[u8]) -> StoreResult<u64> {
        let mut group = self.group.lock();
        if let Some(e) = &group.poisoned {
            return Err(e.clone());
        }
        group.staged.extend_from_slice(frame);
        group.appended += 1;
        let ticket = group.appended;
        drop(group);
        // wake waiters: a parked committer can now lead a bigger batch
        self.group_cv.notify_all();
        Ok(ticket)
    }

    /// Blocks until `ticket` is durable (or the front is poisoned).
    /// Natural batching: whenever no flush is in flight, the first
    /// waiter becomes the leader and writes the whole staged batch.
    /// A lone committer therefore flushes immediately (no added
    /// latency over `Always`), while under load commits pile up behind
    /// the in-flight fsync and the next leader writes them as one
    /// batch — group size adapts to concurrency by itself.
    fn await_durable(&self, ticket: u64) -> StoreResult<()> {
        let mut group = self.group.lock();
        loop {
            if let Some(e) = &group.poisoned {
                return Err(e.clone());
            }
            if group.durable >= ticket {
                return Ok(());
            }
            if !group.flushing {
                // become the leader: take the batch, write it outside
                // the group lock so staging continues meanwhile
                group.flushing = true;
                let batch = std::mem::take(&mut group.staged);
                let target = group.appended;
                drop(group);
                let result = {
                    let mut storage = self.storage.lock();
                    storage
                        .append(WAL_FILE, &batch)
                        .and_then(|()| storage.sync(WAL_FILE))
                };
                group = self.group.lock();
                group.flushing = false;
                match result {
                    Ok(()) => group.durable = group.durable.max(target),
                    Err(e) => {
                        // published-but-not-durable commits exist now:
                        // fail-stop
                        group.poisoned = Some(e);
                    }
                }
                self.group_cv.notify_all();
                continue;
            }
            self.group_cv.wait(&mut group);
        }
    }

    /// Flushes (and fsyncs) any staged frames, then optionally appends
    /// `record` in the same durable step. Used by DDL hooks (which run
    /// under the MVCC commit lock, so no new frames can be staged while
    /// this runs) and by [`ConcurrentDb::sync`].
    fn drain_and_append(&self, record: Option<&WalRecord>) -> StoreResult<()> {
        let mut group = self.group.lock();
        while group.flushing {
            self.group_cv.wait(&mut group);
        }
        if let Some(e) = &group.poisoned {
            return Err(e.clone());
        }
        let batch = std::mem::take(&mut group.staged);
        let target = group.appended;
        let mut storage = self.storage.lock();
        let result = (|| {
            if !batch.is_empty() {
                storage.append(WAL_FILE, &batch)?;
            }
            if let Some(record) = record {
                storage.append(WAL_FILE, &record.encode_frame())?;
            }
            storage.sync(WAL_FILE)
        })();
        drop(storage);
        match result {
            Ok(()) => {
                group.durable = group.durable.max(target);
                drop(group);
                self.group_cv.notify_all();
                Ok(())
            }
            Err(e) => {
                if batch.is_empty() {
                    // only the new record was at risk; the caller's DDL
                    // simply fails before publication
                    Err(e)
                } else {
                    // staged frames belong to published commits
                    group.poisoned = Some(e.clone());
                    drop(group);
                    self.group_cv.notify_all();
                    Err(e)
                }
            }
        }
    }

    /// Forces every staged frame to disk (an explicit group flush) —
    /// called on graceful shutdown and before checkpoints.
    pub fn sync(&self) -> StoreResult<()> {
        self.drain_and_append(None)
    }

    /// Declares a new relation, durably: validated against the newest
    /// version, logged and fsynced, then published as a DDL version.
    pub fn add_relation(&self, rs: RelationSchema) -> StoreResult<()> {
        let record = WalRecord::Declare {
            name: rs.name.clone(),
            schema: rs.schema.as_ref().clone(),
        };
        self.mvcc
            .add_relation_with(rs, || self.drain_and_append(Some(&record)))?
            .map_err(StoreError::from)
    }

    /// Creates a materialized view, durably.
    pub fn create_view(&self, name: &str, expr: RelExpr) -> StoreResult<SchemaRef> {
        let record = WalRecord::DeclareView {
            name: name.to_owned(),
            text: rel_to_xra(&expr),
        };
        self.mvcc
            .create_view_with(name, expr, || self.drain_and_append(Some(&record)))?
            .map_err(|e| StoreError::Core(CoreError::TypeError(e.to_string())))
    }

    /// Creates a secondary index, durably.
    pub fn create_index(&self, relation: &str, keys: &[usize]) -> StoreResult<()> {
        let record = WalRecord::DeclareIndex {
            relation: relation.to_owned(),
            keys: keys.to_vec(),
        };
        self.mvcc
            .create_index_with(relation, keys, || self.drain_and_append(Some(&record)))?
            .map_err(StoreError::from)
    }

    /// Declares a key constraint, durably.
    pub fn declare_key(&self, relation: &str, attrs: &[usize]) -> StoreResult<()> {
        let record = WalRecord::DeclareKey {
            relation: relation.to_owned(),
            attrs: attrs.to_vec(),
        };
        self.mvcc
            .declare_key_with(relation, attrs, || self.drain_and_append(Some(&record)))?
            .map_err(|e| match e {
                DeclareKeyError::Rejected(d) => {
                    StoreError::Core(CoreError::TypeError(d.to_string()))
                }
                DeclareKeyError::Error(c) => StoreError::Core(c),
            })
    }

    /// Writes a checkpoint under quiescence: no commit can publish (or
    /// stage a frame) while the snapshot is taken, so the snapshot and
    /// the reset WAL describe exactly one version.
    pub fn checkpoint(&self) -> StoreResult<()> {
        self.mvcc.quiesce(|version| {
            self.drain_and_append(None)?;
            let bytes = snapshot::encode(version.database());
            let mut storage = self.storage.lock();
            storage.replace_atomic(SNAPSHOT_FILE, &bytes)?;
            let mut wal_bytes = wal::empty_wal();
            for v in version.views().iter() {
                let record = WalRecord::DeclareView {
                    name: v.name().to_owned(),
                    text: rel_to_xra(v.expr()),
                };
                wal_bytes.extend_from_slice(&record.encode_frame());
            }
            for (relation, keys) in version.indexes().definitions() {
                let record = WalRecord::DeclareIndex { relation, keys };
                wal_bytes.extend_from_slice(&record.encode_frame());
            }
            for (relation, attrs) in version.keys().definitions() {
                let record = WalRecord::DeclareKey { relation, attrs };
                wal_bytes.extend_from_slice(&record.encode_frame());
            }
            storage.replace_atomic(WAL_FILE, &wal_bytes)?;
            Ok(())
        })
    }

    /// Runs a whole XRA script durably (declarations, views, keys, then
    /// each transaction in order). The concurrent analogue of
    /// [`crate::DurableSession::run_script`]; aborts are reported in the
    /// results, storage failures abort the script.
    pub fn run_script(&self, src: &str) -> StoreResult<Vec<RunResult>> {
        let script = parse_script(src).map_err(StoreError::from)?;
        let lowered =
            lower_script(&script, &self.pin().catalog_schema()).map_err(StoreError::from)?;
        for decl in lowered.declarations {
            self.add_relation(decl)?;
        }
        for view in lowered.views {
            self.create_view(&view.name, view.expr)?;
        }
        for key in lowered.keys {
            self.declare_key(&key.relation, &key.attrs)?;
        }
        let mut results = Vec::with_capacity(lowered.transactions.len());
        for program in &lowered.transactions {
            results.push(match self.try_execute(program)? {
                Outcome::Committed(outputs) => RunResult::Committed(outputs.queries),
                Outcome::Aborted(reason) => RunResult::Aborted(reason.to_string()),
            });
        }
        Ok(results)
    }

    /// Parses, translates and durably runs one SQL statement — the
    /// concurrent analogue of [`crate::run_sql`]. Returns the result
    /// relation for queries, `None` otherwise.
    pub fn run_sql(&self, sql: &str) -> StoreResult<Option<Relation>> {
        let stmt = mera_sql::parse_sql(sql).map_err(StoreError::from)?;
        let catalog = self.pin().catalog_schema();
        let translated = mera_sql::translate(&stmt, &catalog).map_err(StoreError::from)?;
        match translated {
            mera_sql::Translated::CreateView { name, expr } => {
                self.create_view(&name, expr)?;
                Ok(None)
            }
            mera_sql::Translated::CreateTable { schema, keys } => {
                let name = schema.name.clone();
                self.add_relation(schema)?;
                for attrs in keys {
                    self.declare_key(&name, &attrs)?;
                }
                Ok(None)
            }
            other => {
                let is_query = matches!(other, mera_sql::Translated::Query(_));
                let program = Program::single(other.into_statement());
                let mut outputs = self.execute(&program)?;
                if is_query {
                    Ok(Some(outputs.queries.remove(0)))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// Encodes one commit frame (logical time + program text).
fn commit_frame(time: LogicalTime, text: &str) -> Vec<u8> {
    WalRecord::Commit {
        time,
        text: text.to_owned(),
    }
    .encode_frame()
}

/// Returns true when the abort reason is a write-write conflict worth
/// retrying against a newer snapshot.
pub fn is_conflict(outcome: &Outcome) -> bool {
    matches!(outcome, Outcome::Aborted(AbortReason::Conflict { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use mera_lang::{parse_program, Lowerer};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "accounts",
                Schema::named(&[("owner", DataType::Str), ("balance", DataType::Int)]),
            )
            .expect("fresh schema")
    }

    fn open(storage: MemStorage, fsync: FsyncPolicy) -> ConcurrentDb<MemStorage> {
        let options = StoreOptions {
            fsync,
            ..StoreOptions::default()
        };
        ConcurrentDb::open(storage, schema(), options).expect("open")
    }

    fn insert_program(db: &ConcurrentDb<MemStorage>, owner: &str, balance: i64) -> Program {
        let text = format!("insert(accounts, values (str, int) {{('{owner}', {balance})}})");
        let parsed = parse_program(&text).expect("parses");
        let catalog = db.pin().catalog_schema();
        let mut lowerer = Lowerer::new(&catalog);
        lowerer.lower_program(&parsed).expect("lowers")
    }

    #[test]
    fn commits_recover_through_the_serial_path() {
        let storage = MemStorage::new();
        let db = open(storage.clone(), FsyncPolicy::Always);
        db.execute(&insert_program(&db, "ann", 10))
            .expect("commits");
        db.execute(&insert_program(&db, "bob", 20))
            .expect("commits");
        let expected = db.pin().database().clone();
        drop(db);

        let recovered = open(MemStorage::from_image(storage.image()), FsyncPolicy::Always);
        assert_eq!(recovered.pin().database(), &expected);
    }

    #[test]
    fn group_commit_is_durable_when_acknowledged() {
        let storage = MemStorage::new();
        let db = open(storage.clone(), FsyncPolicy::EveryN(8));
        // single-threaded: each commit waits out the group window and
        // leads its own flush — slower, but every ack means durable
        db.execute(&insert_program(&db, "ann", 10))
            .expect("commits");
        let expected = db.pin().database().clone();
        drop(db);

        let recovered = open(MemStorage::from_image(storage.image()), FsyncPolicy::Always);
        assert_eq!(recovered.pin().database(), &expected);
    }

    #[test]
    fn group_commit_batches_fsyncs_across_threads() {
        let storage = MemStorage::new();
        let db = Arc::new(open(storage.clone(), FsyncPolicy::EveryN(4)));
        let syncs_before = storage.sync_count();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    // all writers touch the same unkeyed relation, so
                    // first-committer-wins aborts the laggards: retry
                    let p = insert_program(&db, &format!("owner{i}"), i);
                    loop {
                        match db.try_execute(&p).expect("io ok") {
                            Outcome::Committed(_) => break,
                            o if is_conflict(&o) => continue,
                            o => panic!("unexpected abort: {o:?}"),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("joins");
        }
        let syncs = storage.sync_count() - syncs_before;
        assert!(syncs <= 8, "8 commits should not need more than 8 fsyncs");
        assert_eq!(db.pin().database().relation("accounts").unwrap().len(), 8);
        drop(db);

        let recovered = open(MemStorage::from_image(storage.image()), FsyncPolicy::Always);
        assert_eq!(
            recovered
                .pin()
                .database()
                .relation("accounts")
                .unwrap()
                .len(),
            8
        );
    }

    #[test]
    fn conflicting_writers_get_typed_aborts_and_recovery_matches() {
        let storage = MemStorage::new();
        let db = open(storage.clone(), FsyncPolicy::Always);
        db.execute(&insert_program(&db, "ann", 10))
            .expect("commits");
        // two prepared writers on the same (unkeyed) relation: first
        // committer wins, the second gets a typed conflict
        let start = db.mvcc().pin();
        let p1 = db
            .mvcc()
            .prepare(Arc::clone(&start), &insert_program(&db, "bob", 20))
            .expect("prepares");
        let p2 = db
            .mvcc()
            .prepare(start, &insert_program(&db, "cho", 30))
            .expect("prepares");
        let (o1, _) = db
            .mvcc()
            .try_commit(p1, |time| {
                db.append_direct(
                    &commit_frame(time, "insert(accounts, values (str, int) {('bob', 20)})"),
                    true,
                )
            })
            .expect("io ok");
        assert!(o1.is_committed());
        let (o2, _) = db
            .mvcc()
            .try_commit::<StoreError>(p2, |_| unreachable!("validation fails first"))
            .expect("io ok");
        assert!(is_conflict(&o2), "{o2:?}");
        let expected = db.pin().database().clone();
        drop(db);

        let recovered = open(MemStorage::from_image(storage.image()), FsyncPolicy::Always);
        assert_eq!(recovered.pin().database(), &expected);
    }

    #[test]
    fn ddl_and_checkpoint_survive_reopen() {
        let storage = MemStorage::new();
        let db = open(storage.clone(), FsyncPolicy::EveryN(4));
        db.execute(&insert_program(&db, "ann", 10))
            .expect("commits");
        db.declare_key("accounts", &[1]).expect("declares");
        db.create_index("accounts", &[1]).expect("indexes");
        db.run_sql(
            "CREATE MATERIALIZED VIEW totals AS \
             SELECT owner, SUM(balance) FROM accounts GROUP BY owner",
        )
        .expect("view");
        db.checkpoint().expect("checkpoint");
        db.execute(&insert_program(&db, "bob", 20))
            .expect("commits");
        db.sync().expect("flushes");
        let version = db.pin();
        let expected_db = version.database().clone();
        let expected_view = version
            .views()
            .get("totals")
            .expect("view")
            .data()
            .as_ref()
            .clone();
        drop(version);
        drop(db);

        let recovered = open(MemStorage::from_image(storage.image()), FsyncPolicy::Always);
        let v = recovered.pin();
        assert_eq!(v.database(), &expected_db);
        assert_eq!(
            v.views().get("totals").expect("view").data().as_ref(),
            &expected_view
        );
        assert_eq!(
            v.keys().definitions(),
            vec![("accounts".to_string(), vec![1])]
        );
        assert_eq!(
            v.indexes().definitions(),
            vec![("accounts".to_string(), vec![1])]
        );
        // the recovered key still enforces
        let err = recovered
            .execute(&insert_program(&recovered, "ann", 99))
            .expect_err("key violation");
        assert!(err.to_string().contains("accounts"), "{err}");
    }

    #[test]
    fn poisoned_front_fails_stop_after_flush_failure() {
        let storage = MemStorage::new();
        let db = open(storage.clone(), FsyncPolicy::EveryN(2));
        db.execute(&insert_program(&db, "ann", 10))
            .expect("commits");
        storage.set_budget(0);
        let err = db
            .execute(&insert_program(&db, "bob", 20))
            .expect_err("storage dead");
        assert_eq!(err, StoreError::Crashed);
        // fail-stop: later commits see the original poison
        let err = db
            .execute(&insert_program(&db, "cho", 30))
            .expect_err("poisoned");
        assert_eq!(err, StoreError::Crashed);
    }

    #[test]
    fn sql_and_script_front_doors_run_concurrently_safe() {
        let db = open(MemStorage::new(), FsyncPolicy::Never);
        db.run_sql("INSERT INTO accounts VALUES ('ann', 10)")
            .expect("dml");
        let out = db
            .run_sql("SELECT owner FROM accounts WHERE balance >= 5")
            .expect("query")
            .expect("relation");
        assert_eq!(out.len(), 1);
        let results = db
            .run_script("begin insert(accounts, values (str, int) {('bob', 7)}); end")
            .expect("script");
        assert!(matches!(results[0], RunResult::Committed(_)));
        assert_eq!(db.pin().database().relation("accounts").unwrap().len(), 2);
    }
}
