//! # mera-store — durability for the transaction log
//!
//! The paper's transaction model (§4.3) treats a database as a sequence
//! of states `D_0 → D_1 → …` where each committed transaction is a
//! transition. `mera-txn` realizes the transitions and keeps a *logical*
//! redo log of committed programs; this crate makes that log — and
//! therefore the whole state sequence — survive process death:
//!
//! * [`wal`] — a write-ahead log of length-prefixed, CRC-32-checked,
//!   versioned records: one `Commit` per committed transaction (logical
//!   time + the program as XRA text) and one `Declare` per relation added
//!   to the schema. Recovery truncates torn tails; CRC-valid garbage is a
//!   hard error.
//! * [`snapshot`] — checkpoint images of a full [`Database`] at one
//!   logical time, swapped in atomically so a crash never exposes a
//!   half-written snapshot.
//! * [`DurableDb`] — the engine wrapper enforcing log-then-publish: a
//!   commit is appended (and fsynced, per [`FsyncPolicy`]) before the new
//!   state is visible; aborts write nothing.
//! * [`DurableSession`] / [`run_sql`] — the XRA-script and SQL front-ends
//!   over a durable database.
//! * [`Storage`] — the five-operation backend trait, with [`DirStorage`]
//!   (real files) and [`MemStorage`] (deterministic fault injection:
//!   crash after N write units, inspect the surviving bytes, reboot).
//!
//! The crash-recovery contract, tested by the crash matrix in
//! `tests/crash_matrix.rs`: after a crash at *any* write boundary,
//! recovery yields exactly the state produced by some prefix of the
//! durable history — never a torn state, never reordered effects.
//!
//! ```
//! use mera_core::prelude::*;
//! use mera_store::{DurableDb, MemStorage, StoreOptions};
//!
//! let schema = DatabaseSchema::new()
//!     .with("beer", Schema::named(&[("name", DataType::Str)]))?;
//! let disk = MemStorage::new();
//! let mut db = DurableDb::open(disk.clone(), schema, StoreOptions::default())?;
//! mera_store::run_sql(&mut db, "INSERT INTO beer VALUES ('Grolsch')")?;
//! drop(db); // "power loss"
//!
//! let rebooted = MemStorage::from_image(disk.image());
//! let db = DurableDb::open(rebooted, DatabaseSchema::new(), StoreOptions::default())?;
//! assert_eq!(db.database().relation("beer")?.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod concurrent;
pub mod crc;
pub mod durable;
pub mod error;
pub mod session;
pub mod snapshot;
pub mod storage;
pub mod wal;

pub use concurrent::{is_conflict, ConcurrentDb};
pub use durable::{DurableDb, DurableParts, FsyncPolicy, StoreOptions, SNAPSHOT_FILE, WAL_FILE};
pub use error::{StoreError, StoreResult};
pub use session::{run_sql, DurableSession};
pub use storage::{DirStorage, MemStorage, Storage};
pub use wal::{ScanResult, WalRecord};

#[cfg(doc)]
use mera_core::prelude::Database;
