//! Error types for the durable store.

use std::fmt;

use mera_core::prelude::CoreError;

/// Errors raised by the durability layer.
///
/// The variants separate three very different situations a storage engine
/// must keep apart: *environmental* failures (I/O errors, the injected
/// [`Crashed`](StoreError::Crashed) fault), *data* failures (corrupt WAL or
/// snapshot bytes that passed the length check but not the semantic one),
/// and *logic* failures surfaced by the layers below (a replayed program
/// aborting, an ill-typed snapshot relation).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An operating-system I/O failure (rendered, to stay comparable).
    Io(String),
    /// The fault-injecting storage backend simulated a crash; every
    /// operation on the "dead" store fails with this until it is reopened.
    Crashed,
    /// The write-ahead log is structurally unreadable: bad magic, an
    /// unknown record version, or an intact (CRC-verified) record whose
    /// payload does not decode. Torn tails are *not* errors — recovery
    /// truncates them — so this variant always means real corruption or a
    /// format change without a version bump.
    CorruptWal(String),
    /// The snapshot file is unreadable: bad magic, unknown version, CRC
    /// mismatch, or an undecodable body.
    CorruptSnapshot(String),
    /// A logged transaction did not commit when replayed during recovery.
    /// Committed programs replay deterministically, so this indicates the
    /// log and the database schema have diverged.
    ReplayFailed {
        /// Logical time of the record that failed to replay.
        time: u64,
        /// Rendered reason.
        reason: String,
    },
    /// A transaction submitted through the durable API aborted (the
    /// database is unchanged; nothing was written).
    TransactionAborted(String),
    /// An error from the core data model (schema mismatches, etc.).
    Core(CoreError),
    /// A parse or lowering error from the textual front-ends.
    Lang(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StoreError::Crashed => write!(f, "storage crashed (injected fault)"),
            StoreError::CorruptWal(msg) => write!(f, "corrupt write-ahead log: {msg}"),
            StoreError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            StoreError::ReplayFailed { time, reason } => {
                write!(f, "recovery replay failed at t={time}: {reason}")
            }
            StoreError::TransactionAborted(reason) => {
                write!(f, "transaction aborted: {reason}")
            }
            StoreError::Core(e) => write!(f, "{e}"),
            StoreError::Lang(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl From<mera_lang::LangError> for StoreError {
    fn from(e: mera_lang::LangError) -> Self {
        StoreError::Lang(e.to_string())
    }
}

/// Result alias for the durable store.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StoreError::Crashed.to_string().contains("injected fault"));
        let e = StoreError::ReplayFailed {
            time: 7,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("t=7"));
        let e: StoreError = CoreError::DivisionByZero.into();
        assert_eq!(e.to_string(), "division by zero");
    }
}
