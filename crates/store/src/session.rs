//! Durable front-ends: XRA scripts and SQL over a [`DurableDb`].
//!
//! [`DurableSession`] is the persistent counterpart of
//! [`mera_lang::Session`]: the same script semantics (declarations extend
//! the schema immediately, each transaction runs atomically), but every
//! declaration and commit reaches the WAL before it is acknowledged.
//! [`run_sql`] does the same for the SQL subset.

use crate::durable::DurableDb;
use crate::error::{StoreError, StoreResult};
use crate::storage::Storage;
use mera_core::prelude::*;
use mera_lang::{lower_script, parse_script, RunResult};
use mera_sql::{parse_sql, translate, Translated};
use mera_txn::Program;

/// A script-level session whose state survives restarts.
pub struct DurableSession<S: Storage> {
    db: DurableDb<S>,
}

impl<S: Storage> DurableSession<S> {
    /// Wraps an opened durable database.
    pub fn new(db: DurableDb<S>) -> Self {
        DurableSession { db }
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        self.db.database()
    }

    /// Borrows the underlying durable database.
    pub fn durable(&self) -> &DurableDb<S> {
        &self.db
    }

    /// Consumes the session, returning the durable database.
    pub fn into_durable(self) -> DurableDb<S> {
        self.db
    }

    /// Runs a whole XRA script durably.
    ///
    /// Declarations are logged and applied in order; each transaction
    /// commits through the WAL. Returns one [`RunResult`] per transaction
    /// (aborts are reported in the results, not as errors — matching the
    /// volatile session, a failing transaction aborts itself, not the
    /// script). Storage failures *do* abort the script: whatever committed
    /// before the failure is durable, the rest never ran.
    pub fn run_script(&mut self, src: &str) -> StoreResult<Vec<RunResult>> {
        let script = parse_script(src).map_err(StoreError::from)?;
        let lowered = lower_script(&script, &catalog(&self.db)).map_err(StoreError::from)?;
        for decl in lowered.declarations {
            self.db.add_relation(decl)?;
        }
        for view in lowered.views {
            self.db.create_view(&view.name, view.expr)?;
        }
        for key in lowered.keys {
            self.db.declare_key(&key.relation, &key.attrs)?;
        }
        let mut results = Vec::with_capacity(lowered.transactions.len());
        for program in &lowered.transactions {
            results.push(self.run_program(program)?);
        }
        Ok(results)
    }

    /// Runs one already-lowered program durably. Aborts become
    /// [`RunResult::Aborted`]; only storage failures are errors.
    pub fn run_program(&mut self, program: &Program) -> StoreResult<RunResult> {
        match self.db.execute(program) {
            Ok(outputs) => Ok(RunResult::Committed(outputs.queries)),
            Err(StoreError::TransactionAborted(reason)) => Ok(RunResult::Aborted(reason)),
            Err(other) => Err(other),
        }
    }
}

/// The durable database's schema extended with every materialized view's
/// schema — what script and SQL names resolve against.
fn catalog<S: Storage>(db: &DurableDb<S>) -> DatabaseSchema {
    let mut schema = db.database().schema().clone();
    for v in db.views().iter() {
        let _ = schema.add(RelationSchema::new(
            v.name().to_owned(),
            v.schema().as_ref().clone(),
        ));
    }
    schema
}

/// Parses, translates and durably runs one SQL statement. Returns the
/// result relation for queries, `None` for DML and
/// `CREATE MATERIALIZED VIEW`.
///
/// The durable analogue of [`mera_sql::run_sql`]: a committed DML
/// statement (or view definition) is in the WAL before this returns.
pub fn run_sql<S: Storage>(db: &mut DurableDb<S>, sql: &str) -> StoreResult<Option<Relation>> {
    let stmt = parse_sql(sql).map_err(StoreError::from)?;
    let translated = translate(&stmt, &catalog(db)).map_err(StoreError::from)?;
    let is_query = matches!(translated, Translated::Query(_));
    if let Translated::CreateView { name, expr } = translated {
        db.create_view(&name, expr)?;
        return Ok(None);
    }
    if let Translated::CreateTable { schema, keys } = translated {
        let name = schema.name.clone();
        db.add_relation(schema)?;
        for attrs in keys {
            db.declare_key(&name, &attrs)?;
        }
        return Ok(None);
    }
    let program = Program::single(translated.into_statement());
    let mut outputs = db.execute(&program)?;
    if is_query {
        Ok(Some(outputs.queries.remove(0)))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::StoreOptions;
    use crate::storage::MemStorage;

    fn open(storage: MemStorage) -> DurableDb<MemStorage> {
        DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default()).expect("open")
    }

    #[test]
    fn script_declarations_and_commits_survive_reopen() {
        let storage = MemStorage::new();
        let mut session = DurableSession::new(open(storage.clone()));
        let results = session
            .run_script(
                "relation beer (name: str, alcperc: int);\n\
                 begin insert(beer, values (str, int) {('Grolsch', 5)}); end\n\
                 begin ?project[%1](beer); end",
            )
            .expect("script runs");
        assert_eq!(results.len(), 2);
        assert!(matches!(results[0], RunResult::Committed(_)));
        let expected = session.database().clone();
        drop(session);

        let recovered = DurableSession::new(open(MemStorage::from_image(storage.image())));
        assert_eq!(recovered.database(), &expected);
        assert_eq!(
            recovered
                .database()
                .relation("beer")
                .expect("declared")
                .len(),
            1
        );
    }

    #[test]
    fn script_views_are_durable() {
        let storage = MemStorage::new();
        let mut session = DurableSession::new(open(storage.clone()));
        session
            .run_script(
                "relation sales (region: str, amount: int);\n\
                 view totals = groupby[(region), SUM, amount](sales);\n\
                 insert(sales, values (str, int) {('north', 10), ('south', 7)});\n\
                 ?totals;",
            )
            .expect("script runs");
        let expected = session.durable().view("totals").expect("view");
        assert_eq!(
            expected.multiplicity(&mera_core::tuple!["north", 10_i64]),
            1
        );
        drop(session);

        let recovered = DurableSession::new(open(MemStorage::from_image(storage.image())));
        assert_eq!(recovered.durable().view("totals").expect("view"), expected);
    }

    #[test]
    fn sql_views_are_durable() {
        let storage = MemStorage::new();
        let schema = DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[("name", DataType::Str), ("alcperc", DataType::Int)]),
            )
            .expect("fresh");
        let mut db =
            DurableDb::open(storage.clone(), schema, StoreOptions::default()).expect("open");
        run_sql(
            &mut db,
            "INSERT INTO beer VALUES ('Grolsch', 5), ('Bock', 7)",
        )
        .expect("dml");
        run_sql(
            &mut db,
            "CREATE MATERIALIZED VIEW strong AS SELECT name FROM beer WHERE alcperc > 6",
        )
        .expect("creates view");
        run_sql(&mut db, "INSERT INTO beer VALUES ('Tripel', 8)").expect("dml");
        let out = run_sql(&mut db, "SELECT * FROM strong")
            .expect("query")
            .expect("relation");
        assert_eq!(out.len(), 2);
        drop(db);

        let recovered = DurableDb::open(
            MemStorage::from_image(storage.image()),
            DatabaseSchema::new(),
            StoreOptions::default(),
        )
        .expect("recovers");
        assert_eq!(recovered.view("strong").expect("view").len(), 2);
    }

    #[test]
    fn stacked_views_are_durable_and_cascade_after_reopen() {
        let storage = MemStorage::new();
        let mut session = DurableSession::new(open(storage.clone()));
        // `strong` scans a base relation; `count_strong` scans `strong`
        session
            .run_script(
                "relation beer (name: str, alcperc: int);\n\
                 view strong = select[%2 > 5](beer);\n\
                 view count_strong = groupby[(), CNT, %1](strong);\n\
                 insert(beer, values (str, int) {('Grolsch', 5), ('Bock', 7)});",
            )
            .expect("script runs");
        assert_eq!(
            session
                .durable()
                .view("count_strong")
                .expect("view")
                .multiplicity(&mera_core::tuple![1_i64]),
            1
        );
        drop(session);

        // recovery rebuilds both layers in declaration order…
        let mut recovered = DurableSession::new(open(MemStorage::from_image(storage.image())));
        assert_eq!(
            recovered
                .durable()
                .view("count_strong")
                .expect("view")
                .multiplicity(&mera_core::tuple![1_i64]),
            1
        );
        // …and post-recovery writes still cascade through the stack
        recovered
            .run_script("insert(beer, values (str, int) {('Tripel', 8)});")
            .expect("script runs");
        assert_eq!(
            recovered
                .durable()
                .view("count_strong")
                .expect("view")
                .multiplicity(&mera_core::tuple![2_i64]),
            1
        );
    }

    #[test]
    fn sql_views_on_views_are_durable() {
        let storage = MemStorage::new();
        let mut db = open(storage.clone());
        run_sql(&mut db, "CREATE TABLE beer (name TEXT, alcperc INT)").expect("ddl");
        run_sql(
            &mut db,
            "INSERT INTO beer VALUES ('Grolsch', 5), ('Bock', 7), ('Tripel', 8)",
        )
        .expect("dml");
        run_sql(
            &mut db,
            "CREATE MATERIALIZED VIEW strong AS SELECT name, alcperc FROM beer WHERE alcperc > 6",
        )
        .expect("first view");
        run_sql(
            &mut db,
            "CREATE MATERIALIZED VIEW strongest AS SELECT name FROM strong WHERE alcperc > 7",
        )
        .expect("view on view");
        assert_eq!(db.view("strongest").expect("view").len(), 1);
        drop(db);

        let mut recovered = open(MemStorage::from_image(storage.image()));
        assert_eq!(recovered.view("strongest").expect("view").len(), 1);
        run_sql(&mut recovered, "INSERT INTO beer VALUES ('Quad', 10)").expect("dml");
        assert_eq!(recovered.view("strongest").expect("view").len(), 2);
    }

    #[test]
    fn script_keys_are_durable_and_enforced() {
        let storage = MemStorage::new();
        let mut session = DurableSession::new(open(storage.clone()));
        let results = session
            .run_script(
                "relation acct (id: int, owner: str);\n\
                 key acct (%1);\n\
                 begin insert(acct, values (int, str) {(1, 'ann')}); end\n\
                 begin insert(acct, values (int, str) {(1, 'bob')}); end",
            )
            .expect("script runs");
        assert!(matches!(results[0], RunResult::Committed(_)));
        assert!(
            matches!(results[1], RunResult::Aborted(_)),
            "duplicate key must abort: {:?}",
            results[1]
        );
        drop(session);

        let mut recovered = DurableSession::new(open(MemStorage::from_image(storage.image())));
        let results = recovered
            .run_script("begin insert(acct, values (int, str) {(1, 'eve')}); end")
            .expect("script runs");
        assert!(
            matches!(results[0], RunResult::Aborted(_)),
            "key declaration must survive reopen: {:?}",
            results[0]
        );
    }

    #[test]
    fn sql_unique_keys_are_durable_and_enforced() {
        let storage = MemStorage::new();
        let mut db = open(storage.clone());
        run_sql(
            &mut db,
            "CREATE TABLE member (id INT PRIMARY KEY, email TEXT UNIQUE)",
        )
        .expect("creates table");
        run_sql(&mut db, "INSERT INTO member VALUES (1, 'ann@x')").expect("dml");
        let err = run_sql(&mut db, "INSERT INTO member VALUES (2, 'ann@x')").unwrap_err();
        assert!(
            matches!(err, StoreError::TransactionAborted(_)),
            "UNIQUE violation must abort: {err}"
        );
        drop(db);

        let mut recovered = open(MemStorage::from_image(storage.image()));
        assert_eq!(recovered.database().relation("member").expect("t").len(), 1);
        let err = run_sql(&mut recovered, "INSERT INTO member VALUES (3, 'ann@x')").unwrap_err();
        assert!(
            matches!(err, StoreError::TransactionAborted(_)),
            "UNIQUE key must survive reopen: {err}"
        );
        run_sql(&mut recovered, "INSERT INTO member VALUES (3, 'bob@x')").expect("distinct ok");
    }

    #[test]
    fn sql_dml_is_durable_and_queries_read_it() {
        let storage = MemStorage::new();
        let schema = DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[("name", DataType::Str), ("alcperc", DataType::Int)]),
            )
            .expect("fresh");
        let mut db =
            DurableDb::open(storage.clone(), schema, StoreOptions::default()).expect("open");
        assert!(run_sql(&mut db, "INSERT INTO beer VALUES ('Grolsch', 5)")
            .expect("dml")
            .is_none());
        let out = run_sql(&mut db, "SELECT name FROM beer WHERE alcperc >= 5")
            .expect("query")
            .expect("relation");
        assert_eq!(out.len(), 1);
        let expected = db.database().clone();
        drop(db);

        let recovered = DurableDb::open(
            MemStorage::from_image(storage.image()),
            DatabaseSchema::new(),
            StoreOptions::default(),
        )
        .expect("recovers");
        assert_eq!(recovered.database(), &expected);
    }
}
