//! [`DurableDb`]: the transaction engine wired to a write-ahead log.
//!
//! The wrapper owns a [`Database`] plus a [`Storage`] backend holding two
//! files: the WAL (`mera.wal`) and the latest checkpoint snapshot
//! (`mera.snapshot`). The protocol is classical write-ahead logging
//! specialized to this engine's logical redo records:
//!
//! * **Commit** — run the transaction in memory against the current state;
//!   if it commits, append one [`WalRecord::Commit`] frame (logical time +
//!   the program as XRA text) and fsync *before* publishing the new state.
//!   A crash between append and publish re-applies the record at recovery;
//!   a crash before the append loses only an unacknowledged transaction.
//! * **Abort** — nothing is written. Aborts tick logical time in memory
//!   (the paper's transition semantics) but leave no durable trace;
//!   recovery re-derives the intervening ticks from the gap between
//!   consecutive commit times.
//! * **Checkpoint** — atomically replace the snapshot with the full
//!   current state, then reset the WAL to an empty header. Crashing
//!   between the two steps is safe: recovery skips WAL commits at or
//!   before the snapshot time.
//! * **Recovery** — load the snapshot (if any), scan the WAL, truncate the
//!   torn tail, then replay declarations and commits in order. Replay uses
//!   the same executor as the live path with static analysis disabled —
//!   the log records *committed* work, so re-checking it could only
//!   diverge.

use crate::error::{StoreError, StoreResult};
use crate::snapshot;
use crate::storage::Storage;
use crate::wal::{self, WalRecord};
use mera_core::prelude::*;
use mera_expr::RelExpr;
use mera_lang::{program_to_xra, rel_to_xra, Lowerer};
use mera_txn::{
    run_transaction_cataloged, CatalogStats, CommitCatalog, ConstraintSet, CreateViewError,
    ExecConfig, IndexSet, KeySet, Outcome, Outputs, Program, ViewSet,
};
use std::sync::Arc;

/// Name of the write-ahead log file inside a [`Storage`] root.
pub const WAL_FILE: &str = "mera.wal";

fn view_error(e: CreateViewError) -> StoreError {
    match e {
        CreateViewError::Error(c) => StoreError::Core(c),
        rejected => StoreError::Core(CoreError::TypeError(rejected.to_string())),
    }
}

/// Name of the checkpoint snapshot file inside a [`Storage`] root.
pub const SNAPSHOT_FILE: &str = "mera.snapshot";

/// When the WAL file is flushed to stable storage.
///
/// The policy trades commit latency against the window of acknowledged
/// transactions a crash can lose. It only affects real-file backends; the
/// in-memory fault-injecting backend treats every written byte as durable
/// so crash tests stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every commit record. No acknowledged commit is ever
    /// lost; slowest.
    Always,
    /// Fsync after every `n` commit records (group commit). A crash loses
    /// at most the last `n - 1` acknowledged commits.
    EveryN(u32),
    /// Never fsync the WAL from the commit path (the OS flushes when it
    /// pleases). Fastest; a crash may lose any commit since the last
    /// checkpoint.
    Never,
}

/// Configuration for a [`DurableDb`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// WAL flush policy.
    pub fsync: FsyncPolicy,
    /// Execution configuration for the live transaction path. Replay
    /// always runs with `analyze` off regardless of this setting.
    pub exec: ExecConfig,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
            exec: ExecConfig::default(),
        }
    }
}

/// A database whose committed history survives process death.
///
/// All mutation goes through [`execute`](DurableDb::execute) (transactions)
/// and [`add_relation`](DurableDb::add_relation) (DDL); both follow the
/// log-then-publish protocol described in the module docs.
pub struct DurableDb<S: Storage> {
    storage: S,
    db: Database,
    views: ViewSet,
    stats: Arc<CatalogStats>,
    indexes: Arc<IndexSet>,
    keys: Arc<KeySet>,
    options: StoreOptions,
    unsynced_appends: u32,
}

impl<S: Storage> std::fmt::Debug for DurableDb<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableDb")
            .field("time", &self.db.time())
            .field("relations", &self.db.schema().len())
            .field("fsync", &self.options.fsync)
            .finish_non_exhaustive()
    }
}

impl<S: Storage> DurableDb<S> {
    /// Opens (or creates) a durable database in `storage`.
    ///
    /// With no prior files this initializes a fresh database over
    /// `initial_schema` and writes one `Declare` record per relation, so
    /// the WAL alone reconstructs the catalog. With prior files it runs
    /// recovery: snapshot restore, torn-tail truncation, then replay.
    /// `initial_schema` is ignored when durable state exists — the files
    /// are the source of truth.
    pub fn open(
        mut storage: S,
        initial_schema: DatabaseSchema,
        options: StoreOptions,
    ) -> StoreResult<Self> {
        let snapshot_bytes = storage.read(SNAPSHOT_FILE)?;
        let wal_bytes = match storage.read(WAL_FILE)? {
            // A WAL shorter than its magic can only be a crash during
            // initial creation (every later state starts with the full
            // header): treat it as absent and re-create.
            Some(bytes)
                if bytes.len() < wal::WAL_MAGIC.len() && wal::WAL_MAGIC.starts_with(&bytes[..]) =>
            {
                None
            }
            other => other,
        };

        if snapshot_bytes.is_none() && wal_bytes.is_none() {
            // Fresh open: materialize the initial schema into the WAL,
            // atomically — a crash mid-creation leaves no live WAL file,
            // so the next open starts fresh again.
            let db = Database::new(initial_schema);
            let mut bytes = wal::empty_wal();
            let mut names: Vec<&str> = db.relation_names().collect();
            names.sort_unstable();
            for name in names {
                let record = WalRecord::Declare {
                    name: name.to_string(),
                    schema: db.relation(name)?.schema().as_ref().clone(),
                };
                bytes.extend_from_slice(&record.encode_frame());
            }
            storage.replace_atomic(WAL_FILE, &bytes)?;
            let stats = Arc::new(CatalogStats::from_database(&db)?);
            return Ok(DurableDb {
                storage,
                db,
                views: ViewSet::new(),
                stats,
                indexes: Arc::new(IndexSet::new()),
                keys: Arc::new(KeySet::new()),
                options,
                unsynced_appends: 0,
            });
        }

        let mut db = match snapshot_bytes {
            Some(bytes) => snapshot::decode(&bytes)?,
            None => Database::new(DatabaseSchema::new()),
        };
        let snapshot_time = db.time();
        let mut views = ViewSet::new();
        // the snapshot carries relations only: statistics restart from a
        // full analyze of the restored state, then replay folds each
        // commit's deltas exactly like the live path did
        let mut stats = Arc::new(CatalogStats::from_database(&db)?);
        let mut indexes = Arc::new(IndexSet::new());
        let mut keys = Arc::new(KeySet::new());

        match wal_bytes {
            None => {
                // A snapshot with no (or torn-at-creation) WAL: start a
                // fresh log. `replace_atomic` also clears any partial
                // header bytes left by the crash.
                storage.replace_atomic(WAL_FILE, &wal::empty_wal())?;
            }
            Some(bytes) => {
                let scanned = wal::scan(&bytes)?;
                if scanned.valid_len < bytes.len() as u64 {
                    // Torn tail from a crash mid-append: drop it so the
                    // next append starts at a frame boundary.
                    storage.truncate(WAL_FILE, scanned.valid_len)?;
                    storage.sync(WAL_FILE)?;
                }
                for record in scanned.records {
                    Self::replay(
                        &mut db,
                        &mut views,
                        &mut stats,
                        &mut indexes,
                        &mut keys,
                        record,
                        snapshot_time,
                        options.exec,
                    )?;
                }
            }
        }

        Ok(DurableDb {
            storage,
            db,
            views,
            stats,
            indexes,
            keys,
            options,
            unsynced_appends: 0,
        })
    }

    /// Applies one recovered WAL record to the rebuilding state.
    ///
    /// Commits replay through the same view-maintaining executor as the
    /// live path, so a recovered view's contents are derived exactly the
    /// way they were the first time around.
    #[allow(clippy::too_many_arguments)]
    fn replay(
        db: &mut Database,
        views: &mut ViewSet,
        stats: &mut Arc<CatalogStats>,
        indexes: &mut Arc<IndexSet>,
        keys: &mut Arc<KeySet>,
        record: WalRecord,
        snapshot_time: u64,
        exec: ExecConfig,
    ) -> StoreResult<()> {
        match record {
            WalRecord::Declare { name, schema } => {
                // Declarations covered by the snapshot re-appear in the
                // WAL; identical re-declarations are no-ops, conflicting
                // ones mean the log belongs to a different database.
                if let Ok(schema_ref) = db.schema().get(&name) {
                    if schema_ref.as_ref() == &schema {
                        return Ok(());
                    }
                    return Err(StoreError::CorruptWal(format!(
                        "declaration of '{name}' conflicts with the recovered schema"
                    )));
                }
                db.add_relation(RelationSchema::new(name, schema))?;
                Ok(())
            }
            WalRecord::DeclareView { name, text } => {
                let expr = Self::parse_rel_text(db, views, &text)?;
                views
                    .create(&name, expr, db, exec)
                    .map_err(view_error)
                    .map(|_| ())
            }
            WalRecord::DeclareIndex { relation, keys } => {
                // only the definition is durable: entries are rebuilt from
                // the recovered relation, then delta-maintained by the
                // commits replayed after this record
                Arc::make_mut(indexes).create(db, &relation, &keys)?;
                Ok(())
            }
            WalRecord::DeclareKey { relation, attrs } => {
                // only the definition is durable: the multiplicity counts
                // rebuild from the recovered relation. The record was
                // logged after a successful declaration, and every commit
                // after it was enforced, so a violation here means the log
                // belongs to a different history.
                match Arc::make_mut(keys).declare(db, &relation, &attrs)? {
                    Ok(()) => Ok(()),
                    Err(v) => Err(StoreError::CorruptWal(format!(
                        "recovered data violates the logged key declaration: {v}"
                    ))),
                }
            }
            WalRecord::Commit { time, text } => {
                if time <= snapshot_time {
                    // Already folded into the snapshot.
                    return Ok(());
                }
                let replay_err = |reason: String| StoreError::ReplayFailed { time, reason };
                let program =
                    Self::parse_text(db, views, &text).map_err(|e| replay_err(e.to_string()))?;
                // Aborted attempts tick logical time but are never
                // logged; bridge the gap so the replayed commit lands at
                // exactly the time the record carries.
                db.advance_time_to(time.saturating_sub(1))?;
                let mut config = exec;
                config.analyze = false; // the log holds *committed* work
                let (next, outcome) = run_transaction_cataloged(
                    db,
                    CommitCatalog {
                        views: Some(views),
                        stats: Some(stats),
                        indexes: Some(indexes),
                        keys: Some(keys),
                    },
                    &program,
                    config,
                    None,
                    &ConstraintSet::new(),
                );
                match outcome {
                    Outcome::Committed(_) => {
                        debug_assert_eq!(next.time(), time);
                        *db = next;
                        Ok(())
                    }
                    Outcome::Aborted(reason) => Err(replay_err(reason.to_string())),
                }
            }
        }
    }

    /// The schema extended with every view's schema — what logged program
    /// text resolves names against.
    fn catalog(db: &Database, views: &ViewSet) -> DatabaseSchema {
        let mut schema = db.schema().clone();
        for v in views.iter() {
            let _ = schema.add(RelationSchema::new(
                v.name().to_owned(),
                v.schema().as_ref().clone(),
            ));
        }
        schema
    }

    /// Parses and lowers a logged program text against the current schema.
    fn parse_text(db: &Database, views: &ViewSet, text: &str) -> StoreResult<Program> {
        if text.is_empty() {
            return Ok(Program::new());
        }
        let parsed = mera_lang::parse_program(text)?;
        let catalog = Self::catalog(db, views);
        let mut lowerer = Lowerer::new(&catalog);
        Ok(lowerer.lower_program(&parsed)?)
    }

    /// Parses and lowers a logged view-definition text.
    fn parse_rel_text(db: &Database, views: &ViewSet, text: &str) -> StoreResult<RelExpr> {
        let parsed = mera_lang::parse_rel(text)?;
        let catalog = Self::catalog(db, views);
        let lowerer = Lowerer::new(&catalog);
        Ok(lowerer.lower_rel(&parsed)?)
    }

    /// Runs one transaction with durable commit, without integrity
    /// constraints.
    pub fn execute(&mut self, program: &Program) -> StoreResult<Outputs> {
        self.execute_checked(program, &ConstraintSet::new())
    }

    /// Runs one transaction with durable commit and commit-time integrity
    /// enforcement.
    ///
    /// On commit, the redo record is appended (and flushed, per the fsync
    /// policy) *before* the new state is published; an I/O failure leaves
    /// the in-memory state unchanged. On abort nothing is written and the
    /// error carries the abort reason.
    pub fn execute_checked(
        &mut self,
        program: &Program,
        constraints: &ConstraintSet,
    ) -> StoreResult<Outputs> {
        let (next, outcome) = run_transaction_cataloged(
            &self.db,
            CommitCatalog {
                views: Some(&mut self.views),
                stats: Some(&mut self.stats),
                indexes: Some(&mut self.indexes),
                keys: Some(&mut self.keys),
            },
            program,
            self.options.exec,
            None,
            constraints,
        );
        match outcome {
            Outcome::Committed(outputs) => {
                let record = WalRecord::Commit {
                    time: next.time(),
                    text: program_to_xra(program),
                };
                let logged = self
                    .storage
                    .append(WAL_FILE, &record.encode_frame())
                    .and_then(|()| self.maybe_sync());
                if let Err(e) = logged {
                    // The catalog was refreshed for a commit that never
                    // became durable: restore it to the published state.
                    let _ = self.views.rebuild(&self.db, self.options.exec);
                    if let Ok(fresh) = CatalogStats::from_database(&self.db) {
                        self.stats = Arc::new(fresh);
                    }
                    let _ = Arc::make_mut(&mut self.indexes).rebuild(&self.db);
                    let _ = Arc::make_mut(&mut self.keys).rebuild(&self.db);
                    return Err(e);
                }
                self.db = next;
                Ok(outputs)
            }
            Outcome::Aborted(reason) => {
                // The aborted attempt is a transition (time ticks) but it
                // is not durable history; recovery re-derives the tick.
                Arc::make_mut(&mut self.stats).set_as_of(next.time());
                self.db = next;
                Err(StoreError::TransactionAborted(reason.to_string()))
            }
        }
    }

    /// Declares a new relation, durably.
    ///
    /// The `Declare` record is logged (and flushed) before the schema
    /// change is published, mirroring the commit path.
    pub fn add_relation(&mut self, rs: RelationSchema) -> StoreResult<()> {
        let mut probe = self.db.clone();
        probe.add_relation(RelationSchema::new(
            rs.name.clone(),
            rs.schema.as_ref().clone(),
        ))?;
        let record = WalRecord::Declare {
            name: rs.name,
            schema: rs.schema.as_ref().clone(),
        };
        self.storage.append(WAL_FILE, &record.encode_frame())?;
        self.storage.sync(WAL_FILE)?;
        self.db = probe;
        Ok(())
    }

    /// Creates a materialized view, durably.
    ///
    /// The definition is validated and evaluated first (rejections leave
    /// no trace); the `DeclareView` record is logged (and flushed) before
    /// the view is published. Recovery rebuilds the view's contents by
    /// replaying the log through the same view-maintaining executor.
    pub fn create_view(&mut self, name: &str, expr: RelExpr) -> StoreResult<SchemaRef> {
        let text = rel_to_xra(&expr);
        let mut probe = self.views.clone();
        let schema = probe
            .create(name, expr, &self.db, self.options.exec)
            .map_err(view_error)?;
        let record = WalRecord::DeclareView {
            name: name.to_owned(),
            text,
        };
        self.storage.append(WAL_FILE, &record.encode_frame())?;
        self.storage.sync(WAL_FILE)?;
        self.views = probe;
        Ok(schema)
    }

    /// Creates a secondary index, durably.
    ///
    /// The index is built first (failures leave no trace); the
    /// `DeclareIndex` record is logged (and flushed) before the index is
    /// published. Only the definition is durable — recovery rebuilds the
    /// entries from the recovered relation and then maintains them from
    /// each replayed commit's deltas, exactly like the live path.
    pub fn create_index(&mut self, relation: &str, keys: &[usize]) -> StoreResult<()> {
        let mut probe = Arc::clone(&self.indexes);
        Arc::make_mut(&mut probe).create(&self.db, relation, keys)?;
        let record = WalRecord::DeclareIndex {
            relation: relation.to_owned(),
            keys: keys.to_vec(),
        };
        self.storage.append(WAL_FILE, &record.encode_frame())?;
        self.storage.sync(WAL_FILE)?;
        self.indexes = probe;
        Ok(())
    }

    /// Declares a key constraint, durably.
    ///
    /// The existing data is validated first (a violating relation refuses
    /// the declaration and leaves no trace); the `DeclareKey` record is
    /// logged (and flushed) before the constraint is published. Only the
    /// definition is durable — recovery rebuilds the per-key-point counts
    /// from the recovered relation.
    pub fn declare_key(&mut self, relation: &str, attrs: &[usize]) -> StoreResult<()> {
        let mut probe = Arc::clone(&self.keys);
        match Arc::make_mut(&mut probe).declare(&self.db, relation, attrs)? {
            Ok(()) => {}
            Err(v) => return Err(StoreError::Core(CoreError::TypeError(v.to_string()))),
        }
        let record = WalRecord::DeclareKey {
            relation: relation.to_owned(),
            attrs: attrs.to_vec(),
        };
        self.storage.append(WAL_FILE, &record.encode_frame())?;
        self.storage.sync(WAL_FILE)?;
        self.keys = probe;
        Ok(())
    }

    /// The materialized views, incrementally maintained by every commit.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// The catalog statistics, incrementally maintained by every commit.
    pub fn stats(&self) -> Arc<CatalogStats> {
        Arc::clone(&self.stats)
    }

    /// The secondary indexes, incrementally maintained by every commit.
    pub fn indexes(&self) -> Arc<IndexSet> {
        Arc::clone(&self.indexes)
    }

    /// The definitions of every declared index, `(relation, keys)` pairs.
    pub fn index_definitions(&self) -> Vec<(String, Vec<usize>)> {
        self.indexes.definitions()
    }

    /// The key constraints, incrementally maintained by every commit.
    pub fn keys(&self) -> Arc<KeySet> {
        Arc::clone(&self.keys)
    }

    /// The definitions of every declared key, `(relation, attrs)` pairs.
    pub fn key_definitions(&self) -> Vec<(String, Vec<usize>)> {
        self.keys.definitions()
    }

    /// A snapshot of one materialized view's current contents.
    pub fn view(&self, name: &str) -> CoreResult<Relation> {
        self.views
            .get(name)
            .map(|v| v.data().as_ref().clone())
            .ok_or_else(|| CoreError::UnknownRelation(name.to_owned()))
    }

    /// Writes a checkpoint: snapshot the full state atomically, then reset
    /// the WAL to an empty header.
    ///
    /// After a checkpoint, recovery restores the snapshot directly instead
    /// of replaying history, and the log stops growing. A crash anywhere
    /// inside this method is safe — the snapshot swap is atomic, and a
    /// stale WAL alongside a fresh snapshot only contains records the
    /// snapshot time filter skips.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        let bytes = snapshot::encode(&self.db);
        self.storage.replace_atomic(SNAPSHOT_FILE, &bytes)?;
        // The snapshot holds relations, not views: re-seed the fresh WAL
        // with one DeclareView record per view (in creation order, so
        // views over views rebuild in dependency order) to keep the pair
        // of files self-contained.
        let mut wal_bytes = wal::empty_wal();
        for v in self.views.iter() {
            let record = WalRecord::DeclareView {
                name: v.name().to_owned(),
                text: rel_to_xra(v.expr()),
            };
            wal_bytes.extend_from_slice(&record.encode_frame());
        }
        // Indexes likewise live only as definitions: one DeclareIndex
        // record each, rebuilt from the snapshot's relations at recovery.
        for (relation, keys) in self.indexes.definitions() {
            let record = WalRecord::DeclareIndex { relation, keys };
            wal_bytes.extend_from_slice(&record.encode_frame());
        }
        // Key constraints too: one DeclareKey record each, their counts
        // rebuilt from the snapshot's relations at recovery.
        for (relation, attrs) in self.keys.definitions() {
            let record = WalRecord::DeclareKey { relation, attrs };
            wal_bytes.extend_from_slice(&record.encode_frame());
        }
        self.storage.replace_atomic(WAL_FILE, &wal_bytes)?;
        self.unsynced_appends = 0;
        Ok(())
    }

    fn maybe_sync(&mut self) -> StoreResult<()> {
        match self.options.fsync {
            FsyncPolicy::Always => self.storage.sync(WAL_FILE),
            FsyncPolicy::EveryN(n) => {
                self.unsynced_appends += 1;
                if self.unsynced_appends >= n.max(1) {
                    self.unsynced_appends = 0;
                    self.storage.sync(WAL_FILE)
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// The current in-memory state (committed plus aborted-tick history).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The store options this database was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// Borrows the storage backend (tests inspect fault counters through
    /// this).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Consumes the wrapper, returning the storage backend.
    pub fn into_storage(self) -> S {
        self.storage
    }

    /// Decomposes the wrapper into its recovered state — the entry point
    /// for the concurrent front ([`crate::ConcurrentDb`]), which seeds an
    /// MVCC version chain from exactly what serial recovery produced.
    pub fn into_parts(self) -> DurableParts<S> {
        DurableParts {
            storage: self.storage,
            db: self.db,
            views: self.views,
            stats: self.stats,
            indexes: self.indexes,
            keys: self.keys,
            options: self.options,
        }
    }
}

/// The decomposed state of a [`DurableDb`]: everything recovery rebuilt,
/// plus the storage backend whose WAL tail is already truncated to a
/// frame boundary.
pub struct DurableParts<S> {
    /// The storage backend (WAL positioned at a clean frame boundary).
    pub storage: S,
    /// The recovered base relations.
    pub db: Database,
    /// The recovered materialized views.
    pub views: ViewSet,
    /// The recovered table statistics.
    pub stats: Arc<CatalogStats>,
    /// The recovered secondary indexes.
    pub indexes: Arc<IndexSet>,
    /// The recovered key constraints.
    pub keys: Arc<KeySet>,
    /// The options the database was opened with.
    pub options: StoreOptions,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "accounts",
                Schema::named(&[("owner", DataType::Str), ("balance", DataType::Int)]),
            )
            .expect("fresh schema")
    }

    fn open_mem(storage: MemStorage) -> DurableDb<MemStorage> {
        DurableDb::open(storage, schema(), StoreOptions::default()).expect("open")
    }

    fn insert_program(db: &Database, owner: &str, balance: i64) -> Program {
        let text = format!("insert(accounts, values (str, int) {{('{owner}', {balance})}})");
        DurableDb::<MemStorage>::parse_text(db, &ViewSet::new(), &text).expect("valid program")
    }

    #[test]
    fn commit_then_reopen_recovers_state() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("commits");
        let expected = durable.database().clone();
        drop(durable);

        let recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(recovered.database(), &expected);
    }

    #[test]
    fn abort_writes_nothing_and_still_ticks_time() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("insert commits");
        let t0 = durable.database().time();
        let before_units = storage.units_written();

        // Division by zero over a non-empty relation aborts the
        // transaction (statically or at runtime — either way, Aborted).
        let bad = DurableDb::<MemStorage>::parse_text(
            durable.database(),
            &ViewSet::new(),
            "?project[(%2 / 0)](accounts)",
        )
        .expect("parses and lowers");
        let err = durable.execute(&bad).expect_err("aborts");
        assert!(matches!(err, StoreError::TransactionAborted(_)));
        assert_eq!(durable.database().time(), t0 + 1, "aborts tick time");
        assert_eq!(
            storage.units_written(),
            before_units,
            "aborts leave no durable trace"
        );

        // The aborted tick is not durable history: recovery lands on the
        // last committed time.
        let recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(recovered.database().time(), t0);
    }

    #[test]
    fn duplicate_declaration_fails_before_logging() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let before_units = storage.units_written();
        let err = durable
            .add_relation(RelationSchema::new(
                "accounts",
                Schema::anon(&[DataType::Int]),
            ))
            .expect_err("duplicate relation");
        assert!(matches!(err, StoreError::Core(_)));
        assert_eq!(storage.units_written(), before_units);
    }

    #[test]
    fn checkpoint_resets_wal_and_recovery_uses_snapshot() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        for (owner, amount) in [("ann", 10_i64), ("bob", 20), ("cho", 30)] {
            let p = insert_program(durable.database(), owner, amount);
            durable.execute(&p).expect("commits");
        }
        durable.checkpoint().expect("checkpoint");
        let expected = durable.database().clone();
        drop(durable);

        let image = storage.image();
        let wal = image.get(WAL_FILE).expect("wal exists");
        assert_eq!(wal.as_slice(), wal::empty_wal().as_slice(), "wal reset");
        assert!(image.contains_key(SNAPSHOT_FILE));

        let recovered = open_mem(MemStorage::from_image(image));
        assert_eq!(recovered.database(), &expected);
    }

    #[test]
    fn declares_after_checkpoint_survive() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        durable.checkpoint().expect("checkpoint");
        durable
            .add_relation(RelationSchema::new(
                "audit",
                Schema::named(&[("note", DataType::Str)]),
            ))
            .expect("declare");
        let p = DurableDb::<MemStorage>::parse_text(
            durable.database(),
            &ViewSet::new(),
            "insert(audit, values (str) {('hello')})",
        )
        .unwrap();
        durable.execute(&p).expect("commits");
        let expected = durable.database().clone();
        drop(durable);

        let recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(recovered.database(), &expected);
    }

    fn totals_expr(db: &Database) -> mera_expr::RelExpr {
        DurableDb::<MemStorage>::parse_rel_text(
            db,
            &ViewSet::new(),
            "groupby[(%1), SUM, %2](accounts)",
        )
        .expect("lowers")
    }

    #[test]
    fn views_survive_reopen_and_keep_refreshing() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("commits");
        let expr = totals_expr(durable.database());
        durable.create_view("totals", expr).expect("creates view");
        let p = insert_program(durable.database(), "ann", 5);
        durable.execute(&p).expect("commits");
        let expected = durable.view("totals").expect("view exists");
        assert_eq!(expected.multiplicity(&mera_core::tuple!["ann", 15_i64]), 1);
        drop(durable);

        let mut recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(recovered.view("totals").expect("recovered"), expected);
        // and the recovered view keeps refreshing on new commits
        let p = insert_program(recovered.database(), "bob", 7);
        recovered.execute(&p).expect("commits");
        let after = recovered.view("totals").expect("view");
        assert_eq!(after.multiplicity(&mera_core::tuple!["bob", 7_i64]), 1);
    }

    #[test]
    fn checkpoint_reseeds_view_declarations() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("commits");
        let expr = totals_expr(durable.database());
        durable.create_view("totals", expr).expect("creates view");
        durable.checkpoint().expect("checkpoint");
        let p = insert_program(durable.database(), "cho", 3);
        durable.execute(&p).expect("commits");
        let expected = durable.view("totals").expect("view");
        drop(durable);

        let recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(recovered.view("totals").expect("recovered"), expected);
    }

    #[test]
    fn rejected_view_definitions_leave_no_durable_trace() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let before_units = storage.units_written();
        let avg = DurableDb::<MemStorage>::parse_rel_text(
            durable.database(),
            &ViewSet::new(),
            "groupby[(), AVG, %2](accounts)",
        )
        .expect("lowers");
        let err = durable.create_view("avg", avg).expect_err("partial view");
        assert!(err.to_string().contains("E0303"), "{err}");
        assert_eq!(storage.units_written(), before_units);
        assert!(durable.views().is_empty());
    }

    #[test]
    fn indexes_survive_reopen_and_keep_maintaining() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("commits");
        durable.create_index("accounts", &[1]).expect("creates");
        let p = insert_program(durable.database(), "bob", 20);
        durable.execute(&p).expect("commits");
        drop(durable);

        let mut recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(
            recovered.index_definitions(),
            vec![("accounts".to_string(), vec![1])]
        );
        let ix = recovered.indexes();
        let index = ix.find("accounts", &[1]).expect("recovered index");
        assert_eq!(index.len(), 2);
        // and the recovered index keeps maintaining on new commits
        let p = insert_program(recovered.database(), "cho", 30);
        recovered.execute(&p).expect("commits");
        let ix = recovered.indexes();
        let index = ix.find("accounts", &[1]).expect("index");
        assert_eq!(index.len(), 3);
        let fresh =
            mera_txn::HashIndex::build(recovered.database().relation("accounts").unwrap(), &[1])
                .expect("builds");
        let key = mera_core::tuple!["cho"];
        assert_eq!(index.lookup(&key).unwrap(), fresh.lookup(&key).unwrap());
    }

    #[test]
    fn checkpoint_reseeds_index_declarations() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("commits");
        durable.create_index("accounts", &[1]).expect("creates");
        durable.checkpoint().expect("checkpoint");
        let p = insert_program(durable.database(), "bob", 20);
        durable.execute(&p).expect("commits");
        drop(durable);

        let recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(
            recovered.index_definitions(),
            vec![("accounts".to_string(), vec![1])]
        );
        let ix = recovered.indexes();
        let index = ix.find("accounts", &[1]).expect("recovered index");
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn keys_survive_reopen_and_keep_enforcing() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("commits");
        durable.declare_key("accounts", &[1]).expect("declares");
        drop(durable);

        let mut recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(
            recovered.key_definitions(),
            vec![("accounts".to_string(), vec![1])]
        );
        // the recovered constraint keeps enforcing: a duplicate owner
        // aborts, a fresh owner commits
        let p = insert_program(recovered.database(), "ann", 99);
        let err = recovered.execute(&p).expect_err("key violation aborts");
        assert!(err.to_string().contains("accounts"), "{err}");
        let p = insert_program(recovered.database(), "bob", 20);
        recovered.execute(&p).expect("commits");
    }

    #[test]
    fn checkpoint_reseeds_key_declarations() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let p = insert_program(durable.database(), "ann", 10);
        durable.execute(&p).expect("commits");
        durable.declare_key("accounts", &[1]).expect("declares");
        durable.checkpoint().expect("checkpoint");
        let p = insert_program(durable.database(), "bob", 20);
        durable.execute(&p).expect("commits");
        drop(durable);

        let mut recovered = open_mem(MemStorage::from_image(storage.image()));
        assert_eq!(
            recovered.key_definitions(),
            vec![("accounts".to_string(), vec![1])]
        );
        let p = insert_program(recovered.database(), "bob", 5);
        assert!(recovered.execute(&p).is_err(), "key still enforced");
    }

    #[test]
    fn violating_key_declaration_leaves_no_durable_trace() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        for (owner, amount) in [("ann", 10_i64), ("ann", 20)] {
            let p = insert_program(durable.database(), owner, amount);
            durable.execute(&p).expect("commits");
        }
        let before_units = storage.units_written();
        let err = durable
            .declare_key("accounts", &[1])
            .expect_err("existing data violates the key");
        assert!(err.to_string().contains("ann"), "{err}");
        assert_eq!(storage.units_written(), before_units);
        assert!(durable.key_definitions().is_empty());
        // the wider key over both columns installs fine
        durable.declare_key("accounts", &[1, 2]).expect("declares");
    }

    #[test]
    fn recovered_stats_match_live_stats() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        for (owner, amount) in [("ann", 10_i64), ("bob", 20), ("cho", 30)] {
            let p = insert_program(durable.database(), owner, amount);
            durable.execute(&p).expect("commits");
        }
        let live = durable.stats();
        drop(durable);

        let recovered = open_mem(MemStorage::from_image(storage.image()));
        let stats = recovered.stats();
        assert!(stats.is_current(recovered.database()));
        let live_t = live.get("accounts").expect("live entry");
        let rec_t = stats.get("accounts").expect("recovered entry");
        assert_eq!(rec_t.rows, live_t.rows);
        assert_eq!(rec_t.distinct_rows, live_t.distinct_rows);
        assert_eq!(rec_t.column_distinct(1), live_t.column_distinct(1));
    }

    #[test]
    fn io_failure_on_commit_leaves_memory_unchanged() {
        let storage = MemStorage::new();
        let mut durable = open_mem(storage.clone());
        let before = durable.database().clone();
        storage.set_budget(0);
        let p = insert_program(durable.database(), "ann", 10);
        let err = durable.execute(&p).expect_err("storage is dead");
        assert_eq!(err, StoreError::Crashed);
        assert_eq!(durable.database(), &before);
    }
}
