//! Checkpoint snapshots: a full [`Database`] image at one logical time.
//!
//! # File layout
//!
//! ```text
//! +-----------------+  8 bytes  magic "MERASNP1"
//! | header          |
//! +-----------------+
//! | u32le body_len  |
//! | u32le crc32     |  over the body bytes
//! +-----------------+
//! | body            |  version, logical time, relations
//! +-----------------+
//! ```
//!
//! Body: `u8` version, `u64le` logical time, `u32le` relation count, then
//! per relation (in name order, so equal databases produce identical
//! bytes): name, schema, `u64le` distinct-tuple count, and per distinct
//! tuple its multiplicity (`u64le`) followed by the attribute values in
//! schema order. Interned strings are resolved to their text — a snapshot
//! must not depend on any process-local interner state.
//!
//! Snapshots are written via [`Storage::replace_atomic`], so a crash
//! during checkpointing leaves the previous snapshot (or none) intact;
//! there is never a half-written snapshot under the live name. Because a
//! snapshot captures the database *at* its logical time, the WAL can be
//! truncated to empty immediately after the rename commits.
//!
//! [`Storage::replace_atomic`]: crate::storage::Storage::replace_atomic

use crate::codec::{self, Reader};
use crate::crc::crc32;
use crate::error::{StoreError, StoreResult};
use mera_core::prelude::*;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MERASNP1";

/// Format version written into the snapshot body.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Serializes a database into snapshot bytes.
pub fn encode(db: &Database) -> Vec<u8> {
    let mut body = vec![SNAPSHOT_VERSION];
    body.extend_from_slice(&db.time().to_le_bytes());

    let mut names: Vec<&str> = db.relation_names().collect();
    names.sort_unstable();
    body.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for name in names {
        let rel = db.relation(name).expect("name came from the database");
        codec::put_str(&mut body, name);
        codec::put_schema(&mut body, rel.schema());
        let pairs = rel.sorted_pairs();
        body.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
        for (tuple, count) in pairs {
            body.extend_from_slice(&count.to_le_bytes());
            for v in tuple.values() {
                codec::put_value(&mut body, v);
            }
        }
    }

    let mut out = SNAPSHOT_MAGIC.to_vec();
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Reconstructs a database from snapshot bytes.
pub fn decode(bytes: &[u8]) -> StoreResult<Database> {
    let corrupt = |msg: String| StoreError::CorruptSnapshot(msg);
    let bad = |e: codec::DecodeError| StoreError::CorruptSnapshot(e.0);

    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt("missing MERASNP1 header".to_string()));
    }
    let rest = &bytes[SNAPSHOT_MAGIC.len()..];
    if rest.len() < 8 {
        return Err(corrupt("truncated snapshot header".to_string()));
    }
    let body_len = u32::from_le_bytes(rest[..4].try_into().expect("len 4")) as usize;
    let stored_crc = u32::from_le_bytes(rest[4..8].try_into().expect("len 4"));
    if rest.len() < 8 + body_len {
        return Err(corrupt(format!(
            "snapshot body truncated: header promises {body_len} bytes, file has {}",
            rest.len() - 8
        )));
    }
    let body = &rest[8..8 + body_len];
    if crc32(body) != stored_crc {
        return Err(corrupt("snapshot checksum mismatch".to_string()));
    }

    let mut r = Reader::new(body);
    let version = r.u8().map_err(bad)?;
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!(
            "unknown snapshot version {version} (this build reads v{SNAPSHOT_VERSION})"
        )));
    }
    let time = r.u64().map_err(bad)?;
    let rel_count = r.u32().map_err(bad)? as usize;

    let mut schema = DatabaseSchema::new();
    let mut relations = Vec::with_capacity(rel_count);
    for _ in 0..rel_count {
        let name = r.str().map_err(bad)?;
        let rel_schema = codec::read_schema(&mut r).map_err(bad)?;
        let rs = RelationSchema::new(name.clone(), rel_schema);
        let schema_ref = rs.schema.clone();
        schema.add(rs)?;

        let distinct = r.u64().map_err(bad)? as usize;
        let mut pairs = Vec::with_capacity(distinct);
        for _ in 0..distinct {
            let count = r.u64().map_err(bad)?;
            let mut values = Vec::with_capacity(schema_ref.arity());
            for attr in schema_ref.attributes() {
                values.push(codec::read_value(&mut r, attr.dtype).map_err(bad)?);
            }
            pairs.push((Tuple::new(values), count));
        }
        relations.push((name, Relation::from_counted(schema_ref, pairs)?));
    }
    if !r.is_exhausted() {
        return Err(corrupt(format!(
            "{} trailing bytes after snapshot body",
            r.remaining()
        )));
    }

    Ok(Database::from_parts(schema, relations, time)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;

    fn sample_db() -> Database {
        let schema = DatabaseSchema::new()
            .with(
                "accounts",
                Schema::named(&[("owner", DataType::Str), ("balance", DataType::Int)]),
            )
            .unwrap()
            .with("flags", Schema::anon(&[DataType::Bool]))
            .unwrap();
        let mut db = Database::new(schema);
        db.update_with("accounts", |rel| {
            let mut next = rel.clone();
            next.insert(tuple!["ann", 10_i64], 2)?;
            next.insert(tuple!["bob", -3_i64], 1)?;
            Ok(next)
        })
        .unwrap();
        db.tick();
        db.tick();
        db
    }

    #[test]
    fn snapshot_roundtrips_database() {
        let db = sample_db();
        let bytes = encode(&db);
        let back = decode(&bytes).expect("intact snapshot");
        assert_eq!(back, db);
        assert_eq!(back.time(), db.time());
    }

    #[test]
    fn encoding_is_deterministic() {
        let db = sample_db();
        assert_eq!(encode(&db), encode(&db));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode(&sample_db());
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode(&bytes[..cut]), Err(StoreError::CorruptSnapshot(_))),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let base = encode(&sample_db());
        for i in 0..base.len() {
            let mut bytes = base.clone();
            bytes[i] ^= 0x01;
            assert!(
                decode(&bytes).is_err(),
                "flip at byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn empty_database_snapshots_fine() {
        let db = Database::new(DatabaseSchema::new());
        let back = decode(&encode(&db)).unwrap();
        assert_eq!(back, db);
    }
}
