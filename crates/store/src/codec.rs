//! Little-endian byte codec shared by the WAL and snapshot formats.
//!
//! Fixed-width integers are little-endian; strings are `u32` length +
//! UTF-8 bytes; schemas are arity-prefixed attribute lists. Decoding never
//! panics: every read is bounds-checked and surfaces a rendered reason,
//! which the callers wrap into [`CorruptWal`](crate::StoreError::CorruptWal)
//! or [`CorruptSnapshot`](crate::StoreError::CorruptSnapshot).

use mera_core::prelude::*;

/// A decode failure with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl DecodeError {
    fn new(msg: impl Into<String>) -> Self {
        DecodeError(msg.into())
    }
}

/// Result alias for decoding.
pub type DecodeResult<T> = Result<T, DecodeError>;

/// A bounds-checked reader over a byte slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::new(format!(
                "unexpected end of input: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("len 2"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("len 4"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("len 8"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(
            self.bytes(8)?.try_into().expect("len 8"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> DecodeResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new("string is not valid UTF-8"))
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// The on-disk tag of a [`DataType`].
pub fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Real => 2,
        DataType::Str => 3,
        DataType::Date => 4,
        DataType::Time => 5,
        DataType::Money => 6,
    }
}

/// Decodes a [`DataType`] tag.
pub fn dtype_of_tag(tag: u8) -> DecodeResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Real,
        3 => DataType::Str,
        4 => DataType::Date,
        5 => DataType::Time,
        6 => DataType::Money,
        other => return Err(DecodeError::new(format!("unknown data-type tag {other}"))),
    })
}

/// Encodes a schema: `u16` arity, then per attribute a named flag (with
/// the name when set) and the domain tag.
pub fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.extend_from_slice(&(schema.arity() as u16).to_le_bytes());
    for attr in schema.attributes() {
        match &attr.name {
            Some(name) => {
                out.push(1);
                put_str(out, name);
            }
            None => out.push(0),
        }
        out.push(dtype_tag(attr.dtype));
    }
}

/// Decodes a schema written by [`put_schema`].
pub fn read_schema(r: &mut Reader<'_>) -> DecodeResult<Schema> {
    let arity = r.u16()? as usize;
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            other => return Err(DecodeError::new(format!("bad named flag {other}"))),
        };
        let dtype = dtype_of_tag(r.u8()?)?;
        attrs.push(match name {
            Some(n) => Attribute::named(n, dtype),
            None => Attribute::anon(dtype),
        });
    }
    Ok(Schema::new(attrs))
}

/// Encodes one value. The type is *not* written — the enclosing schema
/// fixes it, so a tuple costs exactly its payload (interned strings are
/// resolved to their text, the ground truth of the bag instance).
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => out.push(u8::from(*b)),
        Value::Int(i) => out.extend_from_slice(&i.to_le_bytes()),
        Value::Real(r) => out.extend_from_slice(&r.get().to_bits().to_le_bytes()),
        Value::Str(s) => put_str(out, s.as_str()),
        Value::Date(d) => out.extend_from_slice(&d.0.to_le_bytes()),
        Value::Time(t) => out.extend_from_slice(&t.0.to_le_bytes()),
        Value::Money(m) => out.extend_from_slice(&m.0.to_le_bytes()),
    }
}

/// Decodes one value of the given domain.
pub fn read_value(r: &mut Reader<'_>, dtype: DataType) -> DecodeResult<Value> {
    Ok(match dtype {
        DataType::Bool => match r.u8()? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            other => return Err(DecodeError::new(format!("bad bool byte {other}"))),
        },
        DataType::Int => Value::Int(r.i64()?),
        DataType::Real => {
            let bits = r.u64()?;
            Value::Real(
                Real::new(f64::from_bits(bits))
                    .map_err(|_| DecodeError::new("real value is NaN"))?,
            )
        }
        DataType::Str => Value::str(r.str()?),
        DataType::Date => {
            let raw: [u8; 4] = r.bytes(4)?.try_into().expect("len 4");
            Value::Date(Date(i32::from_le_bytes(raw)))
        }
        DataType::Time => Value::Time(Time(r.u32()?)),
        DataType::Money => Value::Money(Money(r.i64()?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;

    #[test]
    fn value_roundtrip_all_domains() {
        let schema = Schema::anon(&[
            DataType::Bool,
            DataType::Int,
            DataType::Real,
            DataType::Str,
            DataType::Date,
            DataType::Time,
            DataType::Money,
        ]);
        let t = tuple![
            true,
            -42_i64,
            1.5_f64,
            "héllo\nwörld'",
            Value::Date(Date::from_ymd(1994, 2, 14).unwrap()),
            Value::Time(Time::from_hms(23, 59, 59).unwrap()),
            Value::Money(Money(-12345))
        ];
        let mut buf = Vec::new();
        for v in t.values() {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for (v, attr) in t.values().iter().zip(schema.attributes()) {
            assert_eq!(&read_value(&mut r, attr.dtype).unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn schema_roundtrip() {
        let s = Schema::new(vec![
            Attribute::named("owner", DataType::Str),
            Attribute::anon(DataType::Int),
            Attribute::named("naïve", DataType::Real),
        ]);
        let mut buf = Vec::new();
        put_schema(&mut buf, &s);
        let back = read_schema(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        for cut in 0..buf.len() {
            assert!(Reader::new(&buf[..cut]).str().is_err());
        }
    }
}
