//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! Every WAL record and snapshot body carries a CRC so recovery can tell a
//! *torn* write (the checksum of a half-written record cannot match) from
//! an intact one. The table is built once, lazily; the polynomial is the
//! reflected 0xEDB88320 everyone else uses, so dumps can be cross-checked
//! with external tools.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
