//! The write-ahead log: framed, checksummed, versioned redo records.
//!
//! # File layout
//!
//! ```text
//! +----------------+  8 bytes  magic "MERAWAL1"
//! | header         |
//! +----------------+
//! | record frame 0 |  u32le payload_len | u32le crc32(payload) | payload
//! | record frame 1 |
//! | ...            |
//! +----------------+
//! ```
//!
//! Each payload starts with a one-byte format version (currently
//! [`RECORD_VERSION`]) and a one-byte record kind:
//!
//! * kind 1 — **Commit**: `u64le` logical time, then the committed
//!   program as XRA source text (`u32le` length + UTF-8 bytes). The text
//!   form is the round-trip-tested interchange format of the language
//!   layer, so the log is readable with a hex dump and one `parse` call.
//! * kind 2 — **Declare**: a relation name and its schema. Written when a
//!   relation is created (including the initial schema on first open), so
//!   a WAL is self-contained: recovery needs no out-of-band catalog.
//! * kind 3 — **DeclareView**: a materialized-view name and its defining
//!   expression as XRA source text. Recovery rebuilds the view's contents
//!   by recomputing the expression over the recovered state — which the
//!   incremental-maintenance invariant guarantees equals the state the
//!   view held at the crash.
//! * kind 4 — **DeclareIndex**: a relation name and the 1-based key
//!   attributes of a secondary index. Only the *definition* is durable;
//!   recovery rebuilds the entries from the recovered relation — which
//!   the index-maintenance invariant guarantees equals the index at the
//!   crash.
//! * kind 5 — **DeclareKey**: a relation name and the 1-based attributes
//!   of a declared key constraint. Only the definition is durable;
//!   recovery rebuilds the per-key-point multiplicity counts from the
//!   recovered relation. The replayed history was committed *under* the
//!   key, so rebuilding cannot fail.
//!
//! # Torn tails vs. corruption
//!
//! Recovery scans frames in order. A frame whose length field runs past
//! the end of the file, or whose CRC does not match, is a *torn tail* —
//! the expected wreckage of a crash mid-append. The scan stops there and
//! reports the byte offset of the last intact frame so the caller can
//! truncate. A frame whose CRC matches but whose payload does not decode
//! is different: fsync said those bytes were durable, so the log is
//! *corrupt* (or written by a future version) and recovery must fail
//! loudly rather than silently drop committed work.

use crate::codec::{self, Reader};
use crate::crc::crc32;
use crate::error::{StoreError, StoreResult};
use mera_core::prelude::*;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"MERAWAL1";

/// Format version written into every record payload.
pub const RECORD_VERSION: u8 = 1;

const KIND_COMMIT: u8 = 1;
const KIND_DECLARE: u8 = 2;
const KIND_DECLARE_VIEW: u8 = 3;
const KIND_DECLARE_INDEX: u8 = 4;
const KIND_DECLARE_KEY: u8 = 5;

/// One durable redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed transaction: the logical commit time and the program
    /// that produced it, serialized as XRA source text.
    Commit {
        /// Logical time at which the transaction committed.
        time: u64,
        /// The committed program, as XRA text (empty for the empty
        /// program).
        text: String,
    },
    /// A relation declared into the schema.
    Declare {
        /// Relation name.
        name: String,
        /// Attribute list of the relation.
        schema: Schema,
    },
    /// A materialized view declared into the catalog.
    DeclareView {
        /// View name.
        name: String,
        /// The defining expression, as XRA text.
        text: String,
    },
    /// A secondary index declared into the catalog.
    DeclareIndex {
        /// The indexed relation.
        relation: String,
        /// 1-based key attributes.
        keys: Vec<usize>,
    },
    /// A key constraint declared into the catalog.
    DeclareKey {
        /// The constrained relation.
        relation: String,
        /// 1-based key attributes.
        attrs: Vec<usize>,
    },
}

impl WalRecord {
    /// Encodes the record payload (version byte, kind byte, body).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = vec![RECORD_VERSION];
        match self {
            WalRecord::Commit { time, text } => {
                out.push(KIND_COMMIT);
                out.extend_from_slice(&time.to_le_bytes());
                codec::put_str(&mut out, text);
            }
            WalRecord::Declare { name, schema } => {
                out.push(KIND_DECLARE);
                codec::put_str(&mut out, name);
                codec::put_schema(&mut out, schema);
            }
            WalRecord::DeclareView { name, text } => {
                out.push(KIND_DECLARE_VIEW);
                codec::put_str(&mut out, name);
                codec::put_str(&mut out, text);
            }
            WalRecord::DeclareIndex { relation, keys } => {
                out.push(KIND_DECLARE_INDEX);
                codec::put_str(&mut out, relation);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for &k in keys {
                    out.extend_from_slice(&(k as u32).to_le_bytes());
                }
            }
            WalRecord::DeclareKey { relation, attrs } => {
                out.push(KIND_DECLARE_KEY);
                codec::put_str(&mut out, relation);
                out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
                for &a in attrs {
                    out.extend_from_slice(&(a as u32).to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a payload previously produced by [`encode_payload`]
    /// (the CRC has already been verified by the caller).
    ///
    /// [`encode_payload`]: WalRecord::encode_payload
    pub fn decode_payload(payload: &[u8]) -> StoreResult<Self> {
        let mut r = Reader::new(payload);
        let bad = |e: codec::DecodeError| StoreError::CorruptWal(e.0);
        let version = r.u8().map_err(bad)?;
        if version != RECORD_VERSION {
            return Err(StoreError::CorruptWal(format!(
                "unknown record version {version} (this build reads v{RECORD_VERSION})"
            )));
        }
        let kind = r.u8().map_err(bad)?;
        let record = match kind {
            KIND_COMMIT => WalRecord::Commit {
                time: r.u64().map_err(bad)?,
                text: r.str().map_err(bad)?,
            },
            KIND_DECLARE => WalRecord::Declare {
                name: r.str().map_err(bad)?,
                schema: codec::read_schema(&mut r).map_err(bad)?,
            },
            KIND_DECLARE_VIEW => WalRecord::DeclareView {
                name: r.str().map_err(bad)?,
                text: r.str().map_err(bad)?,
            },
            KIND_DECLARE_INDEX => {
                let relation = r.str().map_err(bad)?;
                let n = r.u32().map_err(bad)?;
                let mut keys = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    keys.push(r.u32().map_err(bad)? as usize);
                }
                WalRecord::DeclareIndex { relation, keys }
            }
            KIND_DECLARE_KEY => {
                let relation = r.str().map_err(bad)?;
                let n = r.u32().map_err(bad)?;
                let mut attrs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    attrs.push(r.u32().map_err(bad)? as usize);
                }
                WalRecord::DeclareKey { relation, attrs }
            }
            other => {
                return Err(StoreError::CorruptWal(format!(
                    "unknown record kind {other}"
                )))
            }
        };
        if !r.is_exhausted() {
            return Err(StoreError::CorruptWal(format!(
                "{} trailing bytes after record body",
                r.remaining()
            )));
        }
        Ok(record)
    }

    /// Encodes a full frame: length, CRC, payload.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// The bytes of a fresh, empty WAL (just the header).
pub fn empty_wal() -> Vec<u8> {
    WAL_MAGIC.to_vec()
}

/// The result of scanning a WAL image.
#[derive(Debug)]
pub struct ScanResult {
    /// Every intact record, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the intact prefix. Anything past this offset is a
    /// torn tail the caller should truncate before appending again.
    pub valid_len: u64,
}

/// Scans a WAL image, returning the intact records and the length of the
/// intact prefix (see the module docs for the torn-tail/corruption
/// distinction).
pub fn scan(bytes: &[u8]) -> StoreResult<ScanResult> {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::CorruptWal(
            "missing MERAWAL1 header".to_string(),
        ));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // torn: not even a complete frame header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("len 4")) as usize;
        let stored_crc = u32::from_le_bytes(rest[4..8].try_into().expect("len 4"));
        if rest.len() < 8 + len {
            break; // torn: payload runs past end of file
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != stored_crc {
            break; // torn: checksum of a half-written payload
        }
        // CRC-verified bytes that fail to decode are corruption, not a
        // torn tail; decode_payload reports them as CorruptWal.
        records.push(WalRecord::decode_payload(payload)?);
        pos += 8 + len;
    }
    Ok(ScanResult {
        records,
        valid_len: pos as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Declare {
                name: "accounts".to_string(),
                schema: Schema::named(&[("owner", DataType::Str), ("balance", DataType::Int)]),
            },
            WalRecord::Commit {
                time: 1,
                text: "insert accounts values ('ann', 10);".to_string(),
            },
            WalRecord::Commit {
                time: 2,
                text: String::new(),
            },
            WalRecord::DeclareView {
                name: "rich".to_string(),
                text: "select[%2 > 5](accounts)".to_string(),
            },
            WalRecord::DeclareIndex {
                relation: "accounts".to_string(),
                keys: vec![1, 2],
            },
            WalRecord::DeclareKey {
                relation: "accounts".to_string(),
                attrs: vec![1],
            },
        ]
    }

    fn image_of(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = empty_wal();
        for r in records {
            bytes.extend_from_slice(&r.encode_frame());
        }
        bytes
    }

    #[test]
    fn scan_roundtrips_intact_log() {
        let records = sample_records();
        let bytes = image_of(&records);
        let scanned = scan(&bytes).expect("intact log");
        assert_eq!(scanned.records, records);
        assert_eq!(scanned.valid_len, bytes.len() as u64);
    }

    #[test]
    fn every_truncation_point_is_a_clean_torn_tail() {
        let records = sample_records();
        let full = image_of(&records);
        // Cutting the file anywhere after the header must recover some
        // prefix of the records and report a valid_len that keeps only
        // intact frames.
        for cut in WAL_MAGIC.len()..full.len() {
            let scanned = scan(&full[..cut]).expect("torn tails are not errors");
            assert!(scanned.valid_len <= cut as u64);
            assert_eq!(
                scan(&full[..scanned.valid_len as usize])
                    .expect("intact prefix")
                    .records,
                scanned.records
            );
            assert!(scanned.records.len() <= records.len());
            assert_eq!(scanned.records[..], records[..scanned.records.len()]);
        }
    }

    #[test]
    fn bit_flip_in_payload_is_a_torn_tail_at_that_frame() {
        let records = sample_records();
        let mut bytes = image_of(&records);
        // Flip one byte inside the *last* frame's payload: earlier
        // records must survive, the damaged one must be dropped.
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40;
        let scanned = scan(&bytes).expect("checksum failure is torn, not corrupt");
        assert_eq!(scanned.records, records[..records.len() - 1]);
    }

    #[test]
    fn crc_valid_garbage_is_hard_corruption() {
        let mut bytes = empty_wal();
        let payload = [9u8, 9, 9]; // bad version byte, but honest CRC
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match scan(&bytes) {
            Err(StoreError::CorruptWal(msg)) => assert!(msg.contains("version")),
            other => panic!("expected CorruptWal, got {other:?}"),
        }
    }

    #[test]
    fn missing_magic_is_rejected() {
        assert!(matches!(scan(b"NOTAWAL1"), Err(StoreError::CorruptWal(_))));
        assert!(matches!(scan(b""), Err(StoreError::CorruptWal(_))));
    }

    #[test]
    fn unicode_and_quote_heavy_text_roundtrips() {
        let r = WalRecord::Commit {
            time: 7,
            text: "insert t values ('it''s\nµ—line');".to_string(),
        };
        let decoded = WalRecord::decode_payload(&r.encode_payload()).unwrap();
        assert_eq!(decoded, r);
    }
}
