//! Crash-at-every-point recovery matrix for statistics and indexes.
//!
//! The same discipline as `view_crash_matrix.rs`, aimed at the planner's
//! catalog: a workload that declares base relations, creates secondary
//! indexes mid-stream, churns the bases with insert/update/delete commits
//! (including one that crosses index keys and min/max boundaries), aborts
//! once, and checkpoints, runs against the fault-injecting [`MemStorage`]
//! at **every** write budget from 0 to the fault-free total. After each
//! simulated crash the surviving bytes are rebooted and the recovered
//! catalog must agree with a shadow *volatile* run (database + stats +
//! indexes maintained incrementally through `run_transaction_cataloged`)
//! at the matching durable prefix:
//!
//! * exact counters (`rows`, `distinct_rows`) equal the shadow's exactly,
//! * per-column distinct estimates and min/max bounds *cover* the actual
//!   column contents (the sketch's conservative direction — recovery
//!   re-analyzes from the snapshot, so its sketch state legitimately
//!   differs from a shadow that never forgot a deletion),
//! * the statistics are stamped current for the recovered state, and
//! * every recovered index has exactly the entries a fresh build over the
//!   recovered relation produces.

use std::collections::BTreeSet;
use std::sync::Arc;

use mera_core::prelude::*;
use mera_lang::Lowerer;
use mera_store::{DurableDb, MemStorage, StoreError, StoreOptions};
use mera_txn::{
    run_transaction_cataloged, CatalogStats, CommitCatalog, ConstraintSet, HashIndex, IndexSet,
    Outcome, Program,
};

/// One step of the workload.
enum Op {
    Declare(&'static str, fn() -> Schema),
    /// A durable secondary-index definition.
    CreateIndex(&'static str, &'static [usize]),
    /// XRA program text expected to commit.
    Commit(&'static str),
    /// XRA program text expected to abort (division by zero).
    Abort(&'static str),
    Checkpoint,
}

fn orders_schema() -> Schema {
    Schema::named(&[("cust", DataType::Int), ("amount", DataType::Int)])
}

fn customers_schema() -> Schema {
    Schema::named(&[("id", DataType::Int), ("region", DataType::Str)])
}

/// Churn against two indexed base relations: index creation *between*
/// commits, deletes that hit index keys and min/max boundaries, an abort
/// (ticks time, writes nothing), and a checkpoint followed by more churn —
/// so recovery exercises snapshot + re-seeded `DeclareIndex` records + a
/// live log tail together.
fn workload() -> Vec<Op> {
    vec![
        Op::Declare("orders", orders_schema),
        Op::Declare("customers", customers_schema),
        Op::Commit("insert(customers, values (int, str) {(1, 'north'), (2, 'south')})"),
        Op::Commit("insert(orders, values (int, int) {(1, 10), (1, 5), (2, 7)})"),
        Op::CreateIndex("orders", &[1]),
        Op::CreateIndex("customers", &[1]),
        Op::Commit("insert(orders, values (int, int) {(2, 9), (1, 1), (3, 40)})"),
        Op::Abort("?project[(%2 / 0)](orders)"),
        // deletes the current max (40) — bounds drift, index key dies
        Op::Commit("delete(orders, select[(%1 = 3)](orders))"),
        Op::Checkpoint,
        Op::Commit("insert(orders, values (int, int) {(2, 20)})"),
        Op::Commit("update(orders, select[(%2 = 10)](orders), (%1, %2 + 1))"),
        Op::Commit("delete(orders, select[(%1 = 1)](orders))"),
    ]
}

fn parse(db: &Database, text: &str) -> Program {
    let parsed = mera_lang::parse_program(text).expect("workload text parses");
    let mut lowerer = Lowerer::new(db.schema());
    lowerer
        .lower_program(&parsed)
        .expect("workload text lowers")
}

/// The shadow volatile engine: the same catalog triple the durable store
/// maintains, minus the storage.
struct Shadow {
    db: Database,
    stats: Arc<CatalogStats>,
    indexes: Arc<IndexSet>,
}

impl Shadow {
    fn new() -> Shadow {
        let db = Database::new(DatabaseSchema::new());
        let stats = CatalogStats::from_database(&db).expect("empty analyze");
        Shadow {
            db,
            stats: Arc::new(stats),
            indexes: Arc::new(IndexSet::new()),
        }
    }

    /// Applies a committed program at the exact logical time the durable
    /// run committed it, maintaining stats and indexes incrementally.
    fn commit(&mut self, program: &Program, committed_at: u64) {
        self.db
            .advance_time_to(committed_at.saturating_sub(1))
            .expect("commit times increase");
        let config = mera_txn::ExecConfig {
            analyze: false,
            ..Default::default()
        };
        let (next, outcome) = run_transaction_cataloged(
            &self.db,
            CommitCatalog {
                views: None,
                stats: Some(&mut self.stats),
                indexes: Some(&mut self.indexes),
                keys: None,
            },
            program,
            config,
            None,
            &ConstraintSet::new(),
        );
        assert!(
            matches!(outcome, Outcome::Committed(_)),
            "shadow replay of a committed program must commit"
        );
        self.db = next;
    }
}

/// Runs the workload against `storage`, stopping at the first storage
/// failure. Returns the oracle: `(units-at-event, shadow-catalog)` for
/// every durable event that completed.
fn drive(storage: MemStorage) -> Vec<(u64, Shadow)> {
    let mut states = vec![(0, Shadow::new())];
    let mut shadow = Shadow::new();

    let mut durable = match DurableDb::open(
        storage.clone(),
        DatabaseSchema::new(),
        StoreOptions::default(),
    ) {
        Ok(d) => d,
        Err(_) => return states, // crashed during creation
    };
    states.push((storage.units_written(), snapshot_of(&shadow)));

    for op in workload() {
        let is_abort = matches!(op, Op::Abort(_));
        let result: Result<(), StoreError> = match op {
            Op::Declare(name, schema) => durable
                .add_relation(RelationSchema::new(name, schema()))
                .map(|()| {
                    shadow
                        .db
                        .add_relation(RelationSchema::new(name, schema()))
                        .expect("shadow declare");
                }),
            Op::CreateIndex(relation, keys) => durable.create_index(relation, keys).map(|()| {
                Arc::make_mut(&mut shadow.indexes)
                    .create(&shadow.db, relation, keys)
                    .expect("shadow index creation");
            }),
            Op::Commit(text) => {
                let program = parse(durable.database(), text);
                durable.execute(&program).map(|_| {
                    shadow.commit(&program, durable.database().time());
                })
            }
            Op::Abort(text) => {
                let program = parse(durable.database(), text);
                match durable.execute(&program) {
                    Err(StoreError::TransactionAborted(_)) => Ok(()), // not a durable event
                    Err(other) => Err(other),
                    Ok(_) => panic!("workload abort op committed"),
                }
            }
            Op::Checkpoint => durable.checkpoint(),
        };
        match result {
            Ok(()) => {
                if !is_abort {
                    states.push((storage.units_written(), snapshot_of(&shadow)));
                }
            }
            Err(_) => break, // crashed: everything after this fails too
        }
    }
    states
}

fn snapshot_of(shadow: &Shadow) -> Shadow {
    Shadow {
        db: shadow.db.clone(),
        stats: Arc::clone(&shadow.stats),
        indexes: Arc::clone(&shadow.indexes),
    }
}

/// Asserts the recovered catalog agrees with the shadow at one durable
/// prefix (see the module docs for the exact/conservative split).
fn assert_catalog_matches(recovered: &DurableDb<MemStorage>, expected: &Shadow, label: &str) {
    assert_eq!(recovered.database(), &expected.db, "{label}: base state");

    // Statistics: exact counters match the shadow exactly; sketch-backed
    // estimates and bounds must cover the actual column contents.
    let stats = recovered.stats();
    assert!(
        stats.is_current(recovered.database()),
        "{label}: recovered stats must be stamped for the recovered state"
    );
    for (name, shadow_t) in expected.stats.tables() {
        let rec_t = stats
            .get(name)
            .unwrap_or_else(|| panic!("{label}: no recovered stats for '{name}'"));
        assert_eq!(rec_t.rows, shadow_t.rows, "{label}: rows of '{name}'");
        assert_eq!(
            rec_t.distinct_rows, shadow_t.distinct_rows,
            "{label}: distinct rows of '{name}'"
        );
    }
    for name in recovered.database().relation_names() {
        let rel = recovered.database().relation(name).expect("relation");
        let Some(rec_t) = stats.get(name) else {
            continue;
        };
        assert_eq!(rec_t.rows, rel.len(), "{label}: rows of '{name}'");
        for attr in 1..=rel.schema().arity() {
            let actual: BTreeSet<&Value> = rel.support().map(|t| &t.values()[attr - 1]).collect();
            assert!(
                rec_t.column_distinct(attr) >= actual.len() as u64,
                "{label}: column {attr} of '{name}' under-estimates distincts"
            );
            if let Some((min, max)) = rec_t.column_bounds(attr) {
                for v in &actual {
                    assert!(
                        min <= *v && *v <= max,
                        "{label}: column {attr} of '{name}' bounds do not cover {v:?}"
                    );
                }
            } else {
                assert!(
                    actual.is_empty(),
                    "{label}: column {attr} of '{name}' lost its bounds"
                );
            }
        }
    }

    // Indexes: same definitions as the shadow, and every recovered index
    // holds exactly what a fresh build over the recovered relation holds.
    assert_eq!(
        recovered.index_definitions(),
        expected.indexes.definitions(),
        "{label}: index definitions"
    );
    let indexes = recovered.indexes();
    for (relation, keys) in recovered.index_definitions() {
        let index = indexes.find(&relation, &keys).expect("defined index");
        let rel = recovered.database().relation(&relation).expect("relation");
        let fresh = HashIndex::build(rel, &keys).expect("fresh build");
        assert_eq!(
            index.len(),
            fresh.len(),
            "{label}: entry count of index on '{relation}'"
        );
        assert_eq!(
            index.distinct_keys(),
            fresh.distinct_keys(),
            "{label}: key count of index on '{relation}'"
        );
        for t in rel.support() {
            let key = Tuple::new(keys.iter().map(|&k| t.values()[k - 1].clone()).collect());
            assert_eq!(
                index.lookup(&key).expect("lookup"),
                fresh.lookup(&key).expect("lookup"),
                "{label}: index on '{relation}' diverges at key {key:?}"
            );
        }
    }
}

#[test]
fn recovered_catalog_equals_shadow_catalog_at_every_crash_point() {
    // Fault-free pass: build the oracle and find the total write volume.
    let clean = MemStorage::new();
    let oracle = drive(clean.clone());
    let total = clean.units_written();
    assert_eq!(
        oracle.len(),
        14, // pre-open + open + 2 declares + 2 indexes + 7 commits + 1 checkpoint
        "fault-free run must complete every durable event"
    );
    let (_, final_shadow) = oracle.last().expect("events ran");
    // sanity: churn landed where the workload says it should
    let orders = final_shadow.db.relation("orders").expect("orders");
    assert_eq!(orders.len(), 3); // (1,10)→(1,11) deleted with cust 1's rest; (2,7),(2,9),(2,20)
    let t = final_shadow.stats.get("orders").expect("stats entry");
    assert_eq!(t.rows, 3);

    // Fault-free reboot recovers the full catalog.
    let recovered = DurableDb::open(
        MemStorage::from_image(clean.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("clean recovery");
    assert_catalog_matches(&recovered, final_shadow, "fault-free reboot");

    // The matrix: crash after every single write unit.
    for budget in 0..=total {
        let storage = MemStorage::with_budget(budget);
        let _ = drive(storage.clone());

        let recovered = DurableDb::open(
            MemStorage::from_image(storage.image()),
            DatabaseSchema::new(),
            StoreOptions::default(),
        )
        .unwrap_or_else(|e| panic!("recovery after crash at unit {budget} failed: {e}"));

        let (_, expected) = oracle
            .iter()
            .rev()
            .find(|(mark, _)| *mark <= budget)
            .expect("oracle is seeded with the zero-mark state");
        assert_catalog_matches(
            &recovered,
            expected,
            &format!("crash at write unit {budget}/{total}"),
        );
    }
}
