//! Crash-at-every-point recovery matrix for key constraints.
//!
//! The same discipline as `stats_crash_matrix.rs`, aimed at the declared
//! keys: a workload that declares base relations, declares keys
//! mid-stream (one before any data, one over existing data), churns the
//! bases with insert/update/delete commits, runs one commit that *violates*
//! a key (aborts, writes nothing), and checkpoints, runs against the
//! fault-injecting [`MemStorage`] at **every** write budget from 0 to the
//! fault-free total. After each simulated crash the surviving bytes are
//! rebooted and the recovered state must agree with a shadow volatile run
//! at the matching durable prefix:
//!
//! * the database contents equal the shadow's exactly,
//! * the recovered key definitions equal the shadow's exactly, and
//! * the recovered constraint still *enforces*: a commit that would break
//!   a recovered key aborts, and a conforming commit goes through — i.e.
//!   the per-key-point counts rebuilt at recovery match the data.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_lang::Lowerer;
use mera_store::{DurableDb, MemStorage, StoreError, StoreOptions};
use mera_txn::{
    run_transaction_cataloged, CatalogStats, CommitCatalog, ConstraintSet, KeySet, Outcome, Program,
};

/// One step of the workload.
enum Op {
    Declare(&'static str, fn() -> Schema),
    /// A durable key-constraint declaration.
    DeclareKey(&'static str, &'static [usize]),
    /// XRA program text expected to commit.
    Commit(&'static str),
    /// XRA program text expected to abort on a key violation.
    ViolatingCommit(&'static str),
    Checkpoint,
}

fn members_schema() -> Schema {
    Schema::named(&[("name", DataType::Str), ("town", DataType::Str)])
}

fn towns_schema() -> Schema {
    Schema::named(&[("town", DataType::Str), ("country", DataType::Str)])
}

/// Key declarations between commits, a violating commit (aborts, leaves no
/// durable trace), a key declared over *existing* data, and a checkpoint
/// followed by more churn — so recovery exercises snapshot + re-seeded
/// `DeclareKey` records + a live log tail together.
fn workload() -> Vec<Op> {
    vec![
        Op::Declare("member", members_schema),
        Op::Declare("towns", towns_schema),
        // key on an empty relation, enforced from the first insert
        Op::DeclareKey("member", &[1]),
        Op::Commit(
            "insert(member, values (str, str) {('dick', 'enschede'), ('peter', 'hengelo')})",
        ),
        Op::ViolatingCommit("insert(member, values (str, str) {('dick', 'losser')})"),
        Op::Commit("insert(towns, values (str, str) {('enschede', 'NL'), ('hengelo', 'NL')})"),
        // key declared over existing (conforming) data
        Op::DeclareKey("towns", &[1]),
        // delete + insert at the same key point in one transaction: the
        // net delta conforms, so this commits under the key
        Op::Commit(
            "delete(member, select[(%1 = 'dick')](member)); \
             insert(member, values (str, str) {('dick', 'losser')})",
        ),
        Op::Checkpoint,
        Op::Commit("insert(member, values (str, str) {('maurice', 'enschede')})"),
        Op::ViolatingCommit("insert(towns, values (str, str) {('enschede', 'DE')})"),
        Op::Commit("delete(member, select[(%1 = 'peter')](member))"),
    ]
}

fn parse(db: &Database, text: &str) -> Program {
    let parsed = mera_lang::parse_program(text).expect("workload text parses");
    let mut lowerer = Lowerer::new(db.schema());
    lowerer
        .lower_program(&parsed)
        .expect("workload text lowers")
}

/// The shadow volatile engine: database + keys maintained incrementally.
struct Shadow {
    db: Database,
    stats: Arc<CatalogStats>,
    keys: Arc<KeySet>,
}

impl Shadow {
    fn new() -> Shadow {
        let db = Database::new(DatabaseSchema::new());
        let stats = CatalogStats::from_database(&db).expect("empty analyze");
        Shadow {
            db,
            stats: Arc::new(stats),
            keys: Arc::new(KeySet::new()),
        }
    }

    /// Applies a committed program at the exact logical time the durable
    /// run committed it, maintaining the key counts incrementally.
    fn commit(&mut self, program: &Program, committed_at: u64) {
        self.db
            .advance_time_to(committed_at.saturating_sub(1))
            .expect("commit times increase");
        let config = mera_txn::ExecConfig {
            analyze: false,
            ..Default::default()
        };
        let (next, outcome) = run_transaction_cataloged(
            &self.db,
            CommitCatalog {
                views: None,
                stats: Some(&mut self.stats),
                indexes: None,
                keys: Some(&mut self.keys),
            },
            program,
            config,
            None,
            &ConstraintSet::new(),
        );
        assert!(
            matches!(outcome, Outcome::Committed(_)),
            "shadow replay of a committed program must commit"
        );
        self.db = next;
    }
}

/// Runs the workload against `storage`, stopping at the first storage
/// failure. Returns the oracle: `(units-at-event, shadow)` for every
/// durable event that completed.
fn drive(storage: MemStorage) -> Vec<(u64, Shadow)> {
    let mut states = vec![(0, Shadow::new())];
    let mut shadow = Shadow::new();

    let mut durable = match DurableDb::open(
        storage.clone(),
        DatabaseSchema::new(),
        StoreOptions::default(),
    ) {
        Ok(d) => d,
        Err(_) => return states, // crashed during creation
    };
    states.push((storage.units_written(), snapshot_of(&shadow)));

    for op in workload() {
        let is_violation = matches!(op, Op::ViolatingCommit(_));
        let result: Result<(), StoreError> = match op {
            Op::Declare(name, schema) => durable
                .add_relation(RelationSchema::new(name, schema()))
                .map(|()| {
                    shadow
                        .db
                        .add_relation(RelationSchema::new(name, schema()))
                        .expect("shadow declare");
                }),
            Op::DeclareKey(relation, attrs) => durable.declare_key(relation, attrs).map(|()| {
                Arc::make_mut(&mut shadow.keys)
                    .declare(&shadow.db, relation, attrs)
                    .expect("shadow key declaration")
                    .expect("workload keys hold on declaration");
            }),
            Op::Commit(text) => {
                let program = parse(durable.database(), text);
                durable.execute(&program).map(|_| {
                    shadow.commit(&program, durable.database().time());
                })
            }
            Op::ViolatingCommit(text) => {
                let program = parse(durable.database(), text);
                match durable.execute(&program) {
                    Err(StoreError::TransactionAborted(reason)) => {
                        assert!(
                            reason.contains("E0401"),
                            "violating commit must abort on the key, got: {reason}"
                        );
                        Ok(()) // not a durable event
                    }
                    Err(other) => Err(other),
                    Ok(_) => panic!("workload violation op committed"),
                }
            }
            Op::Checkpoint => durable.checkpoint(),
        };
        match result {
            Ok(()) => {
                if !is_violation {
                    states.push((storage.units_written(), snapshot_of(&shadow)));
                }
            }
            Err(_) => break, // crashed: everything after this fails too
        }
    }
    states
}

fn snapshot_of(shadow: &Shadow) -> Shadow {
    Shadow {
        db: shadow.db.clone(),
        stats: Arc::clone(&shadow.stats),
        keys: Arc::clone(&shadow.keys),
    }
}

/// Asserts the recovered keys agree with the shadow at one durable prefix
/// — definitionally and behaviourally.
fn assert_keys_match(recovered: &mut DurableDb<MemStorage>, expected: &Shadow, label: &str) {
    assert_eq!(recovered.database(), &expected.db, "{label}: base state");
    assert_eq!(
        recovered.key_definitions(),
        expected.keys.definitions(),
        "{label}: key definitions"
    );

    // Behavioural check: the rebuilt counts enforce exactly. For every
    // declared key with data, re-inserting an existing tuple must abort
    // (its key point is occupied), and the abort must leave the state
    // unchanged.
    for (relation, _) in recovered.key_definitions() {
        let rel = expected.db.relation(&relation).expect("keyed relation");
        let Some(t) = rel.support().next() else {
            continue;
        };
        let values = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Str(s) => format!("'{s}'"),
                other => other.to_string(),
            })
            .collect::<Vec<_>>()
            .join(", ");
        let types = rel
            .schema()
            .attributes()
            .iter()
            .map(|a| a.dtype.to_string().to_lowercase())
            .collect::<Vec<_>>()
            .join(", ");
        let text = format!("insert({relation}, values ({types}) {{({values})}})");
        let program = parse(recovered.database(), &text);
        let before = recovered.database().clone();
        match recovered.execute(&program) {
            Err(StoreError::TransactionAborted(reason)) => {
                assert!(
                    reason.contains("E0401"),
                    "{label}: expected a key-violation abort on '{relation}', got: {reason}"
                );
            }
            other => {
                panic!("{label}: duplicate insert into '{relation}' must abort, got {other:?}")
            }
        }
        // restore logical time parity for the equality checks above by
        // reopening from the same image is overkill; the abort only ticks
        // time, contents are unchanged
        assert_eq!(
            recovered.database().schema(),
            before.schema(),
            "{label}: abort must not change the schema"
        );
        for name in before.relation_names() {
            assert_eq!(
                recovered.database().relation(name).expect("relation"),
                before.relation(name).expect("relation"),
                "{label}: abort must not change '{name}'"
            );
        }
    }
}

#[test]
fn recovered_keys_enforce_at_every_crash_point() {
    // Fault-free pass: build the oracle and find the total write volume.
    let clean = MemStorage::new();
    let oracle = drive(clean.clone());
    let total = clean.units_written();
    assert_eq!(
        oracle.len(),
        12, // pre-open + open + 2 declares + 2 keys + 5 commits + 1 checkpoint
        "fault-free run must complete every durable event"
    );
    let (_, final_shadow) = oracle.last().expect("events ran");
    let member = final_shadow.db.relation("member").expect("member");
    assert_eq!(member.len(), 2); // dick@losser, maurice@enschede

    // Fault-free reboot recovers definitions and enforcement.
    let mut recovered = DurableDb::open(
        MemStorage::from_image(clean.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("clean recovery");
    assert_keys_match(&mut recovered, final_shadow, "fault-free reboot");

    // The matrix: crash after every single write unit.
    for budget in 0..=total {
        let storage = MemStorage::with_budget(budget);
        let _ = drive(storage.clone());

        let mut recovered = DurableDb::open(
            MemStorage::from_image(storage.image()),
            DatabaseSchema::new(),
            StoreOptions::default(),
        )
        .unwrap_or_else(|e| panic!("recovery after crash at unit {budget} failed: {e}"));

        let (_, expected) = oracle
            .iter()
            .rev()
            .find(|(mark, _)| *mark <= budget)
            .expect("oracle is seeded with the zero-mark state");
        assert_keys_match(
            &mut recovered,
            expected,
            &format!("crash at write unit {budget}/{total}"),
        );
    }
}
