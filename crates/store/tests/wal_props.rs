//! Property test for the WAL's program interchange format.
//!
//! A committed program reaches the log as XRA text inside a
//! [`WalRecord::Commit`]; recovery parses and lowers it back. This
//! property drives arbitrary programs whose string literals are built
//! from a hostile alphabet — quotes, newlines, tabs, non-ASCII — through
//! the full pipeline:
//!
//! ```text
//! Program → program_to_xra → WalRecord::encode_frame
//!         → wal::scan → parse_program → lower_program → Program
//! ```
//!
//! and requires the result to equal the original, statement for
//! statement.

use mera_core::prelude::*;
use mera_expr::{RelExpr, ScalarExpr};
use mera_lang::{program_to_xra, Lowerer};
use mera_store::wal::{self, WalRecord};
use mera_txn::{Program, Statement};
use proptest::prelude::*;

/// The hostile alphabet: XRA string syntax characters, whitespace the
/// lexer must carry through, and multi-byte UTF-8.
const NASTY: &[char] = &[
    'a', 'b', '\'', '\n', '\t', ' ', '"', '\\', 'é', 'µ', '—', 'β', '0', ',', '(', '%',
];

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "t",
            Schema::named(&[("name", DataType::Str), ("n", DataType::Int)]),
        )
        .expect("fresh")
}

fn string_of(picks: &[u8]) -> String {
    picks
        .iter()
        .map(|&i| NASTY[i as usize % NASTY.len()])
        .collect()
}

/// Builds one statement by shape selector; every shape embeds the
/// generated strings somewhere the printer must quote them.
fn statement(shape: u8, s1: String, s2: String, n: i64) -> Statement {
    let values = |strings: Vec<String>| {
        let sch = std::sync::Arc::new(Schema::anon(&[DataType::Str, DataType::Int]));
        let tuples: Vec<Tuple> = strings
            .into_iter()
            .enumerate()
            .map(|(i, s)| Tuple::new(vec![Value::str(s), Value::Int(n + i as i64)]))
            .collect();
        RelExpr::Values(std::sync::Arc::new(
            Relation::from_tuples(sch, tuples).expect("well-typed"),
        ))
    };
    match shape % 5 {
        0 => Statement::insert("t", values(vec![s1, s2])),
        1 => Statement::delete(
            "t",
            RelExpr::scan("t").select(ScalarExpr::attr(1).eq(ScalarExpr::str(s1))),
        ),
        2 => Statement::query(
            RelExpr::scan("t")
                .select(ScalarExpr::attr(1).eq(ScalarExpr::str(s1)))
                .ext_project(vec![ScalarExpr::attr(1).concat_with(ScalarExpr::str(s2))]),
        ),
        3 => Statement::assign("tmp", values(vec![s1, s2])),
        _ => Statement::insert("t", values(vec![s1])),
    }
}

/// Deterministic regression case: a quote inside a `values` row literal.
/// The printer once emitted it unescaped, producing a WAL record that
/// recovery could not parse back — committed-but-unrecoverable history.
#[test]
fn quoted_values_literal_survives() {
    let program = Program::single(statement(0, "it's\n'‚µ'".to_string(), String::new(), 7));
    let text = program_to_xra(&program);
    let parsed = mera_lang::parse_program(&text)
        .unwrap_or_else(|e| panic!("unparseable WAL text {text:?}: {e}"));
    let sch = schema();
    let mut lowerer = Lowerer::new(&sch);
    assert_eq!(lowerer.lower_program(&parsed).expect("lowers"), program);
}

proptest! {
    #[test]
    fn committed_text_survives_the_wal_byte_for_byte(
        shapes in proptest::collection::vec(0u8..5, 1..4),
        picks1 in proptest::collection::vec(0u8..16, 0..10),
        picks2 in proptest::collection::vec(0u8..16, 0..10),
        n in -3i64..100,
        time in 1u64..1_000_000,
    ) {
        let s1 = string_of(&picks1);
        let s2 = string_of(&picks2);
        let program = Program {
            statements: shapes
                .iter()
                .map(|&sh| statement(sh, s1.clone(), s2.clone(), n))
                .collect(),
        };

        // encode into a framed WAL image, scan it back
        let record = WalRecord::Commit { time, text: program_to_xra(&program) };
        let mut image = wal::empty_wal();
        image.extend_from_slice(&record.encode_frame());
        let scanned = wal::scan(&image).expect("intact frame");
        prop_assert_eq!(scanned.records.len(), 1);
        let text = match &scanned.records[0] {
            WalRecord::Commit { time: t, text } => {
                prop_assert_eq!(*t, time);
                text.clone()
            }
            other => panic!("wrong record kind: {other:?}"),
        };

        // parse + lower exactly as recovery does
        let parsed = mera_lang::parse_program(&text).unwrap_or_else(|e| {
            panic!("printer produced unparseable WAL text {text:?}: {e}")
        });
        let sch = schema();
        let mut lowerer = Lowerer::new(&sch);
        let lowered = lowerer.lower_program(&parsed).unwrap_or_else(|e| {
            panic!("recovered text fails to lower {text:?}: {e}")
        });
        prop_assert_eq!(lowered, program);
    }
}
