//! Crash-at-every-point recovery matrix.
//!
//! A fixed workload of declarations, transactions (commits *and* aborts)
//! and a mid-workload checkpoint runs against the fault-injecting
//! [`MemStorage`] with a write budget of N units, for **every** N from 0
//! to the total the fault-free run writes. After each simulated crash the
//! surviving bytes are rebooted and recovered, and the recovered state
//! must equal — exactly, including logical time — the state the
//! always-in-memory engine produces from the durable prefix of committed
//! history.
//!
//! The oracle is independent of the recovery code: a shadow database is
//! advanced with [`run_transaction_checked`] (the volatile engine) as the
//! fault-free run commits, snapshotting the expected state at every
//! durable event boundary. Aborted transactions tick the live clock but
//! are, by design, absent from durable history; the shadow (like
//! recovery) re-derives those ticks from the commit times themselves.

use mera_core::prelude::*;
use mera_lang::Lowerer;
use mera_store::{DurableDb, MemStorage, StoreError, StoreOptions};
use mera_txn::{run_transaction_checked, ConstraintSet, Outcome, Program};

/// One step of the workload.
enum Op {
    Declare(&'static str, fn() -> Schema),
    /// XRA program text expected to commit.
    Commit(&'static str),
    /// XRA program text expected to abort (division by zero).
    Abort(&'static str),
    Checkpoint,
}

fn accounts_schema() -> Schema {
    Schema::named(&[("owner", DataType::Str), ("balance", DataType::Int)])
}

fn audit_schema() -> Schema {
    Schema::named(&[("note", DataType::Str)])
}

/// The workload: 10 transactions (8 commits, 2 aborts), two declarations,
/// one checkpoint — with a declaration and commits after the checkpoint
/// so both the snapshot and the post-snapshot log tail are exercised.
fn workload() -> Vec<Op> {
    vec![
        Op::Declare("accounts", accounts_schema),
        Op::Commit("insert(accounts, values (str, int) {('ann', 10)})"),
        Op::Commit("insert(accounts, values (str, int) {('bob', 20), ('bob', 20)})"),
        Op::Abort("?project[(%2 / 0)](accounts)"),
        Op::Commit("insert(accounts, values (str, int) {('cho', 30)})"),
        Op::Commit("delete(accounts, select[(%1 = 'bob')](accounts))"),
        Op::Checkpoint,
        Op::Declare("audit", audit_schema),
        Op::Commit("insert(audit, values (str) {('checkpointed')})"),
        Op::Abort("?select[((%2 / 0) = 1)](accounts)"),
        Op::Commit(
            "t = select[(%2 > 15)](accounts);\n\
             insert(audit, project[%1](t))",
        ),
        Op::Commit("?accounts"),
        Op::Commit("insert(accounts, values (str, int) {('ann', 10)})"),
    ]
}

fn parse(db: &Database, text: &str) -> Program {
    let parsed = mera_lang::parse_program(text).expect("workload text parses");
    let mut lowerer = Lowerer::new(db.schema());
    lowerer
        .lower_program(&parsed)
        .expect("workload text lowers")
}

/// Applies a committed program to the shadow (volatile-engine) state at
/// the exact logical time the durable run committed it.
fn shadow_commit(shadow: &mut Database, program: &Program, committed_at: u64) {
    shadow
        .advance_time_to(committed_at.saturating_sub(1))
        .expect("commit times increase");
    let config = mera_txn::ExecConfig {
        analyze: false,
        ..Default::default()
    };
    let (next, outcome) =
        run_transaction_checked(shadow, program, config, None, &ConstraintSet::new());
    assert!(
        matches!(outcome, Outcome::Committed(_)),
        "shadow replay of a committed program must commit"
    );
    assert_eq!(next.time(), committed_at);
    *shadow = next;
}

/// Runs the workload against `storage`, stopping at the first storage
/// failure. Returns the oracle: `(units-at-event, expected-state)` for
/// every durable event that completed, seeded with the pre-open state.
fn drive(storage: MemStorage) -> Vec<(u64, Database)> {
    let mut states = vec![(0, Database::new(DatabaseSchema::new()))];
    let mut shadow = Database::new(DatabaseSchema::new());

    let mut durable = match DurableDb::open(
        storage.clone(),
        DatabaseSchema::new(),
        StoreOptions::default(),
    ) {
        Ok(d) => d,
        Err(_) => return states, // crashed during creation
    };
    states.push((storage.units_written(), shadow.clone()));

    for op in workload() {
        let result: Result<(), StoreError> = match op {
            Op::Declare(name, schema) => durable
                .add_relation(RelationSchema::new(name, schema()))
                .map(|()| {
                    shadow
                        .add_relation(RelationSchema::new(name, schema()))
                        .expect("shadow declare");
                }),
            Op::Commit(text) => {
                let program = parse(durable.database(), text);
                durable.execute(&program).map(|_| {
                    shadow_commit(&mut shadow, &program, durable.database().time());
                })
            }
            Op::Abort(text) => {
                let program = parse(durable.database(), text);
                match durable.execute(&program) {
                    Err(StoreError::TransactionAborted(_)) => Ok(()), // not a durable event
                    Err(other) => Err(other),
                    Ok(_) => panic!("workload abort op committed"),
                }
            }
            Op::Checkpoint => durable.checkpoint(),
        };
        match result {
            Ok(()) => {
                if !matches!(op_kind(&op), OpKind::Abort) {
                    states.push((storage.units_written(), shadow.clone()));
                }
            }
            Err(_) => break, // crashed: everything after this fails too
        }
    }
    states
}

enum OpKind {
    Abort,
    Other,
}

fn op_kind(op: &Op) -> OpKind {
    match op {
        Op::Abort(_) => OpKind::Abort,
        _ => OpKind::Other,
    }
}

#[test]
fn recovery_equals_committed_prefix_at_every_crash_point() {
    // Fault-free pass: build the oracle and find the total write volume.
    let clean = MemStorage::new();
    let oracle = drive(clean.clone());
    let total = clean.units_written();
    assert_eq!(
        oracle.len(),
        13, // pre-open + open + 2 declares + 8 commits + 1 checkpoint
        "fault-free run must complete every durable event"
    );

    // Fault-free reboot sanity check: full image recovers the final state.
    let recovered = DurableDb::open(
        MemStorage::from_image(clean.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("clean recovery");
    assert_eq!(recovered.database(), &oracle.last().expect("events ran").1);

    // The matrix: crash after every single write unit.
    for budget in 0..=total {
        let storage = MemStorage::with_budget(budget);
        let _ = drive(storage.clone());
        let image = storage.image();

        let recovered = DurableDb::open(
            MemStorage::from_image(image),
            DatabaseSchema::new(),
            StoreOptions::default(),
        )
        .unwrap_or_else(|e| panic!("recovery after crash at unit {budget} failed: {e}"));

        let expected = &oracle
            .iter()
            .rev()
            .find(|(mark, _)| *mark <= budget)
            .expect("oracle is seeded with the zero-mark state")
            .1;
        assert_eq!(
            recovered.database(),
            expected,
            "crash at write unit {budget}/{total}: recovered state is not \
             the committed prefix durable at that point"
        );
    }
}

#[test]
fn oracle_and_live_engine_agree_on_the_full_run() {
    // With no faults, the durable engine's final state must match the
    // shadow except for clock ticks of aborted attempts *after* the last
    // commit (there are none in this workload — the last op commits).
    let storage = MemStorage::new();
    let oracle = drive(storage.clone());
    let durable = DurableDb::open(
        MemStorage::from_image(storage.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("recovers");

    // Independently re-run the whole history on the volatile engine,
    // aborts included, and compare relation contents.
    let mut live = Database::new(DatabaseSchema::new());
    for op in workload() {
        match op {
            Op::Declare(name, schema) => live
                .add_relation(RelationSchema::new(name, schema()))
                .expect("declare"),
            Op::Commit(text) | Op::Abort(text) => {
                let program = parse(&live, text);
                let (next, _) = mera_txn::run_transaction(
                    &live,
                    &program,
                    mera_txn::ExecConfig::default(),
                    None,
                );
                live = next;
            }
            Op::Checkpoint => {}
        }
    }
    let recovered = durable.database();
    assert_eq!(recovered, &oracle.last().expect("ran").1);
    for name in live.relation_names() {
        assert_eq!(
            recovered.relation(name).expect("same catalog"),
            live.relation(name).expect("present"),
            "relation {name} diverged from the always-in-memory engine"
        );
    }
}
