//! Crash-recovery matrix for *concurrent* commit histories.
//!
//! The serial crash matrix (`crash_matrix.rs`) drives a scripted
//! single-threaded workload. Here the WAL is produced by racing
//! sessions committing through the MVCC front with `EveryN` group
//! commit, so the log is a genuine interleaving of independent
//! transactions — then the matrix truncates that log at **every byte
//! offset** and asserts recovery reproduces exactly the committed
//! prefix: base relations, logical time, views, stats, key
//! constraints and indexes.
//!
//! The oracle is independent of the recovery path: the surviving WAL
//! bytes are scanned with [`mera_store::wal::scan`] and the intact
//! `Commit` records are replayed through the *volatile* engine
//! ([`run_transaction_checked`]) in log order. Because the group-commit
//! frontier appends frames inside the MVCC commit section, log order is
//! commit order, and the volatile replay of any intact prefix is the
//! unique legal recovered state.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use mera_core::prelude::*;
use mera_lang::Lowerer;
use mera_store::{
    is_conflict, snapshot, wal, ConcurrentDb, FsyncPolicy, MemStorage, StoreOptions, WalRecord,
    SNAPSHOT_FILE, WAL_FILE,
};
use mera_txn::{run_transaction_checked, ConstraintSet, Outcome, Program};

const WRITERS: usize = 3;
const PER_WRITER: usize = 5;

fn options() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::EveryN(3),
        ..StoreOptions::default()
    }
}

fn log_schema() -> Schema {
    Schema::named(&[("writer", DataType::Int), ("n", DataType::Int)])
}

/// Builds the catalog and runs the racing writers; returns the storage
/// image after a final sync.
fn drive_concurrent(storage: MemStorage, with_checkpoint: bool) -> BTreeMap<String, Vec<u8>> {
    let db = Arc::new(
        ConcurrentDb::open(storage.clone(), DatabaseSchema::new(), options()).expect("opens"),
    );
    db.add_relation(RelationSchema::new("log", log_schema()))
        .expect("declares");
    db.declare_key("log", &[1, 2]).expect("key declares");
    db.create_index("log", &[1]).expect("index builds");
    db.create_view(
        "per_writer",
        mera_expr::RelExpr::scan("log").group_by(&[1], mera_expr::Aggregate::Cnt, 2),
    )
    .expect("view creates");

    let race = |db: &Arc<ConcurrentDb<MemStorage>>, round: usize| {
        let workers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = Arc::clone(db);
                thread::spawn(move || {
                    for n in 0..PER_WRITER {
                        let program = insert_program(w as i64, (round * PER_WRITER + n) as i64);
                        loop {
                            match db.try_execute(&program).expect("storage healthy") {
                                Outcome::Committed(_) => break,
                                o if is_conflict(&o) => continue,
                                o => panic!("unexpected abort: {o:?}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("writer joins");
        }
    };

    race(&db, 0);
    if with_checkpoint {
        db.checkpoint().expect("checkpoints");
        race(&db, 1);
    }
    db.sync().expect("final sync");
    storage.image()
}

fn insert_program(writer: i64, n: i64) -> Program {
    let row = mera_core::relation::relation_of(log_schema(), vec![mera_core::tuple![writer, n]])
        .expect("typed");
    Program::single(mera_txn::Statement::insert(
        "log",
        mera_expr::RelExpr::values(row),
    ))
}

/// Replays one intact WAL prefix through the volatile engine.
fn shadow_of(records: &[WalRecord], base: Database) -> Database {
    let mut shadow = base;
    for record in records {
        match record {
            // declares are idempotent vs a snapshot that already has it
            WalRecord::Declare { name, schema } if shadow.relation(name).is_err() => {
                shadow
                    .add_relation(RelationSchema::new(name.clone(), schema.clone()))
                    .expect("shadow declare");
            }
            WalRecord::Commit { time, text } => {
                let parsed = mera_lang::parse_program(text).expect("committed text parses");
                let mut lowerer = Lowerer::new(shadow.schema());
                let program = lowerer
                    .lower_program(&parsed)
                    .expect("committed text lowers");
                shadow
                    .advance_time_to(time.saturating_sub(1))
                    .expect("commit times increase in log order");
                let config = mera_txn::ExecConfig {
                    analyze: false,
                    ..Default::default()
                };
                let (next, outcome) =
                    run_transaction_checked(&shadow, &program, config, None, &ConstraintSet::new());
                assert!(
                    matches!(outcome, Outcome::Committed(_)),
                    "volatile replay of a logged commit must commit"
                );
                assert_eq!(next.time(), *time, "log order must be commit order");
                shadow = next;
            }
            // catalog records don't change base state
            _ => {}
        }
    }
    shadow
}

/// Recovers a truncated image and checks every recovered structure
/// against the volatile oracle.
fn check_recovery(image: BTreeMap<String, Vec<u8>>, wal_prefix: &[u8], cut: usize) {
    let base = match image.get(SNAPSHOT_FILE) {
        Some(bytes) => snapshot::decode(bytes).expect("snapshot decodes"),
        None => Database::new(DatabaseSchema::new()),
    };
    let scan = wal::scan(wal_prefix).expect("intact prefix scans");
    let expected = shadow_of(&scan.records, base);

    let recovered = ConcurrentDb::open(
        MemStorage::from_image(image),
        DatabaseSchema::new(),
        options(),
    )
    .unwrap_or_else(|e| panic!("recovery after cut at byte {cut} failed: {e}"));
    let version = recovered.pin();
    assert_eq!(
        version.database(),
        &expected,
        "cut at byte {cut}: recovered base state is not the committed prefix"
    );

    // the whole catalog rides along with the prefix
    if version.database().relation("log").is_ok() {
        let rel = version.database().relation("log").expect("present");
        // stats (the entry appears with the first commit that touches
        // the relation; when present it must match)
        if let Some(stats) = version.stats().get("log") {
            assert_eq!(stats.rows, rel.len(), "cut {cut}: stats diverged");
        }
        // index
        if let Some(ix) = version.indexes().find("log", &[1]) {
            assert_eq!(ix.len(), rel.len(), "cut {cut}: index diverged");
        }
        // view: recompute expected per-writer counts from the base state
        if let Some(view) = version.views().get("per_writer") {
            let mut counts: BTreeMap<i64, i64> = BTreeMap::new();
            for (t, m) in rel.iter() {
                if let Value::Int(w) = t.attr(1).expect("arity 2") {
                    *counts.entry(*w).or_default() += m as i64;
                }
            }
            assert_eq!(
                view.data().len(),
                counts.len() as u64,
                "cut {cut}: view size"
            );
            for (w, c) in counts {
                assert_eq!(
                    view.data().multiplicity(&mera_core::tuple![w, c]),
                    1,
                    "cut {cut}: view row for writer {w} diverged"
                );
            }
        }
        // key constraint survives: a duplicate of any present row aborts
        if let Some((t, _)) = rel.iter().next() {
            let (w, n) = match (t.attr(1).expect("a"), t.attr(2).expect("b")) {
                (Value::Int(w), Value::Int(n)) => (*w, *n),
                other => panic!("unexpected row {other:?}"),
            };
            match recovered
                .try_execute(&insert_program(w, n))
                .expect("storage healthy")
            {
                Outcome::Aborted(_) => {}
                Outcome::Committed(_) => {
                    panic!("cut {cut}: key constraint lost across recovery")
                }
            }
        }
    }
}

#[test]
fn interleaved_wal_recovers_committed_prefix_at_every_byte() {
    let image = drive_concurrent(MemStorage::new(), false);
    let wal_bytes = image.get(WAL_FILE).expect("wal exists").clone();

    // sanity: the fault-free log holds every acked commit
    let full = wal::scan(&wal_bytes).expect("scans");
    let commits = full
        .records
        .iter()
        .filter(|r| matches!(r, WalRecord::Commit { .. }))
        .count();
    assert_eq!(commits, WRITERS * PER_WRITER);
    assert_eq!(full.valid_len as usize, wal_bytes.len());

    // the full image recovers every structure, stats entry included
    let recovered = ConcurrentDb::open(
        MemStorage::from_image(image.clone()),
        DatabaseSchema::new(),
        options(),
    )
    .expect("full recovery");
    let v = recovered.pin();
    assert_eq!(
        v.stats().get("log").expect("stats recovered").rows,
        (WRITERS * PER_WRITER) as u64
    );
    assert_eq!(
        v.indexes()
            .find("log", &[1])
            .expect("index recovered")
            .len(),
        (WRITERS * PER_WRITER) as u64
    );
    assert_eq!(
        v.views()
            .get("per_writer")
            .expect("view recovered")
            .data()
            .len(),
        WRITERS as u64
    );
    drop(v);
    drop(recovered);

    for cut in wal::WAL_MAGIC.len()..=wal_bytes.len() {
        let mut truncated = image.clone();
        truncated.insert(WAL_FILE.to_owned(), wal_bytes[..cut].to_vec());
        check_recovery(truncated, &wal_bytes[..cut], cut);
    }
}

#[test]
fn checkpointed_interleaved_history_recovers_at_every_tail_byte() {
    let image = drive_concurrent(MemStorage::new(), true);
    let wal_bytes = image.get(WAL_FILE).expect("wal exists").clone();
    assert!(
        image.contains_key(SNAPSHOT_FILE),
        "checkpoint wrote a snapshot"
    );

    // the post-checkpoint WAL tail carries the second racing round
    let full = wal::scan(&wal_bytes).expect("scans");
    let commits = full
        .records
        .iter()
        .filter(|r| matches!(r, WalRecord::Commit { .. }))
        .count();
    assert_eq!(commits, WRITERS * PER_WRITER);

    // Checkpoint replaces the reseeded WAL head (DeclareView/Index/Key
    // records) with one replace_atomic, so no real crash can tear it;
    // torn states start where post-checkpoint commit frames append.
    let reseed_len = {
        let mut len = wal::empty_wal().len();
        for r in &full.records {
            if matches!(r, WalRecord::Commit { .. }) {
                break;
            }
            len += r.encode_frame().len();
        }
        len
    };
    assert!(reseed_len < wal_bytes.len(), "tail holds the second round");

    for cut in reseed_len..=wal_bytes.len() {
        let mut truncated = image.clone();
        truncated.insert(WAL_FILE.to_owned(), wal_bytes[..cut].to_vec());
        check_recovery(truncated, &wal_bytes[..cut], cut);
    }
}
