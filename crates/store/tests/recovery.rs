//! Recovery scenarios beyond the crash matrix: real files on disk, torn
//! tails, hard corruption, checkpoint compaction, fsync policies, and
//! degenerate records.

use mera_core::prelude::*;
use mera_lang::Lowerer;
use mera_store::{
    DirStorage, DurableDb, FsyncPolicy, MemStorage, Storage, StoreError, StoreOptions, WalRecord,
    SNAPSHOT_FILE, WAL_FILE,
};
use mera_txn::Program;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "accounts",
            Schema::named(&[("owner", DataType::Str), ("balance", DataType::Int)]),
        )
        .expect("fresh")
}

fn parse(db: &Database, text: &str) -> Program {
    let parsed = mera_lang::parse_program(text).expect("parses");
    let mut lowerer = Lowerer::new(db.schema());
    lowerer.lower_program(&parsed).expect("lowers")
}

fn insert(owner: &str, balance: i64) -> String {
    format!("insert(accounts, values (str, int) {{('{owner}', {balance})}})")
}

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("mera-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn real_files_survive_process_restart() {
    let dir = TempDir::new("restart");
    let expected = {
        let storage = DirStorage::open(&dir.0).expect("open dir");
        let mut db = DurableDb::open(storage, schema(), StoreOptions::default()).expect("open");
        for (owner, amount) in [("ann", 10_i64), ("bob", 20), ("cho", 30)] {
            let p = parse(db.database(), &insert(owner, amount));
            db.execute(&p).expect("commits");
        }
        db.database().clone()
    }; // DurableDb dropped: "process exit"

    let storage = DirStorage::open(&dir.0).expect("reopen dir");
    let recovered =
        DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default()).expect("recovers");
    assert_eq!(recovered.database(), &expected);

    // ... and keeps working: append more history, restart again.
    let mut db = recovered;
    let p = parse(db.database(), &insert("dee", 40));
    db.execute(&p).expect("commits after recovery");
    let expected = db.database().clone();
    drop(db);

    let storage = DirStorage::open(&dir.0).expect("reopen dir");
    let recovered =
        DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default()).expect("recovers");
    assert_eq!(recovered.database(), &expected);
}

#[test]
fn torn_tail_on_disk_is_truncated_and_the_log_reusable() {
    let dir = TempDir::new("torn");
    let expected = {
        let storage = DirStorage::open(&dir.0).expect("open dir");
        let mut db = DurableDb::open(storage, schema(), StoreOptions::default()).expect("open");
        let p = parse(db.database(), &insert("ann", 10));
        db.execute(&p).expect("commits");
        db.database().clone()
    };

    // Simulate a crash mid-append: half a frame of a would-be commit.
    let mut storage = DirStorage::open(&dir.0).expect("reopen");
    storage
        .append(WAL_FILE, &[0x40, 0, 0, 0, 0xde, 0xad])
        .expect("raw append");
    drop(storage);

    let storage = DirStorage::open(&dir.0).expect("reopen");
    let mut recovered = DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default())
        .expect("torn tail is recoverable");
    assert_eq!(recovered.database(), &expected);

    // The tail was truncated, so new commits append at a frame boundary.
    let p = parse(recovered.database(), &insert("bob", 20));
    recovered.execute(&p).expect("commits after truncation");
    let expected = recovered.database().clone();
    drop(recovered);

    let storage = DirStorage::open(&dir.0).expect("reopen");
    let recovered =
        DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default()).expect("recovers");
    assert_eq!(recovered.database(), &expected);
}

#[test]
fn crc_valid_garbage_fails_recovery_loudly() {
    let mut storage = MemStorage::new();
    drop(DurableDb::open(storage.clone(), schema(), StoreOptions::default()).expect("open"));

    // An honest frame around a payload from "the future" (bad version).
    let payload = [42u8, 1, 2, 3];
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&mera_store::crc::crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    storage.append(WAL_FILE, &frame).expect("raw append");

    let err = DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default())
        .expect_err("intact-but-unreadable records must not be dropped");
    assert!(matches!(err, StoreError::CorruptWal(_)), "got {err:?}");
}

#[test]
fn checkpoint_compacts_the_log_on_disk() {
    let dir = TempDir::new("compact");
    let storage = DirStorage::open(&dir.0).expect("open dir");
    let mut db = DurableDb::open(storage, schema(), StoreOptions::default()).expect("open");
    for i in 0..20_i64 {
        let p = parse(db.database(), &insert("acct", i));
        db.execute(&p).expect("commits");
    }
    let wal_path = dir.0.join(WAL_FILE);
    let before = std::fs::metadata(&wal_path).expect("wal exists").len();
    db.checkpoint().expect("checkpoint");
    let after = std::fs::metadata(&wal_path).expect("wal exists").len();
    assert!(before > 8, "log grew during the workload");
    assert_eq!(after, 8, "checkpoint resets the WAL to its header");
    assert!(dir.0.join(SNAPSHOT_FILE).exists());

    let expected = db.database().clone();
    drop(db);
    let storage = DirStorage::open(&dir.0).expect("reopen");
    let recovered = DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default())
        .expect("snapshot restore");
    assert_eq!(recovered.database(), &expected);
}

#[test]
fn fsync_policies_flush_at_the_promised_cadence() {
    let cases: [(FsyncPolicy, u64); 3] = [
        (FsyncPolicy::Always, 4),
        (FsyncPolicy::EveryN(2), 2),
        (FsyncPolicy::Never, 0),
    ];
    for (policy, expected_syncs) in cases {
        let storage = MemStorage::new();
        let options = StoreOptions {
            fsync: policy,
            ..StoreOptions::default()
        };
        let mut db = DurableDb::open(storage.clone(), schema(), options).expect("open");
        let base = storage.sync_count();
        for i in 0..4_i64 {
            let p = parse(db.database(), &insert("ann", i));
            db.execute(&p).expect("commits");
        }
        assert_eq!(
            storage.sync_count() - base,
            expected_syncs,
            "policy {policy:?}"
        );
        // Whatever the policy, the bytes are on (simulated) disk.
        let recovered = DurableDb::open(
            MemStorage::from_image(storage.image()),
            DatabaseSchema::new(),
            StoreOptions::default(),
        )
        .expect("recovers");
        assert_eq!(recovered.database(), db.database());
    }
}

#[test]
fn empty_program_commits_and_replays() {
    let storage = MemStorage::new();
    let mut db = DurableDb::open(storage.clone(), schema(), StoreOptions::default()).expect("open");
    db.execute(&Program::new()).expect("empty program commits");
    db.execute(&Program::new()).expect("twice");
    let expected = db.database().clone();
    assert_eq!(expected.time(), 2);
    drop(db);

    let recovered = DurableDb::open(
        MemStorage::from_image(storage.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("recovers");
    assert_eq!(recovered.database(), &expected);
}

#[test]
fn snapshot_without_wal_restores_and_restarts_the_log() {
    let storage = MemStorage::new();
    let mut db = DurableDb::open(storage.clone(), schema(), StoreOptions::default()).expect("open");
    let p = parse(db.database(), &insert("ann", 10));
    db.execute(&p).expect("commits");
    db.checkpoint().expect("checkpoint");
    let expected = db.database().clone();
    drop(db);

    let mut image = storage.image();
    image.remove(WAL_FILE).expect("wal existed");
    let mut recovered = DurableDb::open(
        MemStorage::from_image(image),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("snapshot alone suffices");
    assert_eq!(recovered.database(), &expected);

    // The log restarts cleanly.
    let p = parse(recovered.database(), &insert("bob", 20));
    recovered.execute(&p).expect("commits");
}

#[test]
fn conflicting_redeclaration_in_the_log_is_corruption() {
    let mut storage = MemStorage::new();
    drop(DurableDb::open(storage.clone(), schema(), StoreOptions::default()).expect("open"));

    // Forge a declare for an existing relation with a different schema.
    let record = WalRecord::Declare {
        name: "accounts".to_string(),
        schema: Schema::anon(&[DataType::Bool]),
    };
    storage
        .append(WAL_FILE, &record.encode_frame())
        .expect("raw append");

    let err = DurableDb::open(storage, DatabaseSchema::new(), StoreOptions::default())
        .expect_err("schema conflict must fail recovery");
    assert!(matches!(err, StoreError::CorruptWal(_)), "got {err:?}");
}
