//! Golden-file test pinning the on-disk WAL framing, byte for byte.
//!
//! The WAL is a durability contract: bytes written by this build must be
//! readable by every future build (or rejected with a version error, not
//! misread). This test renders a fixed record sequence as an annotated
//! hex dump and compares it against `tests/golden/wal_v1.hex`. Any diff
//! means the framing changed — which requires a record-version bump and a
//! deliberate re-bless with `MERA_BLESS=1`, never a silent drift.

use mera_core::prelude::*;
use mera_store::wal::{self, WalRecord};

/// A fixed, fully deterministic record sequence covering both kinds,
/// empty text, and multi-byte UTF-8.
fn fixture() -> Vec<u8> {
    let records = [
        WalRecord::Declare {
            name: "beer".to_string(),
            schema: Schema::named(&[("name", DataType::Str), ("alcperc", DataType::Real)]),
        },
        WalRecord::Commit {
            time: 1,
            text: "insert(beer, values (str, real) {('Grolsch', 5.0)})".to_string(),
        },
        WalRecord::Commit {
            time: 2,
            text: "insert(beer, values (str, real) {('it''s µ—béér', 6.5)})".to_string(),
        },
        WalRecord::Commit {
            time: 3,
            text: String::new(),
        },
    ];
    let mut bytes = wal::empty_wal();
    for r in &records {
        bytes.extend_from_slice(&r.encode_frame());
    }
    bytes
}

/// Classic 16-byte-per-line hex dump: offset, hex bytes, ASCII gutter.
fn hex_dump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("{:08x}  ", i * 16));
        for j in 0..16 {
            match chunk.get(j) {
                Some(b) => out.push_str(&format!("{b:02x} ")),
                None => out.push_str("   "),
            }
            if j == 7 {
                out.push(' ');
            }
        }
        out.push(' ');
        for &b in chunk {
            out.push(if (0x20..0x7f).contains(&b) {
                b as char
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

#[test]
fn wal_v1_framing_is_pinned() {
    let bytes = fixture();

    // The fixture must round-trip through the scanner before we pin it.
    let scanned = wal::scan(&bytes).expect("fixture is intact");
    assert_eq!(scanned.records.len(), 4);
    assert_eq!(scanned.valid_len, bytes.len() as u64);

    let actual = hex_dump(&bytes);
    if std::env::var_os("MERA_BLESS").is_some() {
        let path = format!("{}/tests/golden/wal_v1.hex", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let golden = include_str!("golden/wal_v1.hex");
    assert_eq!(
        actual, golden,
        "\n-- WAL byte layout diverges from tests/golden/wal_v1.hex --\n\
         The on-disk format is a compatibility contract: if this change is\n\
         intentional, bump RECORD_VERSION and re-bless with MERA_BLESS=1.\n\
         actual:\n{actual}"
    );
}
