//! Crash-at-every-point recovery matrix for materialized views.
//!
//! The same discipline as `crash_matrix.rs`, aimed at the view subsystem:
//! a workload that declares base relations, creates two materialized
//! views (one of them a join + group-by), churns the bases with insert
//! and delete commits, and checkpoints mid-stream, runs against the
//! fault-injecting [`MemStorage`] at **every** write budget from 0 to the
//! fault-free total. After each simulated crash the surviving bytes are
//! rebooted, and the recovered views must equal — tuple for tuple — the
//! views a shadow *volatile* engine (database + in-memory `ViewSet`,
//! incrementally maintained) holds at the matching durable prefix.
//!
//! This pins down two properties at once: the WAL's `DeclareView` records
//! survive torn tails and checkpoints, and recovery's replay-with-views
//! reconstructs exactly what incremental maintenance built the first time.

use std::collections::BTreeMap;

use mera_core::prelude::*;
use mera_expr::RelExpr;
use mera_lang::Lowerer;
use mera_store::{DurableDb, MemStorage, StoreError, StoreOptions};
use mera_txn::{run_transaction_with_views, ConstraintSet, Outcome, Program, ViewSet};

/// One step of the workload.
enum Op {
    Declare(&'static str, fn() -> Schema),
    /// `view name = text` — a durable view definition.
    CreateView(&'static str, &'static str),
    /// XRA program text expected to commit.
    Commit(&'static str),
    /// XRA program text expected to abort (division by zero).
    Abort(&'static str),
    Checkpoint,
}

fn orders_schema() -> Schema {
    Schema::named(&[("cust", DataType::Int), ("amount", DataType::Int)])
}

fn customers_schema() -> Schema {
    Schema::named(&[("id", DataType::Int), ("region", DataType::Str)])
}

/// Churn against two base relations feeding a join + group-by view and a
/// selection view, with view creation *between* commits, deletes that
/// retract view rows (group deaths included), and a checkpoint followed
/// by more churn — so recovery exercises snapshot + re-seeded
/// `DeclareView` records + a live log tail together.
fn workload() -> Vec<Op> {
    vec![
        Op::Declare("orders", orders_schema),
        Op::Declare("customers", customers_schema),
        Op::Commit("insert(customers, values (int, str) {(1, 'north'), (2, 'south')})"),
        Op::Commit("insert(orders, values (int, int) {(1, 10), (1, 5), (2, 7)})"),
        Op::CreateView(
            "region_totals",
            "groupby[(%4), SUM, %2](join[(%1 = %3)](orders, customers))",
        ),
        Op::CreateView("big_orders", "select[(%2 > 6)](orders)"),
        Op::Commit("insert(orders, values (int, int) {(2, 9), (1, 1)})"),
        Op::Abort("?project[(%2 / 0)](orders)"),
        Op::Commit("delete(orders, select[(%1 = 2)](orders))"),
        Op::Checkpoint,
        Op::Commit("insert(orders, values (int, int) {(2, 20)})"),
        Op::Commit("update(orders, select[(%2 = 10)](orders), (%1, %2 + 1))"),
        Op::Commit("delete(orders, select[(%1 = 1)](orders))"),
    ]
}

fn parse(db: &Database, text: &str) -> Program {
    let parsed = mera_lang::parse_program(text).expect("workload text parses");
    let mut lowerer = Lowerer::new(db.schema());
    lowerer
        .lower_program(&parsed)
        .expect("workload text lowers")
}

fn parse_rel(db: &Database, text: &str) -> RelExpr {
    let parsed = mera_lang::parse_rel(text).expect("view text parses");
    let lowerer = Lowerer::new(db.schema());
    lowerer.lower_rel(&parsed).expect("view text lowers")
}

/// The expected contents of every view at one durable event boundary.
type ViewImage = BTreeMap<String, Relation>;

fn view_image(views: &ViewSet) -> ViewImage {
    views
        .iter()
        .map(|v| (v.name().to_owned(), v.data().as_ref().clone()))
        .collect()
}

/// Applies a committed program to the shadow volatile engine — database
/// *and* incrementally maintained views — at the exact logical time the
/// durable run committed it.
fn shadow_commit(
    shadow: &mut Database,
    shadow_views: &mut ViewSet,
    program: &Program,
    committed_at: u64,
) {
    shadow
        .advance_time_to(committed_at.saturating_sub(1))
        .expect("commit times increase");
    let config = mera_txn::ExecConfig {
        analyze: false,
        ..Default::default()
    };
    let (next, outcome) = run_transaction_with_views(
        shadow,
        Some(shadow_views),
        program,
        config,
        None,
        &ConstraintSet::new(),
    );
    assert!(
        matches!(outcome, Outcome::Committed(_)),
        "shadow replay of a committed program must commit"
    );
    *shadow = next;
}

/// Runs the workload against `storage`, stopping at the first storage
/// failure. Returns the oracle: `(units-at-event, db, views)` for every
/// durable event that completed.
fn drive(storage: MemStorage) -> Vec<(u64, Database, ViewImage)> {
    let mut states = vec![(0, Database::new(DatabaseSchema::new()), ViewImage::new())];
    let mut shadow = Database::new(DatabaseSchema::new());
    let mut shadow_views = ViewSet::new();

    let mut durable = match DurableDb::open(
        storage.clone(),
        DatabaseSchema::new(),
        StoreOptions::default(),
    ) {
        Ok(d) => d,
        Err(_) => return states, // crashed during creation
    };
    states.push((
        storage.units_written(),
        shadow.clone(),
        view_image(&shadow_views),
    ));

    for op in workload() {
        let is_abort = matches!(op, Op::Abort(_));
        let result: Result<(), StoreError> = match op {
            Op::Declare(name, schema) => durable
                .add_relation(RelationSchema::new(name, schema()))
                .map(|()| {
                    shadow
                        .add_relation(RelationSchema::new(name, schema()))
                        .expect("shadow declare");
                }),
            Op::CreateView(name, text) => {
                let expr = parse_rel(durable.database(), text);
                durable.create_view(name, expr.clone()).map(|_| {
                    let config = mera_txn::ExecConfig {
                        analyze: false,
                        ..Default::default()
                    };
                    shadow_views
                        .create(name, expr, &shadow, config)
                        .expect("shadow view creation");
                })
            }
            Op::Commit(text) => {
                let program = parse(durable.database(), text);
                durable.execute(&program).map(|_| {
                    shadow_commit(
                        &mut shadow,
                        &mut shadow_views,
                        &program,
                        durable.database().time(),
                    );
                })
            }
            Op::Abort(text) => {
                let program = parse(durable.database(), text);
                match durable.execute(&program) {
                    Err(StoreError::TransactionAborted(_)) => Ok(()), // not a durable event
                    Err(other) => Err(other),
                    Ok(_) => panic!("workload abort op committed"),
                }
            }
            Op::Checkpoint => durable.checkpoint(),
        };
        match result {
            Ok(()) => {
                if !is_abort {
                    states.push((
                        storage.units_written(),
                        shadow.clone(),
                        view_image(&shadow_views),
                    ));
                }
            }
            Err(_) => break, // crashed: everything after this fails too
        }
    }
    states
}

#[test]
fn recovered_views_equal_shadow_views_at_every_crash_point() {
    // Fault-free pass: build the oracle and find the total write volume.
    let clean = MemStorage::new();
    let oracle = drive(clean.clone());
    let total = clean.units_written();
    assert_eq!(
        oracle.len(),
        14, // pre-open + open + 2 declares + 2 views + 7 commits + 1 checkpoint
        "fault-free run must complete every durable event"
    );
    let (_, final_db, final_views) = oracle.last().expect("events ran");
    assert_eq!(final_views.len(), 2);
    // sanity: the final delete kills the whole 'north' group, leaving
    // only customer 2's post-checkpoint order
    let totals = &final_views["region_totals"];
    assert_eq!(totals.multiplicity(&mera_core::tuple!["south", 20_i64]), 1);
    assert_eq!(totals.len(), 1);

    // Fault-free reboot: full image recovers state and views exactly.
    let recovered = DurableDb::open(
        MemStorage::from_image(clean.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("clean recovery");
    assert_eq!(recovered.database(), final_db);
    assert_eq!(view_image(recovered.views()), *final_views);

    // The matrix: crash after every single write unit.
    for budget in 0..=total {
        let storage = MemStorage::with_budget(budget);
        let _ = drive(storage.clone());

        let recovered = DurableDb::open(
            MemStorage::from_image(storage.image()),
            DatabaseSchema::new(),
            StoreOptions::default(),
        )
        .unwrap_or_else(|e| panic!("recovery after crash at unit {budget} failed: {e}"));

        let (_, expected_db, expected_views) = oracle
            .iter()
            .rev()
            .find(|(mark, _, _)| *mark <= budget)
            .expect("oracle is seeded with the zero-mark state");
        assert_eq!(
            recovered.database(),
            expected_db,
            "crash at write unit {budget}/{total}: base state diverged"
        );
        assert_eq!(
            view_image(recovered.views()),
            *expected_views,
            "crash at write unit {budget}/{total}: recovered views are not \
             the incrementally-maintained views at that durable prefix"
        );
    }
}
