//! Integrity constraints — the companion topic the paper scopes out
//! ("integrity constraints are not discussed in this paper … interested
//! readers are referred to \[11\]", Grefen's *Integrity Control in Parallel
//! Database Systems*). This module implements the transaction-time
//! enforcement model from that line of work: constraints are predicates
//! over database states, checked at the commit point; a violating
//! transaction aborts, preserving the §4.3 atomicity property.
//!
//! Three constraint forms cover the classic cases:
//!
//! * [`Constraint::PrimaryKey`] — in the bag model this is *two* conditions:
//!   key values are unique across distinct tuples **and** no tuple has
//!   multiplicity > 1 (a duplicated row duplicates its key),
//! * [`Constraint::ForeignKey`] — set-containment of key projections,
//! * [`Constraint::Check`] — a per-tuple predicate (domain constraints like
//!   `alcperc >= 0`).

use std::fmt;

use mera_core::prelude::*;
use mera_expr::ScalarExpr;
use rustc_hash::FxHashSet;

/// One declarative integrity constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// The listed attributes form a primary key of the relation.
    PrimaryKey {
        /// Constrained relation.
        relation: String,
        /// Key attribute indexes (1-based, duplicate-free).
        attrs: Vec<usize>,
    },
    /// The listed attributes reference a key of another relation.
    ForeignKey {
        /// Referencing relation.
        relation: String,
        /// Referencing attribute indexes (1-based).
        attrs: Vec<usize>,
        /// Referenced relation.
        references: String,
        /// Referenced attribute indexes (1-based, same arity as `attrs`).
        ref_attrs: Vec<usize>,
    },
    /// Every tuple of the relation satisfies the predicate.
    Check {
        /// Constrained relation.
        relation: String,
        /// A boolean expression over the relation's schema.
        predicate: ScalarExpr,
    },
}

/// A constraint violation: which constraint, and a human-readable witness.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The name the constraint was registered under.
    pub constraint: String,
    /// What went wrong, including a witness tuple where applicable.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint '{}' violated: {}",
            self.constraint, self.detail
        )
    }
}

/// A named set of constraints, validated against database states.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    constraints: Vec<(String, Constraint)>,
}

impl ConstraintSet {
    /// The empty set (validates everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a constraint under a name, validating it against the
    /// database schema (unknown relations/attributes and ill-typed check
    /// predicates are rejected at declaration time, not at commit time).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        constraint: Constraint,
        schema: &DatabaseSchema,
    ) -> CoreResult<()> {
        match &constraint {
            Constraint::PrimaryKey { relation, attrs } => {
                let s = schema.get(relation)?;
                let list = AttrList::new_unique(attrs.clone())?;
                list.check_arity(s.arity())?;
            }
            Constraint::ForeignKey {
                relation,
                attrs,
                references,
                ref_attrs,
            } => {
                let s = schema.get(relation)?;
                let r = schema.get(references)?;
                let al = AttrList::new_unique(attrs.clone())?;
                al.check_arity(s.arity())?;
                let rl = AttrList::new_unique(ref_attrs.clone())?;
                rl.check_arity(r.arity())?;
                if attrs.len() != ref_attrs.len() {
                    return Err(CoreError::TypeError(format!(
                        "foreign key arity mismatch: {} vs {}",
                        attrs.len(),
                        ref_attrs.len()
                    )));
                }
                for (&a, &ra) in attrs.iter().zip(ref_attrs) {
                    if s.dtype(a)? != r.dtype(ra)? {
                        return Err(CoreError::TypeError(format!(
                            "foreign key domain mismatch on %{a} vs %{ra}"
                        )));
                    }
                }
            }
            Constraint::Check {
                relation,
                predicate,
            } => {
                let s = schema.get(relation)?;
                let t = predicate.infer_type(s)?;
                if t != DataType::Bool {
                    return Err(CoreError::TypeError(format!(
                        "check constraint has type {t}, expected bool"
                    )));
                }
            }
        }
        self.constraints.push((name.into(), constraint));
        Ok(())
    }

    /// Builder form of [`ConstraintSet::add`].
    pub fn with(
        mut self,
        name: impl Into<String>,
        constraint: Constraint,
        schema: &DatabaseSchema,
    ) -> CoreResult<Self> {
        self.add(name, constraint, schema)?;
        Ok(self)
    }

    /// Number of registered constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are registered.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Validates a database state, returning the first violation.
    pub fn validate(&self, db: &Database) -> CoreResult<Result<(), Violation>> {
        for (name, c) in &self.constraints {
            if let Some(detail) = check_one(c, db)? {
                return Ok(Err(Violation {
                    constraint: name.clone(),
                    detail,
                }));
            }
        }
        Ok(Ok(()))
    }
}

/// Checks one constraint, returning a violation witness if any.
fn check_one(c: &Constraint, db: &Database) -> CoreResult<Option<String>> {
    match c {
        Constraint::PrimaryKey { relation, attrs } => {
            let rel = db.relation(relation)?;
            let list = AttrList::new_unique(attrs.clone())?;
            let mut seen: FxHashSet<Tuple> = FxHashSet::default();
            for (t, m) in rel.iter() {
                if m > 1 {
                    return Ok(Some(format!("tuple {t} appears {m} times in {relation}")));
                }
                let key = t.project(&list)?;
                if !seen.insert(key.clone()) {
                    return Ok(Some(format!("duplicate key {key} in {relation}")));
                }
            }
            Ok(None)
        }
        Constraint::ForeignKey {
            relation,
            attrs,
            references,
            ref_attrs,
        } => {
            let rel = db.relation(relation)?;
            let target = db.relation(references)?;
            let al = AttrList::new(attrs.clone())?;
            let rl = AttrList::new(ref_attrs.clone())?;
            let known: FxHashSet<Tuple> = target
                .support()
                .map(|t| t.project(&rl))
                .collect::<CoreResult<_>>()?;
            for t in rel.support() {
                let key = t.project(&al)?;
                if !known.contains(&key) {
                    return Ok(Some(format!(
                        "{relation} references {key}, absent from {references}"
                    )));
                }
            }
            Ok(None)
        }
        Constraint::Check {
            relation,
            predicate,
        } => {
            let rel = db.relation(relation)?;
            for t in rel.support() {
                if !predicate.eval_predicate(t)? {
                    return Ok(Some(format!("tuple {t} fails {predicate} in {relation}")));
                }
            }
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use std::sync::Arc;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[("name", DataType::Str), ("country", DataType::Str)]),
            )
            .expect("fresh")
    }

    fn db_with(beers: Vec<(Tuple, u64)>, breweries: Vec<Tuple>) -> Database {
        let mut db = Database::new(schema());
        let bs = Arc::clone(db.schema().get("beer").expect("declared"));
        db.replace("beer", Relation::from_counted(bs, beers).expect("typed"))
            .expect("replace");
        let ws = Arc::clone(db.schema().get("brewery").expect("declared"));
        db.replace(
            "brewery",
            Relation::from_tuples(ws, breweries).expect("typed"),
        )
        .expect("replace");
        db
    }

    fn constraints() -> ConstraintSet {
        let s = schema();
        ConstraintSet::new()
            .with(
                "beer_pk",
                Constraint::PrimaryKey {
                    relation: "beer".into(),
                    attrs: vec![1, 2],
                },
                &s,
            )
            .expect("valid pk")
            .with(
                "beer_brewery_fk",
                Constraint::ForeignKey {
                    relation: "beer".into(),
                    attrs: vec![2],
                    references: "brewery".into(),
                    ref_attrs: vec![1],
                },
                &s,
            )
            .expect("valid fk")
            .with(
                "alcperc_nonnegative",
                Constraint::Check {
                    relation: "beer".into(),
                    predicate: ScalarExpr::attr(3).cmp(mera_expr::CmpOp::Ge, ScalarExpr::real(0.0)),
                },
                &s,
            )
            .expect("valid check")
    }

    #[test]
    fn valid_state_passes() {
        let db = db_with(
            vec![
                (tuple!["A", "X", 5.0_f64], 1),
                (tuple!["B", "X", 4.0_f64], 1),
            ],
            vec![tuple!["X", "NL"]],
        );
        assert!(constraints().validate(&db).expect("checks run").is_ok());
    }

    #[test]
    fn primary_key_rejects_duplicate_rows() {
        // the bag model makes this failure mode possible: same row twice
        let db = db_with(
            vec![(tuple!["A", "X", 5.0_f64], 2)],
            vec![tuple!["X", "NL"]],
        );
        let v = constraints()
            .validate(&db)
            .expect("checks run")
            .unwrap_err();
        assert_eq!(v.constraint, "beer_pk");
        assert!(v.detail.contains("2 times"), "{v}");
    }

    #[test]
    fn primary_key_rejects_duplicate_keys() {
        let db = db_with(
            vec![
                (tuple!["A", "X", 5.0_f64], 1),
                (tuple!["A", "X", 6.0_f64], 1), // same (name, brewery) key
            ],
            vec![tuple!["X", "NL"]],
        );
        let v = constraints()
            .validate(&db)
            .expect("checks run")
            .unwrap_err();
        assert_eq!(v.constraint, "beer_pk");
        assert!(v.detail.contains("duplicate key"), "{v}");
    }

    #[test]
    fn foreign_key_rejects_dangling_reference() {
        let db = db_with(
            vec![(tuple!["A", "Ghost", 5.0_f64], 1)],
            vec![tuple!["X", "NL"]],
        );
        let v = constraints()
            .validate(&db)
            .expect("checks run")
            .unwrap_err();
        assert_eq!(v.constraint, "beer_brewery_fk");
        assert!(v.detail.contains("Ghost"), "{v}");
    }

    #[test]
    fn check_constraint_rejects_bad_tuple() {
        let db = db_with(
            vec![(tuple!["A", "X", -1.0_f64], 1)],
            vec![tuple!["X", "NL"]],
        );
        let v = constraints()
            .validate(&db)
            .expect("checks run")
            .unwrap_err();
        assert_eq!(v.constraint, "alcperc_nonnegative");
    }

    #[test]
    fn declaration_time_validation() {
        let s = schema();
        // unknown relation
        assert!(ConstraintSet::new()
            .add(
                "x",
                Constraint::PrimaryKey {
                    relation: "ale".into(),
                    attrs: vec![1]
                },
                &s
            )
            .is_err());
        // attribute out of range
        assert!(ConstraintSet::new()
            .add(
                "x",
                Constraint::PrimaryKey {
                    relation: "beer".into(),
                    attrs: vec![9]
                },
                &s
            )
            .is_err());
        // fk domain mismatch (str vs real)
        assert!(ConstraintSet::new()
            .add(
                "x",
                Constraint::ForeignKey {
                    relation: "beer".into(),
                    attrs: vec![3],
                    references: "brewery".into(),
                    ref_attrs: vec![1]
                },
                &s
            )
            .is_err());
        // non-boolean check
        assert!(ConstraintSet::new()
            .add(
                "x",
                Constraint::Check {
                    relation: "beer".into(),
                    predicate: ScalarExpr::attr(3)
                },
                &s
            )
            .is_err());
    }

    #[test]
    fn empty_set_is_vacuous() {
        let db = db_with(vec![(tuple!["A", "Ghost", -9.0_f64], 7)], vec![]);
        let set = ConstraintSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.validate(&db).expect("checks run").is_ok());
    }
}
