//! Statement and program execution over intermediate database states.
//!
//! §4.3: during the execution of a transaction's statements the database
//! passes through *intermediate states* `D_t.0 … D_t.n` which "are not
//! normal database states as they may contain temporary relations defined
//! by assignment statements". [`WorkingState`] is exactly that: the base
//! relations plus a temporary namespace, usable as a relation provider for
//! expression evaluation.

use std::collections::BTreeMap;
use std::sync::Arc;

use mera_core::prelude::*;
use mera_eval::provider::RelationProvider;
use mera_eval::{Engine, EngineKind, ExecOptions, IndexJoinHints, IndexSet, KeySet};
use mera_expr::rel::RelExpr;
use mera_opt::{choose_access_paths, CatalogStats, Optimizer};

use crate::statement::{Program, Statement};
use crate::views::{DeltaMap, ViewSet};

/// How statements evaluate their expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Run the rule-based optimizer before evaluation.
    pub optimize: bool,
    /// Run the static analyzer over the whole program before the first
    /// statement executes ([`run_transaction_checked`] only): programs
    /// with error-severity diagnostics abort up front, before any
    /// intermediate state is built.
    pub analyze: bool,
    /// Which evaluator runs the statements' expressions (the batched
    /// physical engine by default; [`EngineKind::Reference`] is the slow
    /// oracle used for differential testing).
    pub engine: EngineKind,
    /// Tuning knobs (batch size, partitions) passed to the engine.
    pub options: ExecOptions,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            optimize: true,
            analyze: true,
            engine: EngineKind::default(),
            options: ExecOptions::default(),
        }
    }
}

impl ExecConfig {
    /// The default configuration with a different evaluator.
    pub fn with_engine(engine: EngineKind) -> Self {
        ExecConfig {
            engine,
            ..Self::default()
        }
    }
}

/// An intermediate state `D_t.i`: the database plus temporaries, plus
/// (when materialized views exist) read-only view snapshots and the
/// signed deltas the transaction has accumulated so far.
#[derive(Debug, Clone)]
pub struct WorkingState {
    /// The (mutable copy of the) database state.
    pub db: Database,
    /// Temporary relations bound by assignment statements.
    pub temps: BTreeMap<String, Relation>,
    /// Pre-transaction snapshots of materialized views, readable by
    /// queries exactly like base relations (but never writable).
    pub views: BTreeMap<String, Arc<Relation>>,
    /// Signed per-relation deltas of *every* DML statement executed so
    /// far — the single input that drives view maintenance, statistics
    /// maintenance and index maintenance at commit time.
    pub deltas: DeltaMap,
    /// Pre-transaction table statistics, when the caller maintains them:
    /// every statement plans cost-based (join reordering, cost-gated δ
    /// placement, access-path selection) against these.
    pub stats: Option<Arc<CatalogStats>>,
    /// Pre-transaction secondary indexes, when the caller maintains them:
    /// point selections and hinted equi-joins execute through them.
    pub indexes: Option<Arc<IndexSet>>,
    /// Pre-transaction key constraints, when the caller maintains them:
    /// the optimizer grounds its property inference (duplicate-freeness,
    /// candidate keys, FDs) in keys of relations the transaction has not
    /// yet dirtied.
    pub keys: Option<Arc<KeySet>>,
}

impl WorkingState {
    /// Starts from a snapshot of a database state (`D_t.0 = D_t`), with
    /// no views, statistics or indexes.
    pub fn new(db: Database) -> Self {
        WorkingState {
            db,
            temps: BTreeMap::new(),
            views: BTreeMap::new(),
            deltas: DeltaMap::new(),
            stats: None,
            indexes: None,
            keys: None,
        }
    }

    /// Starts from a database snapshot plus the current materialized
    /// views: view contents become readable during the transaction.
    pub fn with_views(db: Database, views: &ViewSet) -> Self {
        WorkingState {
            views: views.snapshots(),
            ..WorkingState::new(db)
        }
    }

    /// [`WorkingState::with_views`] plus the maintained statistics and
    /// secondary indexes — the transaction manager's entry point: every
    /// statement of the transaction plans cost-based and index-aware.
    pub fn with_catalog(
        db: Database,
        views: &ViewSet,
        stats: Option<Arc<CatalogStats>>,
        indexes: Option<Arc<IndexSet>>,
        keys: Option<Arc<KeySet>>,
    ) -> Self {
        WorkingState {
            stats,
            indexes,
            keys,
            ..WorkingState::with_views(db, views)
        }
    }

    /// The declared keys as an analyzer [`mera_analyze::KeyEnv`],
    /// restricted to relations this transaction has not dirtied: a key
    /// describes the committed state `D_t`, and mid-transaction writes may
    /// transiently violate it (delete-then-insert of the same key point),
    /// so dirtied relations contribute no facts.
    pub(crate) fn key_env(&self) -> mera_analyze::KeyEnv {
        let mut env = mera_analyze::KeyEnv::new();
        if let Some(ks) = &self.keys {
            for (relation, attrs) in ks.definitions() {
                if !self.dirtied(&relation) {
                    env.declare(relation, attrs);
                }
            }
        }
        env
    }

    /// Reads a relation: temporaries first, then database relations, then
    /// materialized views (a temporary may never collide with a database
    /// or view name, enforced on assignment, so the order is immaterial —
    /// it simply avoids extra lookups for temp-heavy programs).
    pub fn relation(&self, name: &str) -> CoreResult<&Relation> {
        if let Some(r) = self.temps.get(name) {
            return Ok(r);
        }
        match self.db.relation(name) {
            Ok(r) => Ok(r),
            Err(e) => match self.views.get(name) {
                Some(v) => Ok(v),
                None => Err(e),
            },
        }
    }

    /// Records `rel` into the delta of `relation` with the given sign.
    /// Every mutated relation is captured — views, statistics and index
    /// maintenance all consume the same signed deltas at commit, so the
    /// capture is unconditional (and O(|delta|), never O(|relation|)).
    fn capture(&mut self, relation: &str, rel: &Relation, positive: bool) -> CoreResult<()> {
        let delta = self.deltas.entry(relation.to_owned()).or_default();
        for (t, m) in rel.iter() {
            delta.insert_unsigned(t.clone(), m, positive)?;
        }
        Ok(())
    }

    /// True when this transaction has already changed `relation` — the
    /// pre-transaction indexes no longer describe it.
    pub(crate) fn dirtied(&self, relation: &str) -> bool {
        self.deltas.get(relation).is_some_and(|d| !d.is_empty())
    }
}

impl RelationProvider for WorkingState {
    fn relation(&self, name: &str) -> CoreResult<&Relation> {
        WorkingState::relation(self, name)
    }
}

/// The result of executing one program: query outputs in statement order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Outputs {
    /// One relation per executed `?E` statement.
    pub queries: Vec<Relation>,
}

/// Executes one statement against a working state (Definition 4.1).
pub fn execute_statement(
    state: &mut WorkingState,
    stmt: &Statement,
    config: ExecConfig,
    outputs: &mut Outputs,
) -> CoreResult<()> {
    match stmt {
        Statement::Insert { relation, expr } => {
            let value = eval_expr(state, expr, config)?;
            let current = state.db.relation(relation)?;
            let next = current.union(&value)?;
            state.capture(relation, &value, true)?;
            state.db.replace(relation, next)
        }
        Statement::Delete { relation, expr } => {
            let value = eval_expr(state, expr, config)?;
            let current = state.db.relation(relation)?;
            // what `−` actually removes is min(current, value) per tuple
            // (Definition 3.2), i.e. the bag intersection — capture that,
            // not the requested amount
            let removed = current.intersection(&value)?;
            let next = current.difference(&value)?;
            state.capture(relation, &removed, false)?;
            state.db.replace(relation, next)
        }
        Statement::Update {
            relation,
            expr,
            exprs,
        } => {
            let value = eval_expr(state, expr, config)?;
            let current = state.db.relation(relation)?.clone();
            // schema-preservation check on the expression list (the
            // definition's note: π̄ₐ "results a multi-set of the same
            // schema as its operand")
            let target_schema = Arc::clone(current.schema());
            let updated_schema = {
                let mut attrs = Vec::with_capacity(exprs.len());
                for e in exprs {
                    attrs.push(Attribute::anon(e.infer_type(&target_schema)?));
                }
                Schema::new(attrs)
            };
            if !updated_schema.same_types(&target_schema) {
                return Err(CoreError::SchemaMismatch {
                    expected: target_schema.to_string(),
                    found: updated_schema.to_string(),
                });
            }
            // R ← (R − E) ⊎ π̄ₐ(R ∩ E)
            let touched = current.intersection(&value)?;
            let kept = current.difference(&value)?;
            let rewritten = touched.map_tuples(target_schema, |t| {
                let vals: CoreResult<Vec<Value>> = exprs.iter().map(|e| e.eval(t)).collect();
                Ok(Tuple::new(vals?))
            })?;
            state.capture(relation, &touched, false)?;
            state.capture(relation, &rewritten, true)?;
            state.db.replace(relation, kept.union(&rewritten)?)
        }
        Statement::Assign { name, expr } => {
            if state.db.schema().contains(name) || state.views.contains_key(name) {
                return Err(CoreError::DuplicateRelation(name.clone()));
            }
            let value = eval_expr(state, expr, config)?;
            state.temps.insert(name.clone(), value);
            Ok(())
        }
        Statement::Query { expr } => {
            let value = eval_expr(state, expr, config)?;
            outputs.queries.push(value);
            Ok(())
        }
    }
}

/// Statically analyzes a whole program against a database state: schemas
/// come from the catalog, emptiness facts ([`mera_analyze::Card`]) from
/// the live relation instances. Returns every diagnostic; the program is
/// rejectable iff [`mera_analyze::has_errors`].
pub fn analyze_program(db: &Database, program: &Program) -> Vec<mera_analyze::Diagnostic> {
    analyze_program_with_views(db, &ViewSet::new(), program)
}

/// [`analyze_program`] over a catalog that also resolves materialized
/// views: view names scan like relations (with their live emptiness
/// facts), while DML targeting a view is rejected with `E0302` — views
/// are refreshed from their base relations, never written directly.
pub fn analyze_program_with_views(
    db: &Database,
    views: &ViewSet,
    program: &Program,
) -> Vec<mera_analyze::Diagnostic> {
    let mut cards: mera_analyze::CardEnv = db
        .relation_names()
        .filter_map(|n| {
            let rel = db.relation(n).ok()?;
            Some((n.to_owned(), mera_analyze::Card::of_relation(rel)))
        })
        .collect();
    for v in views.iter() {
        cards.insert(
            v.name().to_owned(),
            mera_analyze::Card::of_relation(v.data()),
        );
    }
    // DML-on-view pre-pass: a write target that names a view is an error
    // regardless of anything the plan analyzer would say
    let mut diags = Vec::new();
    for (i, stmt) in program.statements.iter().enumerate() {
        let (target, kind) = match stmt {
            Statement::Insert { relation, .. } => (relation, "insert"),
            Statement::Delete { relation, .. } => (relation, "delete"),
            Statement::Update { relation, .. } => (relation, "update"),
            Statement::Assign { name, .. } => (name, "assignment"),
            Statement::Query { .. } => continue,
        };
        if views.contains(target) {
            diags.push(
                mera_analyze::Diagnostic::new(
                    mera_analyze::Code::DmlOnView,
                    mera_analyze::Span::root(kind).in_stmt(i),
                    format!("{kind} targets the materialized view `{target}`"),
                )
                .with_note("views are maintained from their base relations and cannot be written"),
            );
        }
    }
    let provider = DbAndViewSchemas {
        db: db.schema(),
        views,
    };
    diags.extend(mera_analyze::analyze_program(
        program.statements.iter().map(Statement::analyzer_view),
        &provider,
        &cards,
    ));
    diags
}

/// Schema catalog layering materialized views over the database schema.
struct DbAndViewSchemas<'a> {
    db: &'a DatabaseSchema,
    views: &'a ViewSet,
}

impl mera_expr::SchemaProvider for DbAndViewSchemas<'_> {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        if let Some(v) = self.views.get(name) {
            return Ok(Arc::clone(v.schema()));
        }
        Ok(Arc::clone(self.db.get(name)?))
    }
}

/// Executes a whole program in order, collecting query outputs.
pub fn execute_program(
    state: &mut WorkingState,
    program: &Program,
    config: ExecConfig,
) -> CoreResult<Outputs> {
    let mut outputs = Outputs::default();
    for stmt in &program.statements {
        execute_statement(state, stmt, config, &mut outputs)?;
    }
    Ok(outputs)
}

/// Evaluates one algebra expression against the working state, honouring
/// the execution configuration.
///
/// With statistics attached to the state the optimizer runs cost-based
/// (join reordering, cost-gated δ placement); with indexes attached the
/// engine takes index access paths — point lookups always, equi-joins
/// when [`choose_access_paths`] ranks the probe cheaper than a hash
/// build. An index describes the *pre-transaction* state, so once the
/// transaction has written an indexed relation the engine falls back to
/// scan-based plans for the rest of the program: slower, never wrong.
pub fn eval_expr(state: &WorkingState, expr: &RelExpr, config: ExecConfig) -> CoreResult<Relation> {
    let provider = WorkingSchemas(state);
    let expr_storage;
    let expr = if config.optimize {
        let mut optimizer = Optimizer::standard();
        if let Some(stats) = &state.stats {
            optimizer = optimizer.with_stats(Arc::clone(stats));
        }
        let keys = state.key_env();
        if !keys.is_empty() {
            optimizer = optimizer.with_keys(keys);
        }
        expr_storage = optimizer.optimize(expr, &provider)?.expr;
        &expr_storage
    } else {
        expr
    };
    let mut engine = Engine::new(config.engine).with_options(config.options);
    if let Some(indexes) = &state.indexes {
        let defs = indexes.definitions();
        if !defs.is_empty() && !defs.iter().any(|(r, _)| state.dirtied(r)) {
            let hints = match &state.stats {
                Some(stats) => choose_access_paths(expr, stats, &defs, &provider)?,
                None => IndexJoinHints::default(),
            };
            engine = engine
                .with_shared_indexes(Arc::clone(indexes))
                .with_index_hints(hints);
        }
    }
    engine.run(expr, state)
}

/// Schema-provider view of a working state (temporaries included).
pub struct WorkingSchemas<'a>(pub &'a WorkingState);

impl mera_expr::SchemaProvider for WorkingSchemas<'_> {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        Ok(Arc::clone(self.0.relation(name)?.schema()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::ScalarExpr;

    fn beer_db() -> Database {
        let schema = DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh");
        let mut db = Database::new(schema);
        let bs = Arc::clone(db.schema().get("beer").expect("declared"));
        db.replace(
            "beer",
            Relation::from_tuples(
                bs,
                vec![
                    tuple!["Grolsch", "Grolsche", 5.0_f64],
                    tuple!["GuinekenPils", "Guineken", 5.0_f64],
                    tuple!["GuinekenBock", "Guineken", 6.0_f64],
                ],
            )
            .expect("typed"),
        )
        .expect("replace");
        db
    }

    fn run(db: Database, program: Program) -> (WorkingState, Outputs) {
        let mut state = WorkingState::new(db);
        let out =
            execute_program(&mut state, &program, ExecConfig::default()).expect("program executes");
        (state, out)
    }

    #[test]
    fn insert_is_bag_union() {
        let db = beer_db();
        let new_row = relation_of(
            Schema::named(&[
                ("name", DataType::Str),
                ("brewery", DataType::Str),
                ("alcperc", DataType::Real),
            ]),
            vec![tuple!["Grolsch", "Grolsche", 5.0_f64]], // already present!
        )
        .expect("typed");
        let p = Program::single(Statement::insert("beer", RelExpr::values(new_row)));
        let (state, _) = run(db, p);
        // bag insert: the duplicate is *kept* (multiplicity 2)
        let beer = state.db.relation("beer").expect("present");
        assert_eq!(
            beer.multiplicity(&tuple!["Grolsch", "Grolsche", 5.0_f64]),
            2
        );
        assert_eq!(beer.len(), 4);
    }

    #[test]
    fn delete_is_bag_difference() {
        let db = beer_db();
        let p = Program::single(Statement::delete(
            "beer",
            RelExpr::scan("beer").select(ScalarExpr::attr(2).eq(ScalarExpr::str("Guineken"))),
        ));
        let (state, _) = run(db, p);
        assert_eq!(state.db.relation("beer").expect("present").len(), 1);
    }

    /// Example 4.1: Guineken raises the alcohol percentage of its beers by
    /// 10%.
    #[test]
    fn example_4_1_guineken_update() {
        let db = beer_db();
        let p = Program::single(Statement::update(
            "beer",
            RelExpr::scan("beer").select(ScalarExpr::attr(2).eq(ScalarExpr::str("Guineken"))),
            vec![
                ScalarExpr::attr(1),
                ScalarExpr::attr(2),
                ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)),
            ],
        ));
        let (state, _) = run(db, p);
        let beer = state.db.relation("beer").expect("present");
        assert_eq!(
            beer.multiplicity(&tuple!["GuinekenPils", "Guineken", 5.0 * 1.1]),
            1
        );
        assert_eq!(
            beer.multiplicity(&tuple!["GuinekenBock", "Guineken", 6.0 * 1.1]),
            1
        );
        // non-Guineken beers untouched
        assert_eq!(
            beer.multiplicity(&tuple!["Grolsch", "Grolsche", 5.0_f64]),
            1
        );
        assert_eq!(beer.len(), 3);
    }

    #[test]
    fn update_rejects_schema_changing_expression_list() {
        let db = beer_db();
        let p = Program::single(Statement::update(
            "beer",
            RelExpr::scan("beer"),
            vec![ScalarExpr::attr(1)], // drops two attributes
        ));
        let mut state = WorkingState::new(db);
        let err = execute_program(&mut state, &p, ExecConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::SchemaMismatch { .. }));
    }

    #[test]
    fn assignment_binds_temporary() {
        let db = beer_db();
        let p = Program::new()
            .then(Statement::assign(
                "strong",
                RelExpr::scan("beer")
                    .select(ScalarExpr::attr(3).cmp(mera_expr::CmpOp::Gt, ScalarExpr::real(5.5))),
            ))
            .then(Statement::query(RelExpr::scan("strong").project(&[1])));
        let (state, out) = run(db, p);
        assert_eq!(out.queries.len(), 1);
        assert_eq!(out.queries[0].multiplicity(&tuple!["GuinekenBock"]), 1);
        assert!(state.temps.contains_key("strong"));
        // the database itself is untouched
        assert_eq!(state.db.relation("beer").expect("present").len(), 3);
    }

    #[test]
    fn assignment_cannot_shadow_database_relation() {
        let db = beer_db();
        let p = Program::single(Statement::assign("beer", RelExpr::scan("beer")));
        let mut state = WorkingState::new(db);
        let err = execute_program(&mut state, &p, ExecConfig::default()).unwrap_err();
        assert_eq!(err, CoreError::DuplicateRelation("beer".into()));
    }

    #[test]
    fn query_has_no_database_effect() {
        let db = beer_db();
        let before = db.clone();
        let p = Program::single(Statement::query(RelExpr::scan("beer")));
        let (state, out) = run(db, p);
        assert_eq!(state.db, before);
        assert_eq!(out.queries[0].len(), 3);
    }

    #[test]
    fn reference_and_physical_configs_agree() {
        let program = Program::new()
            .then(Statement::assign("t", RelExpr::scan("beer").project(&[2])))
            .then(Statement::insert(
                "beer",
                RelExpr::scan("beer").select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.0))),
            ))
            .then(Statement::query(RelExpr::scan("beer").group_by(
                &[2],
                mera_expr::Aggregate::Cnt,
                1,
            )));
        let configs = [
            ExecConfig::with_engine(EngineKind::Physical),
            ExecConfig {
                optimize: false,
                ..ExecConfig::with_engine(EngineKind::Physical)
            },
            ExecConfig::with_engine(EngineKind::Reference),
            ExecConfig {
                optimize: false,
                ..ExecConfig::with_engine(EngineKind::Reference)
            },
            ExecConfig::with_engine(EngineKind::Parallel),
            ExecConfig::with_engine(EngineKind::Morsel),
            ExecConfig {
                optimize: false,
                ..ExecConfig::with_engine(EngineKind::Morsel)
            },
        ];
        let results: Vec<(Database, Outputs)> = configs
            .iter()
            .map(|&c| {
                let mut state = WorkingState::new(beer_db());
                let out = execute_program(&mut state, &program, c).expect("executes");
                (state.db, out)
            })
            .collect();
        for (db, out) in &results[1..] {
            assert_eq!(db, &results[0].0);
            assert_eq!(out, &results[0].1);
        }
    }
}
