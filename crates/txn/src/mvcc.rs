//! Multi-version concurrency control over the paper's logical-time axis.
//!
//! The paper (§2.3) already orders database states along a logical time
//! axis: a transaction maps `D_t` to `D_{t+1}`. This module makes that
//! axis concrete as a **version chain**: every committed state is
//! published as an immutable [`Version`] (base relations, materialized
//! views, statistics, indexes and key constraints — the full catalog a
//! reader needs), and any number of readers evaluate against a pinned
//! version without taking any lock beyond the `Arc` clone that pins it.
//!
//! Writers run **optimistically** (OCC, snapshot isolation):
//!
//! 1. [`MvccManager::prepare`] executes the program against a pinned
//!    snapshot, accumulating the same signed ℤ-multiplicity deltas
//!    (PR 7's [`SignedBag`] machinery) that drive view/statistics/index
//!    maintenance. No shared state is touched.
//! 2. [`MvccManager::try_commit`] takes the (short) commit lock and
//!    validates **first-committer-wins**: if any transaction committed
//!    since the snapshot wrote an overlapping relation — or, on keyed
//!    relations, an overlapping *key point* — the writer aborts with the
//!    typed [`AbortReason::Conflict`] and can simply retry. A validated
//!    writer's deltas are folded into the newest version (the algebraic
//!    footing: a transaction *is* its signed delta, and disjoint deltas
//!    commute in the ℤ-semiring), the catalog objects fold the same
//!    deltas exactly like the serial path, and the result is published
//!    as the next version.
//!
//! Read-only programs never enter the commit section at all: their
//! outputs are complete once evaluated against the snapshot, so they
//! neither tick logical time nor create versions — this is what lets
//! read throughput scale with reader count while writers proceed.
//!
//! A `durability` hook runs inside the commit section after validation
//! and before publication; the store layer uses it to append the WAL
//! record so that log order equals commit order (see
//! `mera-store`'s `ConcurrentDb`).

use std::collections::{BTreeMap, VecDeque};
use std::convert::Infallible;
use std::sync::Arc;

use mera_core::prelude::*;
use mera_eval::{IndexSet, KeySet};
use mera_expr::rel::RelExpr;
use mera_opt::CatalogStats;
use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashSet;

use crate::constraints::ConstraintSet;
use crate::exec::{
    analyze_program_with_views, execute_statement, ExecConfig, Outputs, WorkingState,
};
use crate::statement::Program;
use crate::transaction::{key_violation_diagnostic, AbortReason, DeclareKeyError, Outcome};
use crate::views::{CreateViewError, DeltaMap, TupleDelta, ViewSet};

/// One immutable committed state: the paper's `D_t` plus the derived
/// catalog objects that describe it. Readers pin a version with an `Arc`
/// clone and evaluate against it for as long as they like — published
/// versions are never mutated.
pub struct Version {
    /// Monotone publication counter. Distinct from logical time because
    /// DDL (new relations, views, indexes, keys) publishes a new version
    /// without ticking the transaction clock.
    seq: u64,
    db: Database,
    views: ViewSet,
    stats: Arc<CatalogStats>,
    indexes: Arc<IndexSet>,
    keys: Arc<KeySet>,
}

impl Version {
    /// The logical time of this committed state.
    pub fn time(&self) -> LogicalTime {
        self.db.time()
    }

    /// The publication sequence number (DDL publishes without ticking
    /// logical time, so this is the strictly-increasing version key).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The base relations.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The materialized views as of this version.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// The table statistics as of this version.
    pub fn stats(&self) -> &Arc<CatalogStats> {
        &self.stats
    }

    /// The secondary indexes as of this version.
    pub fn indexes(&self) -> &Arc<IndexSet> {
        &self.indexes
    }

    /// The key constraints as of this version.
    pub fn keys(&self) -> &Arc<KeySet> {
        &self.keys
    }

    /// The database schema extended with every view's schema — what user
    /// text (SQL, XRA) resolves names against at this version.
    pub fn catalog_schema(&self) -> DatabaseSchema {
        let mut schema = self.db.schema().clone();
        for v in self.views.iter() {
            let _ = schema.add(RelationSchema::new(
                v.name().to_owned(),
                v.schema().as_ref().clone(),
            ));
        }
        schema
    }

    fn working_state(&self) -> WorkingState {
        WorkingState::with_catalog(
            self.db.clone(),
            &self.views,
            Some(Arc::clone(&self.stats)),
            Some(Arc::clone(&self.indexes)),
            Some(Arc::clone(&self.keys)),
        )
    }
}

impl std::fmt::Debug for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Version")
            .field("seq", &self.seq)
            .field("time", &self.db.time())
            .field("relations", &self.db.schema().len())
            .finish_non_exhaustive()
    }
}

/// What one commit wrote, at the granularity conflict detection uses:
/// whole relations for unkeyed targets, per-key-point sets (the key
/// projection of every delta tuple) for keyed ones.
#[derive(Debug)]
enum RelWrites {
    /// The relation has no declared key: any concurrent writer to the
    /// same relation conflicts.
    Whole,
    /// Per declared key (sorted 1-based attrs), the touched key points.
    /// Two writers to the same relation commute iff their points are
    /// disjoint under every shared key.
    KeyPoints(BTreeMap<Vec<usize>, FxHashSet<Tuple>>),
}

#[derive(Debug, Default)]
struct WriteSet {
    relations: BTreeMap<String, RelWrites>,
}

impl WriteSet {
    /// Projects a transaction's deltas through the declared keys of each
    /// touched relation. Any structural surprise degrades to
    /// whole-relation granularity — conservative, never unsound.
    fn of(deltas: &DeltaMap, keys: &KeySet) -> WriteSet {
        let defs = keys.definitions();
        let mut relations = BTreeMap::new();
        for (name, delta) in deltas {
            if delta.is_empty() {
                continue;
            }
            let key_attrs: Vec<&Vec<usize>> = defs
                .iter()
                .filter(|(r, _)| r == name)
                .map(|(_, a)| a)
                .collect();
            let writes = if key_attrs.is_empty() {
                RelWrites::Whole
            } else {
                match Self::project_points(delta, &key_attrs) {
                    Some(points) => RelWrites::KeyPoints(points),
                    None => RelWrites::Whole,
                }
            };
            relations.insert(name.clone(), writes);
        }
        WriteSet { relations }
    }

    fn project_points(
        delta: &TupleDelta,
        key_attrs: &[&Vec<usize>],
    ) -> Option<BTreeMap<Vec<usize>, FxHashSet<Tuple>>> {
        let mut out = BTreeMap::new();
        for attrs in key_attrs {
            let list = AttrList::new_unique((*attrs).clone()).ok()?;
            let mut points = FxHashSet::default();
            let mut resolved: Option<ResolvedAttrs> = None;
            for (t, _) in delta.iter() {
                let r = match &resolved {
                    Some(r) => r,
                    None => {
                        resolved = Some(ResolvedAttrs::from_attr_list(&list, t.arity()).ok()?);
                        resolved.as_ref().expect("just set")
                    }
                };
                points.insert(r.project(t));
            }
            out.insert((*attrs).clone(), points);
        }
        Some(out)
    }

    /// The relations on which two write sets collide.
    fn conflicts_with(&self, other: &WriteSet) -> Vec<String> {
        let mut out = Vec::new();
        for (name, mine) in &self.relations {
            if let Some(theirs) = other.relations.get(name) {
                if Self::overlaps(mine, theirs) {
                    out.push(name.clone());
                }
            }
        }
        out
    }

    fn overlaps(a: &RelWrites, b: &RelWrites) -> bool {
        match (a, b) {
            (RelWrites::Whole, _) | (_, RelWrites::Whole) => true,
            (RelWrites::KeyPoints(x), RelWrites::KeyPoints(y)) => {
                let mut shared_key = false;
                for (attrs, pts) in x {
                    if let Some(q) = y.get(attrs) {
                        shared_key = true;
                        if pts.iter().any(|p| q.contains(p)) {
                            return true;
                        }
                    }
                }
                // no shared key basis (key DDL moved underneath us):
                // conservative conflict
                !shared_key
            }
        }
    }

    fn touched(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }
}

/// The write footprint of one published version, kept for
/// first-committer-wins validation of in-flight snapshots.
struct CommitSummary {
    seq: u64,
    time: LogicalTime,
    writes: WriteSet,
    /// DDL versions (new relation/view/index/key) conflict with every
    /// in-flight writer — coarse, and rare.
    ddl: bool,
}

struct Chain {
    latest: Arc<Version>,
    /// Recently superseded versions, newest last — `as_of` reads.
    history: VecDeque<Arc<Version>>,
    /// Write footprints of recent publications, oldest first.
    summaries: VecDeque<CommitSummary>,
    next_seq: u64,
}

/// An executed-but-uncommitted transaction: the snapshot it ran against,
/// the candidate post-state, its signed deltas and its query outputs.
/// Produced by [`MvccManager::prepare`], consumed by
/// [`MvccManager::try_commit`].
pub struct PreparedTxn {
    start: Arc<Version>,
    db: Database,
    deltas: DeltaMap,
    outputs: Outputs,
}

impl PreparedTxn {
    /// The snapshot this transaction executed against.
    pub fn start(&self) -> &Arc<Version> {
        &self.start
    }

    /// True when the program wrote nothing: its outputs are complete and
    /// no commit section is needed.
    pub fn is_read_only(&self) -> bool {
        self.deltas.values().all(TupleDelta::is_empty)
    }

    /// The relations this transaction wrote.
    pub fn written_relations(&self) -> Vec<String> {
        self.deltas
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(n, _)| n.clone())
            .collect()
    }
}

/// How many superseded versions and commit summaries the chain retains.
#[derive(Debug, Clone, Copy)]
pub struct MvccOptions {
    /// Superseded full versions kept for [`MvccManager::version_at`]
    /// (`as_of` reads). Pinned readers keep their own versions alive
    /// regardless.
    pub retained_versions: usize,
    /// Commit summaries kept for validation. A writer whose snapshot
    /// predates the oldest retained summary aborts with a conservative
    /// conflict (snapshot too old).
    pub retained_summaries: usize,
}

impl Default for MvccOptions {
    fn default() -> Self {
        MvccOptions {
            retained_versions: 16,
            retained_summaries: 4096,
        }
    }
}

/// The multi-version transaction manager: a chain of immutable versions,
/// lock-free pinned readers, optimistic writers validated
/// first-committer-wins at a short commit section.
pub struct MvccManager {
    chain: RwLock<Chain>,
    /// Serializes the validate-fold-publish commit section (and DDL).
    commit: Mutex<()>,
    config: ExecConfig,
    constraints: ConstraintSet,
    options: MvccOptions,
}

impl MvccManager {
    /// A manager over the initial state of a schema.
    pub fn new(schema: DatabaseSchema) -> Self {
        Self::with_config(schema, ExecConfig::default())
    }

    /// A manager with an explicit execution configuration.
    pub fn with_config(schema: DatabaseSchema, config: ExecConfig) -> Self {
        let db = Database::new(schema);
        let stats = CatalogStats::from_database(&db).expect("catalog relations resolve");
        Self::from_parts(
            db,
            ViewSet::new(),
            Arc::new(stats),
            Arc::new(IndexSet::new()),
            Arc::new(KeySet::new()),
            config,
            ConstraintSet::new(),
        )
    }

    /// A manager seeded from recovered state — the store layer's entry
    /// point after WAL replay.
    pub fn from_parts(
        db: Database,
        views: ViewSet,
        stats: Arc<CatalogStats>,
        indexes: Arc<IndexSet>,
        keys: Arc<KeySet>,
        config: ExecConfig,
        constraints: ConstraintSet,
    ) -> Self {
        let version = Arc::new(Version {
            seq: 0,
            db,
            views,
            stats,
            indexes,
            keys,
        });
        MvccManager {
            chain: RwLock::new(Chain {
                latest: version,
                history: VecDeque::new(),
                summaries: VecDeque::new(),
                next_seq: 1,
            }),
            commit: Mutex::new(()),
            config,
            constraints,
            options: MvccOptions::default(),
        }
    }

    /// Overrides the retention options.
    pub fn with_options(mut self, options: MvccOptions) -> Self {
        self.options = options;
        self
    }

    /// The execution configuration transactions run with.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Pins the newest published version. O(1); the returned version is
    /// immutable and stays valid for as long as the `Arc` is held.
    pub fn pin(&self) -> Arc<Version> {
        Arc::clone(&self.chain.read().latest)
    }

    /// Pins the newest version with `time() <= time`, if still retained —
    /// the `as_of` read path.
    pub fn version_at(&self, time: LogicalTime) -> Option<Arc<Version>> {
        let chain = self.chain.read();
        if chain.latest.time() <= time {
            return Some(Arc::clone(&chain.latest));
        }
        chain
            .history
            .iter()
            .rev()
            .find(|v| v.time() <= time)
            .map(Arc::clone)
    }

    /// Current logical time (of the newest version).
    pub fn time(&self) -> LogicalTime {
        self.chain.read().latest.time()
    }

    /// Executes a program against a pinned snapshot without committing:
    /// static analysis, statement execution, constraint check and an
    /// early key check all run against the snapshot. No locks are taken
    /// and no shared state is touched.
    pub fn prepare(
        &self,
        start: Arc<Version>,
        program: &Program,
    ) -> Result<PreparedTxn, AbortReason> {
        if self.config.analyze {
            let diags = analyze_program_with_views(&start.db, &start.views, program);
            if mera_analyze::has_errors(&diags) {
                return Err(AbortReason::StaticallyRejected(diags));
            }
        }
        let mut state = start.working_state();
        let mut outputs = Outputs::default();
        for stmt in &program.statements {
            if let Err(e) = execute_statement(&mut state, stmt, self.config, &mut outputs) {
                return Err(AbortReason::Error(e));
            }
        }
        match self.constraints.validate(&state.db) {
            Ok(Ok(())) => {}
            Ok(Err(violation)) => {
                return Err(AbortReason::ConstraintViolation(violation.to_string()));
            }
            Err(e) => return Err(AbortReason::Error(e)),
        }
        // fail fast against the snapshot's keys; the commit section
        // re-checks against the newest version's counts
        for (name, delta) in &state.deltas {
            if delta.is_empty() {
                continue;
            }
            if let Err(v) = start.keys.check(name, delta) {
                return Err(AbortReason::KeyViolation(key_violation_diagnostic(&v)));
            }
        }
        let WorkingState { db, deltas, .. } = state;
        Ok(PreparedTxn {
            start,
            db,
            deltas,
            outputs,
        })
    }

    /// Runs a read-only program against a pinned version. Errors if the
    /// program writes anything — use [`MvccManager::execute`] for that.
    pub fn read(&self, version: &Arc<Version>, program: &Program) -> Result<Outputs, AbortReason> {
        let prepared = self.prepare(Arc::clone(version), program)?;
        if !prepared.is_read_only() {
            return Err(AbortReason::Error(CoreError::TypeError(
                "read path refuses a writing program; commit it as a transaction".to_string(),
            )));
        }
        Ok(prepared.outputs)
    }

    /// Validates and publishes a prepared transaction,
    /// first-committer-wins. The `durability` hook runs inside the commit
    /// section *after* validation and *before* publication, with the
    /// logical time the commit will carry; its error aborts the commit
    /// with nothing published (and nothing to undo).
    ///
    /// Returns the outcome together with the version the caller should
    /// consider newest (the published one on commit, the pre-existing
    /// newest on abort).
    pub fn try_commit<E>(
        &self,
        prepared: PreparedTxn,
        durability: impl FnOnce(LogicalTime) -> Result<(), E>,
    ) -> Result<(Outcome, Arc<Version>), E> {
        let PreparedTxn {
            start,
            db: candidate,
            deltas,
            outputs,
        } = prepared;
        if deltas.values().all(TupleDelta::is_empty) {
            // reads are complete at prepare time: no version, no time tick
            let latest = self.pin();
            return Ok((Outcome::Committed(outputs), latest));
        }
        let guard = self.commit.lock();
        let (latest, next_seq) = {
            let chain = self.chain.read();
            (Arc::clone(&chain.latest), chain.next_seq)
        };
        let writes = WriteSet::of(&deltas, &latest.keys);
        if latest.seq != start.seq {
            if let Some(conflict) = self.validate(&start, &latest, &writes) {
                drop(guard);
                return Ok((Outcome::Aborted(conflict), latest));
            }
        }
        // key re-check against the *newest* counts (other commits may
        // have taken key points since the snapshot)
        for (name, delta) in &deltas {
            if delta.is_empty() {
                continue;
            }
            if let Err(v) = latest.keys.check(name, delta) {
                drop(guard);
                return Ok((
                    Outcome::Aborted(AbortReason::KeyViolation(key_violation_diagnostic(&v))),
                    latest,
                ));
            }
        }
        // fold the deltas into the newest state. When nothing intervened
        // the candidate state *is* the next state; otherwise the deltas
        // commute with the disjoint intervening ones and re-apply.
        let mut next_db = if latest.seq == start.seq {
            candidate
        } else {
            let mut db = latest.db.clone();
            let mut failed = Vec::new();
            for (name, delta) in &deltas {
                if delta.is_empty() {
                    continue;
                }
                if apply_delta(&mut db, name, delta).is_err() {
                    failed.push(name.clone());
                }
            }
            if !failed.is_empty() {
                // a retraction outran the merged base — only possible if
                // granularity was degraded; surface as a conflict
                drop(guard);
                return Ok((
                    Outcome::Aborted(AbortReason::Conflict {
                        relations: failed,
                        committed_at: latest.time(),
                    }),
                    latest,
                ));
            }
            db
        };
        next_db.tick();
        let time = next_db.time();
        // catalog maintenance: the same O(|Δ|) folds as the serial path,
        // but into *clones* — published versions are never mutated
        let mut stats = Arc::clone(&latest.stats);
        {
            let s = Arc::make_mut(&mut stats);
            for (name, delta) in &deltas {
                if delta.is_empty() {
                    continue;
                }
                if let Ok(post) = next_db.relation(name) {
                    s.apply_commit(name, delta, post);
                }
            }
            s.set_as_of(time);
        }
        let mut indexes = Arc::clone(&latest.indexes);
        {
            let ix = Arc::make_mut(&mut indexes);
            for (name, delta) in &deltas {
                if delta.is_empty() {
                    continue;
                }
                if ix.apply_commit(name, delta).is_err() {
                    let _ = ix.rebuild(&next_db);
                    break;
                }
            }
        }
        let mut keys = Arc::clone(&latest.keys);
        {
            let ks = Arc::make_mut(&mut keys);
            for (name, delta) in &deltas {
                if !delta.is_empty() {
                    ks.apply_commit(name, delta);
                }
            }
        }
        let mut views = latest.views.clone();
        if let Err(e) = views.refresh_after_commit(deltas, &next_db, self.config) {
            // even the full-recompute fallback failed; nothing shared was
            // mutated, so aborting is just dropping the clones
            drop(guard);
            return Ok((Outcome::Aborted(AbortReason::Error(e)), latest));
        }
        durability(time)?;
        let version = Arc::new(Version {
            seq: next_seq,
            db: next_db,
            views,
            stats,
            indexes,
            keys,
        });
        self.publish(
            Arc::clone(&version),
            CommitSummary {
                seq: next_seq,
                time,
                writes,
                ddl: false,
            },
        );
        drop(guard);
        Ok((Outcome::Committed(outputs), version))
    }

    /// First-committer-wins validation of `writes` against everything
    /// published since `start`. `None` means no conflict.
    fn validate(
        &self,
        start: &Arc<Version>,
        latest: &Arc<Version>,
        writes: &WriteSet,
    ) -> Option<AbortReason> {
        let chain = self.chain.read();
        let covered = chain
            .summaries
            .front()
            .is_some_and(|s| s.seq <= start.seq + 1);
        if !covered {
            // intervening commits fell out of the retained window:
            // conservative abort (snapshot too old)
            return Some(AbortReason::Conflict {
                relations: writes.touched(),
                committed_at: latest.time(),
            });
        }
        let mut conflicts = Vec::new();
        let mut committed_at = latest.time();
        for s in chain.summaries.iter().filter(|s| s.seq > start.seq) {
            if s.ddl {
                return Some(AbortReason::Conflict {
                    relations: writes.touched(),
                    committed_at: s.time,
                });
            }
            let overlapping = writes.conflicts_with(&s.writes);
            if !overlapping.is_empty() {
                committed_at = s.time;
                conflicts.extend(overlapping);
            }
        }
        if conflicts.is_empty() {
            None
        } else {
            conflicts.sort_unstable();
            conflicts.dedup();
            Some(AbortReason::Conflict {
                relations: conflicts,
                committed_at,
            })
        }
    }

    /// Installs a new latest version (commit lock must be held).
    fn publish(&self, version: Arc<Version>, summary: CommitSummary) {
        let mut chain = self.chain.write();
        let old = std::mem::replace(&mut chain.latest, version);
        chain.history.push_back(old);
        while chain.history.len() > self.options.retained_versions {
            chain.history.pop_front();
        }
        chain.summaries.push_back(summary);
        while chain.summaries.len() > self.options.retained_summaries {
            chain.summaries.pop_front();
        }
        chain.next_seq += 1;
    }

    /// Pin-prepare-commit in one call (no durability hook): the volatile
    /// front door. Conflicts surface as [`Outcome::Aborted`] with
    /// [`AbortReason::Conflict`]; callers retry at their own cadence.
    pub fn execute(&self, program: &Program) -> (Outcome, Arc<Version>) {
        let start = self.pin();
        match self.prepare(start, program) {
            Err(reason) => (Outcome::Aborted(reason), self.pin()),
            Ok(prepared) => match self.try_commit::<Infallible>(prepared, |_| Ok(())) {
                Ok(result) => result,
                Err(e) => match e {},
            },
        }
    }

    /// Holds the commit section while `f` runs against the newest
    /// version — the store layer's checkpoint barrier: no commit can
    /// publish (or append to the WAL) while the closure runs.
    pub fn quiesce<R>(&self, f: impl FnOnce(&Version) -> R) -> R {
        let _guard = self.commit.lock();
        let latest = Arc::clone(&self.chain.read().latest);
        f(&latest)
    }

    /// Adds a fresh empty relation, publishing a DDL version.
    pub fn add_relation(&self, rs: RelationSchema) -> CoreResult<()> {
        match self.add_relation_with::<Infallible>(rs, || Ok(())) {
            Ok(r) => r,
            Err(e) => match e {},
        }
    }

    /// [`MvccManager::add_relation`] with a durability hook that runs
    /// after validation, before publication.
    pub fn add_relation_with<E>(
        &self,
        rs: RelationSchema,
        durability: impl FnOnce() -> Result<(), E>,
    ) -> Result<CoreResult<()>, E> {
        let _guard = self.commit.lock();
        let (latest, next_seq) = {
            let chain = self.chain.read();
            (Arc::clone(&chain.latest), chain.next_seq)
        };
        let mut db = latest.db.clone();
        if let Err(e) = db.add_relation(rs) {
            return Ok(Err(e));
        }
        // re-anchor statistics so they describe the new (empty) relation
        let stats = match CatalogStats::from_database(&db) {
            Ok(mut fresh) => {
                fresh.set_as_of(db.time());
                Arc::new(fresh)
            }
            Err(_) => Arc::clone(&latest.stats),
        };
        durability()?;
        let time = db.time();
        self.publish(
            Arc::new(Version {
                seq: next_seq,
                db,
                views: latest.views.clone(),
                stats,
                indexes: Arc::clone(&latest.indexes),
                keys: Arc::clone(&latest.keys),
            }),
            CommitSummary {
                seq: next_seq,
                time,
                writes: WriteSet::default(),
                ddl: true,
            },
        );
        Ok(Ok(()))
    }

    /// Creates a materialized view, publishing a DDL version.
    pub fn create_view(&self, name: &str, expr: RelExpr) -> Result<SchemaRef, CreateViewError> {
        match self.create_view_with::<Infallible>(name, expr, || Ok(())) {
            Ok(r) => r,
            Err(e) => match e {},
        }
    }

    /// [`MvccManager::create_view`] with a durability hook.
    pub fn create_view_with<E>(
        &self,
        name: &str,
        expr: RelExpr,
        durability: impl FnOnce() -> Result<(), E>,
    ) -> Result<Result<SchemaRef, CreateViewError>, E> {
        let _guard = self.commit.lock();
        let (latest, next_seq) = {
            let chain = self.chain.read();
            (Arc::clone(&chain.latest), chain.next_seq)
        };
        let mut views = latest.views.clone();
        let schema = match views.create(name, expr, &latest.db, self.config) {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        durability()?;
        let time = latest.time();
        self.publish(
            Arc::new(Version {
                seq: next_seq,
                db: latest.db.clone(),
                views,
                stats: Arc::clone(&latest.stats),
                indexes: Arc::clone(&latest.indexes),
                keys: Arc::clone(&latest.keys),
            }),
            CommitSummary {
                seq: next_seq,
                time,
                writes: WriteSet::default(),
                ddl: true,
            },
        );
        Ok(Ok(schema))
    }

    /// Creates a secondary index, publishing a DDL version.
    pub fn create_index(&self, relation: &str, keys: &[usize]) -> CoreResult<()> {
        match self.create_index_with::<Infallible>(relation, keys, || Ok(())) {
            Ok(r) => r,
            Err(e) => match e {},
        }
    }

    /// [`MvccManager::create_index`] with a durability hook.
    pub fn create_index_with<E>(
        &self,
        relation: &str,
        keys: &[usize],
        durability: impl FnOnce() -> Result<(), E>,
    ) -> Result<CoreResult<()>, E> {
        let _guard = self.commit.lock();
        let (latest, next_seq) = {
            let chain = self.chain.read();
            (Arc::clone(&chain.latest), chain.next_seq)
        };
        let mut indexes = Arc::clone(&latest.indexes);
        if let Err(e) = Arc::make_mut(&mut indexes).create(&latest.db, relation, keys) {
            return Ok(Err(e));
        }
        durability()?;
        let time = latest.time();
        self.publish(
            Arc::new(Version {
                seq: next_seq,
                db: latest.db.clone(),
                views: latest.views.clone(),
                stats: Arc::clone(&latest.stats),
                indexes,
                keys: Arc::clone(&latest.keys),
            }),
            CommitSummary {
                seq: next_seq,
                time,
                writes: WriteSet::default(),
                ddl: true,
            },
        );
        Ok(Ok(()))
    }

    /// Declares a key constraint, publishing a DDL version. Rejections
    /// mirror [`crate::TransactionManager::declare_key`] (`E0401`–`E0403`).
    pub fn declare_key(&self, relation: &str, attrs: &[usize]) -> Result<(), DeclareKeyError> {
        match self.declare_key_with::<Infallible>(relation, attrs, || Ok(())) {
            Ok(r) => r,
            Err(e) => match e {},
        }
    }

    /// [`MvccManager::declare_key`] with a durability hook.
    pub fn declare_key_with<E>(
        &self,
        relation: &str,
        attrs: &[usize],
        durability: impl FnOnce() -> Result<(), E>,
    ) -> Result<Result<(), DeclareKeyError>, E> {
        let _guard = self.commit.lock();
        let (latest, next_seq) = {
            let chain = self.chain.read();
            (Arc::clone(&chain.latest), chain.next_seq)
        };
        if latest.views.get(relation).is_some() {
            return Ok(Err(DeclareKeyError::Rejected(
                mera_analyze::Diagnostic::new(
                    mera_analyze::Code::KeyOnView,
                    mera_analyze::Span::root("key"),
                    format!("cannot declare a key on materialized view `{relation}`"),
                )
                .with_note(
                    "a view's multiplicities are determined by its definition; \
                     declare the key on the base relations instead",
                ),
            )));
        }
        if latest.keys.is_declared(relation, attrs) {
            return Ok(Err(DeclareKeyError::Rejected(
                mera_analyze::Diagnostic::new(
                    mera_analyze::Code::DuplicateKeyDeclaration,
                    mera_analyze::Span::root("key"),
                    format!(
                        "key {relation}({}) is already declared",
                        attrs
                            .iter()
                            .map(|a| format!("%{a}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                ),
            )));
        }
        let mut keys = Arc::clone(&latest.keys);
        match Arc::make_mut(&mut keys).declare(&latest.db, relation, attrs) {
            Ok(Ok(())) => {}
            Ok(Err(v)) => return Ok(Err(DeclareKeyError::Rejected(key_violation_diagnostic(&v)))),
            Err(e) => return Ok(Err(DeclareKeyError::Error(e))),
        }
        durability()?;
        let time = latest.time();
        self.publish(
            Arc::new(Version {
                seq: next_seq,
                db: latest.db.clone(),
                views: latest.views.clone(),
                stats: Arc::clone(&latest.stats),
                indexes: Arc::clone(&latest.indexes),
                keys,
            }),
            CommitSummary {
                seq: next_seq,
                time,
                writes: WriteSet::default(),
                ddl: true,
            },
        );
        Ok(Ok(()))
    }
}

/// Applies a signed delta to one relation of `db` in place. Fails with
/// [`CoreError::NegativeMultiplicity`] when a retraction outruns the base
/// — which first-committer-wins validation rules out for admitted
/// commits.
fn apply_delta(db: &mut Database, name: &str, delta: &TupleDelta) -> CoreResult<()> {
    db.update_with(name, |rel| {
        let mut next = rel.clone();
        for (t, m) in delta.iter() {
            if m > 0 {
                next.insert(t.clone(), m as u64)?;
            } else {
                let want = m.unsigned_abs();
                if next.remove(t, want) != want {
                    return Err(CoreError::NegativeMultiplicity("mvcc delta merge"));
                }
            }
        }
        Ok(next)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::Statement;
    use mera_core::tuple;
    use mera_expr::ScalarExpr;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "acct",
                Schema::named(&[("owner", DataType::Str), ("amount", DataType::Int)]),
            )
            .expect("fresh")
    }

    fn deposit(owner: &str, amount: i64) -> Program {
        let row = relation_of(
            Schema::named(&[("owner", DataType::Str), ("amount", DataType::Int)]),
            vec![tuple![owner, amount]],
        )
        .expect("typed");
        Program::single(Statement::insert("acct", RelExpr::values(row)))
    }

    fn scan_all() -> Program {
        Program::single(Statement::query(RelExpr::scan("acct")))
    }

    #[test]
    fn commit_publishes_next_version() {
        let mgr = MvccManager::new(schema());
        let (outcome, v) = mgr.execute(&deposit("ann", 10));
        assert!(outcome.is_committed());
        assert_eq!(v.time(), 1);
        assert_eq!(v.database().relation("acct").expect("present").len(), 1);
        assert_eq!(mgr.time(), 1);
    }

    #[test]
    fn pinned_reader_never_sees_later_commits() {
        let mgr = MvccManager::new(schema());
        mgr.execute(&deposit("ann", 10));
        let pin = mgr.pin();
        mgr.execute(&deposit("bob", 20));
        // the pinned version still shows exactly one row
        let outputs = mgr.read(&pin, &scan_all()).expect("reads");
        assert_eq!(outputs.queries[0].len(), 1);
        // a fresh pin shows both
        let outputs = mgr.read(&mgr.pin(), &scan_all()).expect("reads");
        assert_eq!(outputs.queries[0].len(), 2);
    }

    #[test]
    fn read_only_programs_do_not_tick_time() {
        let mgr = MvccManager::new(schema());
        mgr.execute(&deposit("ann", 10));
        let t = mgr.time();
        let (outcome, _) = mgr.execute(&scan_all());
        assert!(outcome.is_committed());
        assert_eq!(mgr.time(), t, "reads publish no version");
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let mgr = MvccManager::new(schema());
        let pin = mgr.pin();
        let p1 = mgr.prepare(Arc::clone(&pin), &deposit("ann", 10)).unwrap();
        let p2 = mgr.prepare(pin, &deposit("bob", 20)).unwrap();
        // both touched `acct`, which has no key: relation-level conflict
        let (o1, _) = mgr.try_commit::<Infallible>(p1, |_| Ok(())).unwrap();
        assert!(o1.is_committed());
        let (o2, _) = mgr.try_commit::<Infallible>(p2, |_| Ok(())).unwrap();
        match o2 {
            Outcome::Aborted(AbortReason::Conflict { relations, .. }) => {
                assert_eq!(relations, vec!["acct".to_string()]);
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
    }

    #[test]
    fn keyed_relations_conflict_at_key_point_granularity() {
        let mgr = MvccManager::new(schema());
        mgr.declare_key("acct", &[1]).expect("declares");
        let pin = mgr.pin();
        let p1 = mgr.prepare(Arc::clone(&pin), &deposit("ann", 10)).unwrap();
        let p2 = mgr.prepare(Arc::clone(&pin), &deposit("bob", 20)).unwrap();
        let p3 = mgr.prepare(pin, &deposit("ann", 99)).unwrap();
        let (o1, _) = mgr.try_commit::<Infallible>(p1, |_| Ok(())).unwrap();
        assert!(o1.is_committed());
        // different key point: merges cleanly even though the snapshot is stale
        let (o2, v2) = mgr.try_commit::<Infallible>(p2, |_| Ok(())).unwrap();
        assert!(o2.is_committed(), "{o2:?}");
        assert_eq!(v2.database().relation("acct").expect("rel").len(), 2);
        // same key point as the first committer: typed abort
        let (o3, _) = mgr.try_commit::<Infallible>(p3, |_| Ok(())).unwrap();
        match o3 {
            Outcome::Aborted(AbortReason::Conflict { relations, .. }) => {
                assert_eq!(relations, vec!["acct".to_string()]);
            }
            Outcome::Aborted(AbortReason::KeyViolation(_)) => {
                panic!("conflict must be detected before the key check")
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
    }

    #[test]
    fn merged_commits_keep_catalog_consistent() {
        let mgr = MvccManager::new(schema());
        mgr.declare_key("acct", &[1]).expect("declares");
        mgr.create_index("acct", &[1]).expect("indexes");
        mgr.create_view(
            "totals",
            RelExpr::scan("acct").group_by(&[1], mera_expr::Aggregate::Sum, 2),
        )
        .expect("view");
        let pin = mgr.pin();
        let p1 = mgr.prepare(Arc::clone(&pin), &deposit("ann", 10)).unwrap();
        let p2 = mgr.prepare(pin, &deposit("bob", 20)).unwrap();
        mgr.try_commit::<Infallible>(p1, |_| Ok(())).unwrap();
        let (o2, v) = mgr.try_commit::<Infallible>(p2, |_| Ok(())).unwrap();
        assert!(o2.is_committed(), "{o2:?}");
        // stats, index, keys and view all describe the merged state
        assert_eq!(v.stats().get("acct").expect("stats").rows, 2);
        let ix = v.indexes().find("acct", &[1]).expect("index");
        assert_eq!(ix.len(), 2);
        let totals = v.views().get("totals").expect("view").data();
        assert_eq!(totals.multiplicity(&tuple!["ann", 10_i64]), 1);
        assert_eq!(totals.multiplicity(&tuple!["bob", 20_i64]), 1);
        // and the keys still enforce on the merged counts
        let (o3, _) = mgr.execute(&deposit("ann", 5));
        assert!(
            matches!(o3, Outcome::Aborted(AbortReason::KeyViolation(_))),
            "{o3:?}"
        );
    }

    #[test]
    fn ddl_conflicts_inflight_writers() {
        let mgr = MvccManager::new(schema());
        let pin = mgr.pin();
        let p = mgr.prepare(pin, &deposit("ann", 10)).unwrap();
        mgr.create_index("acct", &[1]).expect("indexes");
        let (o, _) = mgr.try_commit::<Infallible>(p, |_| Ok(())).unwrap();
        assert!(
            matches!(o, Outcome::Aborted(AbortReason::Conflict { .. })),
            "{o:?}"
        );
    }

    #[test]
    fn durability_failure_publishes_nothing() {
        let mgr = MvccManager::new(schema());
        let pin = mgr.pin();
        let p = mgr.prepare(pin, &deposit("ann", 10)).unwrap();
        let err = mgr
            .try_commit::<&str>(p, |_| Err("disk on fire"))
            .expect_err("hook fails");
        assert_eq!(err, "disk on fire");
        assert_eq!(mgr.time(), 0);
        let pin = mgr.pin();
        assert!(pin.database().relation("acct").expect("rel").is_empty());
        // the manager remains usable
        let (o, _) = mgr.execute(&deposit("ann", 10));
        assert!(o.is_committed());
    }

    #[test]
    fn version_at_serves_as_of_reads() {
        let mgr = MvccManager::new(schema());
        mgr.execute(&deposit("ann", 10));
        mgr.execute(&deposit("bob", 20));
        mgr.execute(&deposit("cho", 30));
        let v1 = mgr.version_at(1).expect("retained");
        assert_eq!(v1.time(), 1);
        assert_eq!(v1.database().relation("acct").expect("rel").len(), 1);
        let v2 = mgr.version_at(2).expect("retained");
        assert_eq!(v2.database().relation("acct").expect("rel").len(), 2);
        assert!(mgr.version_at(99).expect("latest").time() <= 99);
    }

    #[test]
    fn update_conflicts_with_update_of_same_key_point() {
        let mgr = MvccManager::new(schema());
        mgr.execute(&deposit("ann", 10));
        mgr.declare_key("acct", &[1]).expect("declares");
        let bump = |who: &str| {
            Program::single(Statement::update(
                "acct",
                RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::str(who))),
                vec![
                    ScalarExpr::attr(1),
                    ScalarExpr::attr(2).mul(ScalarExpr::int(2)),
                ],
            ))
        };
        let pin = mgr.pin();
        let p1 = mgr.prepare(Arc::clone(&pin), &bump("ann")).unwrap();
        let p2 = mgr.prepare(pin, &bump("ann")).unwrap();
        let (o1, _) = mgr.try_commit::<Infallible>(p1, |_| Ok(())).unwrap();
        assert!(o1.is_committed());
        let (o2, _) = mgr.try_commit::<Infallible>(p2, |_| Ok(())).unwrap();
        assert!(
            matches!(o2, Outcome::Aborted(AbortReason::Conflict { .. })),
            "lost update must be impossible: {o2:?}"
        );
        // the surviving update doubled once, not twice
        let v = mgr.pin();
        assert_eq!(
            v.database()
                .relation("acct")
                .expect("rel")
                .multiplicity(&tuple!["ann", 20_i64]),
            1
        );
    }
}
