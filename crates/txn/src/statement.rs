//! Extended relational algebra statements (Definition 4.1).
//!
//! | paper | here | semantics |
//! |---|---|---|
//! | `insert(R, E)` | [`Statement::Insert`] | `R ← R ⊎ E` |
//! | `delete(R, E)` | [`Statement::Delete`] | `R ← R − E` |
//! | `update(R, E, a)` | [`Statement::Update`] | `R ← (R − E) ⊎ π̄_a(R ∩ E)` |
//! | `R = E` | [`Statement::Assign`] | bind a *temporary* relation |
//! | `?E` | [`Statement::Query`] | output `E`, no database effect |
//!
//! `π̄_a` is the *structure-preserving* extended projection: its expression
//! list must produce exactly the schema of `R` (the definition's note).

use std::fmt;

use mera_expr::{RelExpr, ScalarExpr};

/// One statement of the database manipulation language.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `insert(R, E)`: adds the elements of `E` to relation `R`.
    Insert {
        /// Target relation name.
        relation: String,
        /// Source expression (same schema as the target).
        expr: RelExpr,
    },
    /// `delete(R, E)`: removes the elements of `E` from relation `R`.
    Delete {
        /// Target relation name.
        relation: String,
        /// Expression computing the tuples to remove.
        expr: RelExpr,
    },
    /// `update(R, E, a)`: modifies the elements in `R ∩ E` according to the
    /// structure-preserving attribute expression list `a`.
    Update {
        /// Target relation name.
        relation: String,
        /// Expression selecting the tuples to modify.
        expr: RelExpr,
        /// The attribute expression list `a`; must preserve `R`'s schema.
        exprs: Vec<ScalarExpr>,
    },
    /// `R = E`: binds expression `E` to a new, implicitly defined
    /// *temporary* relational variable, visible to later statements of the
    /// same program and removed at transaction end (§4.3).
    Assign {
        /// The temporary relation's name.
        name: String,
        /// The bound expression.
        expr: RelExpr,
    },
    /// `?E`: sends the result of `E` to the user; no database effect.
    Query {
        /// The queried expression.
        expr: RelExpr,
    },
}

impl Statement {
    /// Convenience constructor for `insert`.
    pub fn insert(relation: impl Into<String>, expr: RelExpr) -> Self {
        Statement::Insert {
            relation: relation.into(),
            expr,
        }
    }

    /// Convenience constructor for `delete`.
    pub fn delete(relation: impl Into<String>, expr: RelExpr) -> Self {
        Statement::Delete {
            relation: relation.into(),
            expr,
        }
    }

    /// Convenience constructor for `update`.
    pub fn update(relation: impl Into<String>, expr: RelExpr, exprs: Vec<ScalarExpr>) -> Self {
        Statement::Update {
            relation: relation.into(),
            expr,
            exprs,
        }
    }

    /// Convenience constructor for assignment.
    pub fn assign(name: impl Into<String>, expr: RelExpr) -> Self {
        Statement::Assign {
            name: name.into(),
            expr,
        }
    }

    /// Convenience constructor for `?E`.
    pub fn query(expr: RelExpr) -> Self {
        Statement::Query { expr }
    }

    /// The static analyzer's borrowed view of this statement
    /// (`mera-analyze` is deliberately ignorant of this crate's types).
    pub fn analyzer_view(&self) -> mera_analyze::ProgramStmt<'_> {
        use mera_analyze::ProgramStmt;
        match self {
            Statement::Insert { relation, expr } => ProgramStmt::Insert { relation, expr },
            Statement::Delete { relation, expr } => ProgramStmt::Delete { relation, expr },
            Statement::Update {
                relation,
                expr,
                exprs,
            } => ProgramStmt::Update {
                relation,
                expr,
                exprs,
            },
            Statement::Assign { name, expr } => ProgramStmt::Assign { name, expr },
            Statement::Query { expr } => ProgramStmt::Query { expr },
        }
    }

    /// The relation this statement writes, if any.
    pub fn written_relation(&self) -> Option<&str> {
        match self {
            Statement::Insert { relation, .. }
            | Statement::Delete { relation, .. }
            | Statement::Update { relation, .. } => Some(relation),
            Statement::Assign { name, .. } => Some(name),
            Statement::Query { .. } => None,
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Insert { relation, expr } => write!(f, "insert({relation}, {expr})"),
            Statement::Delete { relation, expr } => write!(f, "delete({relation}, {expr})"),
            Statement::Update {
                relation,
                expr,
                exprs,
            } => {
                write!(f, "update({relation}, {expr}, (")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Statement::Assign { name, expr } => write!(f, "{name} = {expr}"),
            Statement::Query { expr } => write!(f, "?{expr}"),
        }
    }
}

/// A program: a non-empty sequence of statements (Definition 4.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The statements, in execution order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// The empty program (useful as a builder seed).
    pub fn new() -> Self {
        Program::default()
    }

    /// A single-statement program.
    pub fn single(stmt: Statement) -> Self {
        Program {
            statements: vec![stmt],
        }
    }

    /// Builder: appends a statement (`p; a` in the paper's grammar).
    pub fn then(mut self, stmt: Statement) -> Self {
        self.statements.push(stmt);
        self
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True when the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.statements.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromIterator<Statement> for Program {
    fn from_iter<I: IntoIterator<Item = Statement>>(iter: I) -> Self {
        Program {
            statements: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let s = Statement::insert("beer", RelExpr::scan("new_beers"));
        assert_eq!(s.to_string(), "insert(beer, new_beers)");
        assert_eq!(s.written_relation(), Some("beer"));

        let s = Statement::update(
            "beer",
            RelExpr::scan("beer"),
            vec![
                ScalarExpr::attr(1),
                ScalarExpr::attr(2),
                ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)),
            ],
        );
        assert_eq!(s.to_string(), "update(beer, beer, (%1, %2, (%3 * 1.1)))");

        let s = Statement::query(RelExpr::scan("beer").project(&[1]));
        assert_eq!(s.to_string(), "?pi(%1)(beer)");
        assert_eq!(s.written_relation(), None);

        let s = Statement::assign("tmp", RelExpr::scan("beer"));
        assert_eq!(s.to_string(), "tmp = beer");
        assert_eq!(s.written_relation(), Some("tmp"));
    }

    #[test]
    fn program_builder() {
        let p = Program::new()
            .then(Statement::assign("t", RelExpr::scan("beer")))
            .then(Statement::query(RelExpr::scan("t")));
        assert_eq!(p.len(), 2);
        assert_eq!(p.to_string(), "t = beer; ?t");
        let single = Program::single(Statement::query(RelExpr::scan("x")));
        assert_eq!(single.len(), 1);
        assert!(!single.is_empty());
        assert!(Program::new().is_empty());
    }

    #[test]
    fn program_from_iterator() {
        let p: Program = vec![
            Statement::query(RelExpr::scan("a")),
            Statement::query(RelExpr::scan("b")),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 2);
    }
}
