//! EXPLAIN — render the plan an expression actually gets.
//!
//! The rendering has two sections. The **plan** section prints the
//! optimized logical tree — the join order the cost model chose — with
//! the estimator's row count at every node. The **execution** section
//! runs the expression through the instrumented physical planner, under
//! the same access-path policy as the live engine (index lookups for
//! covered point selections, index-nested-loop joins where the cost model
//! hinted them), and prints the rows that actually flowed out of every
//! operator, bottom-up; operators that took an index carry
//! `index_lookup(r)` / `index_nl_join(r)` labels. Reading the two
//! sections side by side answers the planner-debugging questions: which
//! join order, which access paths, and how far off the estimates were.
//!
//! EXPLAIN always executes on the single-threaded instrumented physical
//! engine regardless of [`ExecConfig::engine`], so its output is
//! deterministic (golden-file testable) — the four engines are
//! equivalence-tested elsewhere, so the counts generalize.

use std::fmt::Write as _;
use std::sync::Arc;

use mera_analyze::{infer_props, KeyEnv};
use mera_core::prelude::*;
use mera_eval::physical::collect;
use mera_eval::physical::planner::{plan_instrumented_indexed_with, IndexAccess};
use mera_eval::physical::stats::ExecStats;
use mera_eval::IndexJoinHints;
use mera_expr::rel::RelExpr;
use mera_opt::{choose_access_paths, estimate_rows, CatalogStats, Optimizer};

use crate::exec::{ExecConfig, WorkingSchemas, WorkingState};

/// Renders the chosen plan for `expr` against a working state: join
/// order, access paths, and estimated-vs-actual cardinality per operator
/// (see the module docs for the format).
pub fn explain_expr(
    state: &WorkingState,
    expr: &RelExpr,
    config: ExecConfig,
) -> CoreResult<String> {
    let provider = WorkingSchemas(state);
    let expr_storage;
    let expr = if config.optimize {
        let mut optimizer = Optimizer::standard();
        if let Some(stats) = &state.stats {
            optimizer = optimizer.with_stats(Arc::clone(stats));
        }
        // the same dirtied-gated key environment `eval_expr` plans under,
        // so EXPLAIN shows the plan the live engine would actually run
        let keys = state.key_env();
        if !keys.is_empty() {
            optimizer = optimizer.with_keys(keys);
        }
        expr_storage = optimizer.optimize(expr, &provider)?.expr;
        &expr_storage
    } else {
        expr
    };

    // estimate against the attached statistics; an empty catalog gives the
    // estimator's schema-only defaults, which is exactly what the rule-only
    // planner reasons from
    let empty_stats = CatalogStats::new();
    let stats = state.stats.as_deref().unwrap_or(&empty_stats);

    // the same access-path policy as `eval_expr`: indexes describe the
    // pre-transaction state, so they are off once an indexed relation is
    // dirty; join hints need the cost model, so they need statistics
    let mut hints = IndexJoinHints::default();
    let mut use_indexes = false;
    if let Some(indexes) = &state.indexes {
        let defs = indexes.definitions();
        if !defs.is_empty() && !defs.iter().any(|(r, _)| state.dirtied(r)) {
            use_indexes = true;
            if state.stats.is_some() {
                hints = choose_access_paths(expr, stats, &defs, &provider)?;
            }
        }
    }

    let mut out = String::new();
    match state.stats.as_deref().and_then(|s| s.as_of()) {
        Some(t) => {
            let _ = writeln!(out, "plan (cost-based, statistics as of t={t}):");
        }
        None => {
            let _ = writeln!(out, "plan (rule-based, no statistics):");
        }
    }
    // annotate each node with its inferred structural properties (keys,
    // duplicate-freeness, constants) under the same dirtied-gated key
    // environment the optimizer saw — a `[key: …, set]` tag explains *why*
    // a δ disappeared or a γ simplified
    let key_env = state.key_env();
    render_node(&mut out, expr, stats, &provider, &key_env, 1);

    let mut exec_stats = ExecStats::new();
    let access = state
        .indexes
        .as_deref()
        .filter(|_| use_indexes)
        .map(|indexes| IndexAccess {
            indexes,
            hints: &hints,
        });
    let plan =
        plan_instrumented_indexed_with(expr, state, config.options, access, &mut exec_stats)?;
    let result = collect(plan)?;

    let _ = writeln!(out, "execution (instrumented physical engine):");
    for (label, rows) in exec_stats.rows_out() {
        let _ = writeln!(out, "  {rows:>8}  {label}");
    }
    let _ = writeln!(
        out,
        "output: {} rows (estimated {})",
        result.len(),
        est(expr, stats)
    );
    Ok(out)
}

/// The estimator's row count for a node, rounded for display.
fn est(expr: &RelExpr, stats: &CatalogStats) -> u64 {
    estimate_rows(expr, stats).round() as u64
}

fn render_node(
    out: &mut String,
    expr: &RelExpr,
    stats: &CatalogStats,
    provider: &WorkingSchemas<'_>,
    env: &KeyEnv,
    depth: usize,
) {
    let props = infer_props(expr, provider, env).render();
    let _ = writeln!(
        out,
        "{:indent$}{}  est={}{}{}",
        "",
        label(expr),
        est(expr, stats),
        if props.is_empty() { "" } else { "  " },
        props,
        indent = depth * 2
    );
    for child in expr.children() {
        render_node(out, child, stats, provider, env, depth + 1);
    }
}

/// One-line operator label: enough detail to identify the node (the
/// predicate for selections and joins, the relation for scans) without
/// repeating whole subtrees.
fn label(expr: &RelExpr) -> String {
    match expr {
        RelExpr::Scan(name) => format!("scan({name})"),
        RelExpr::Values(rel) => format!("values[{} rows]", rel.len()),
        RelExpr::Select { predicate, .. } => format!("select[{predicate}]"),
        RelExpr::Join { predicate, .. } => format!("join[{predicate}]"),
        RelExpr::GroupBy { agg, attr, .. } => format!("groupby[{agg} %{attr}]"),
        other => other.op_name().to_owned(),
    }
}
