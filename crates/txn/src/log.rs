//! A redo log of committed programs — the durability substrate.
//!
//! §4.3 requires the ACID properties; durability means a committed
//! transaction's effects survive a restart. The PRISMA/DB system the paper
//! targets was a *main-memory* DBMS, where durability is obtained by
//! logging logical operations and replaying them after a crash. [`RedoLog`]
//! reproduces that design: an append-only sequence of committed programs,
//! replayable from the initial state, serialisable to a line-delimited text
//! form for on-disk storage.

use mera_core::prelude::{CoreError, CoreResult, LogicalTime};

use crate::statement::Program;

/// One committed transaction: the logical time it installed and the
/// program that ran.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Logical time of the post-transaction state `D_{t+1}`.
    pub time: LogicalTime,
    /// The committed program.
    pub program: Program,
}

/// An append-only redo log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RedoLog {
    records: Vec<LogRecord>,
}

impl RedoLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a committed transaction's record.
    ///
    /// Log order is recovery order, so logical times must strictly
    /// increase; an out-of-order append is rejected with
    /// [`CoreError::LogOutOfOrder`] rather than silently corrupting the
    /// replay sequence (this used to be a `debug_assert!`, which release
    /// builds skipped entirely).
    pub fn append(&mut self, record: LogRecord) -> CoreResult<()> {
        if let Some(last) = self.records.last() {
            if last.time >= record.time {
                return Err(CoreError::LogOutOfOrder {
                    last: last.time,
                    next: record.time,
                });
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// The committed records in commit order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of committed transactions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has committed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Truncates the log to records up to and including logical time `t`
    /// (point-in-time recovery).
    pub fn up_to(&self, t: LogicalTime) -> RedoLog {
        RedoLog {
            records: self
                .records
                .iter()
                .filter(|r| r.time <= t)
                .cloned()
                .collect(),
        }
    }

    /// Renders the log as line-delimited text (`t<TAB>program`), the
    /// at-rest form.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            s.push_str(&format!("{}\t{}\n", r.time, r.program));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::Statement;
    use mera_expr::RelExpr;

    fn record(t: LogicalTime) -> LogRecord {
        LogRecord {
            time: t,
            program: Program::single(Statement::query(RelExpr::scan("r"))),
        }
    }

    #[test]
    fn append_and_read() {
        let mut log = RedoLog::new();
        assert!(log.is_empty());
        log.append(record(1)).expect("in order");
        log.append(record(2)).expect("in order");
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].time, 1);
    }

    #[test]
    fn out_of_order_append_is_a_hard_error() {
        let mut log = RedoLog::new();
        log.append(record(3)).expect("in order");
        // equal time: rejected
        assert_eq!(
            log.append(record(3)),
            Err(CoreError::LogOutOfOrder { last: 3, next: 3 })
        );
        // decreasing time: rejected, log unchanged
        assert_eq!(
            log.append(record(2)),
            Err(CoreError::LogOutOfOrder { last: 3, next: 2 })
        );
        assert_eq!(log.len(), 1);
        // and strictly later times still append
        log.append(record(4)).expect("in order");
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn point_in_time_truncation() {
        let mut log = RedoLog::new();
        for t in 1..=5 {
            log.append(record(t)).expect("in order");
        }
        let pit = log.up_to(3);
        assert_eq!(pit.len(), 3);
        assert_eq!(pit.records().last().expect("non-empty").time, 3);
    }

    #[test]
    fn text_form_is_line_per_record() {
        let mut log = RedoLog::new();
        log.append(record(1)).expect("in order");
        log.append(record(2)).expect("in order");
        let text = log.to_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("1\t?r\n"));
    }
}
