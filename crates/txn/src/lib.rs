//! # mera-txn — statements, programs and transactions (paper §4)
//!
//! The constructs that grow the multi-set algebra into "a complete
//! sequential database manipulation language":
//!
//! * [`statement`] — the five statements of Definition 4.1 (`insert`,
//!   `delete`, `update`, assignment, `?E`) and programs (Definition 4.2),
//! * [`exec`] — execution over intermediate states `D_t.i` with temporary
//!   relations,
//! * [`transaction`] — transaction brackets with atomic commit/abort
//!   (Definition 4.3), logical-time transitions, and a serial
//!   [`TransactionManager`],
//! * [`log`] — a redo log of committed programs (durability for a
//!   main-memory DBMS, as in PRISMA/DB),
//! * [`views`] — materialized views maintained incrementally at commit
//!   time from signed deltas (ℤ-multiplicity bags) instead of
//!   re-evaluated from scratch,
//! * [`mvcc`] — multi-version concurrency: immutable published versions
//!   along the paper's logical-time axis, lock-free snapshot readers,
//!   optimistic writers validated first-committer-wins,
//! * [`explain`] — EXPLAIN-style rendering of the chosen plan: join
//!   order, access paths, estimated-vs-actual cardinalities.

#![warn(missing_docs)]

pub mod constraints;
pub mod exec;
pub mod explain;
pub mod log;
pub mod mvcc;
pub mod statement;
pub mod transaction;
pub mod views;

pub use constraints::{Constraint, ConstraintSet, Violation};
pub use exec::{
    analyze_program_with_views, execute_program, execute_statement, ExecConfig, Outputs,
    WorkingState,
};
pub use explain::explain_expr;
pub use log::{LogRecord, RedoLog};
pub use mera_eval::{EngineKind, ExecOptions, HashIndex, IndexSet, KeySet, KeyViolation};
pub use mera_opt::{CatalogStats, TableStats};
pub use mvcc::{MvccManager, MvccOptions, PreparedTxn, Version};
pub use statement::{Program, Statement};
pub use transaction::{
    run_transaction, run_transaction_cataloged, run_transaction_checked,
    run_transaction_with_views, AbortReason, CommitCatalog, DeclareKeyError, Outcome,
    TransactionManager,
};
pub use views::{CreateViewError, DeltaMap, TupleDelta, View, ViewSet};
