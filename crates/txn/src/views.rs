//! Materialized views with signed-delta maintenance.
//!
//! A view is a named algebra expression whose result is kept materialized
//! across commits. Instead of re-evaluating the definition after every
//! transaction, the commit path computes per-base-relation *deltas* as
//! signed counted bags ([`SignedBag`]) and pushes them through a
//! delta-rewritten plan ([`MaintNode`]):
//!
//! * σ, π, π̄ and ⊎ are **homomorphic** in the ℤ-multiplicity semiring —
//!   the §3.3 distribution identities (`σ(E₁ ⊎ E₂) = σE₁ ⊎ σE₂`, likewise
//!   π) applied to `new = old ⊎ Δ`. Their deltas are evaluated by the
//!   ordinary engine over `Values` trees, so maintenance reuses the
//!   columnar `CountedBatch` kernels.
//! * × and ⋈ are **bilinear**: `Δ(L ⋈ R) = ΔL ⋈ R ⊎ L' ⋈ ΔR` (with `L'`
//!   the post-delta left state). The plan keeps both inputs materialized
//!   with equi-key hash indexes, so a refresh probes `O(|Δ|)` keys.
//! * δ, γ, − and ∩ are **stateful**: their multiplicity laws
//!   (`min(1, m)`, per-group aggregation, `max(0, m₁−m₂)`, `min(m₁, m₂)`,
//!   Definitions 3.1–3.4) are not linear, so the plan keeps support
//!   counts (δ), per-group value bags (γ) or both input bags (−/∩) and
//!   emits retraction/assertion pairs for the touched rows only.
//! * closure and whole-relation γ fall back to **recompute-and-diff**
//!   ([`MaintNode::Recompute`]): the subtree is re-evaluated and diffed
//!   against its previous result.
//!
//! Subtrees that are provably empty in *every* database state (the
//! analyzer's emptiness lattice at `Card::Unknown` inputs) are compiled
//! to a constant-empty node — no state, no delta work.
//!
//! If an incremental refresh fails (e.g. maintenance state drifted into a
//! negative multiplicity), the view falls back to a full recompute and
//! its plan state is rebuilt — correctness never depends on the
//! incremental path.

use std::collections::BTreeMap;
use std::sync::Arc;

use mera_core::delta::SignedBag;
use mera_core::prelude::*;
use mera_eval::provider::{NoRelations, RelationProvider, Schemas};
use mera_eval::Engine;
use mera_expr::rel::RelExpr;
use mera_expr::{Aggregate, ScalarExpr};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::exec::ExecConfig;

/// A signed delta over tuples — the unit of view maintenance.
pub type TupleDelta = SignedBag<Tuple>;

/// Per-relation deltas of one commit, keyed by relation (or view) name.
pub type DeltaMap = BTreeMap<String, TupleDelta>;

/// Why a `CREATE MATERIALIZED VIEW` was refused.
#[derive(Debug, Clone)]
pub enum CreateViewError {
    /// Static validation failed (self-reference, schema errors, partial
    /// definition); carries every diagnostic.
    Rejected(Vec<mera_analyze::Diagnostic>),
    /// The initial evaluation of the definition failed.
    Error(CoreError),
}

impl std::fmt::Display for CreateViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreateViewError::Rejected(diags) => {
                let first = mera_analyze::first_error(diags)
                    .expect("a rejection carries at least one error");
                write!(f, "view definition rejected: {first}")
            }
            CreateViewError::Error(e) => write!(f, "view creation failed: {e}"),
        }
    }
}

impl std::error::Error for CreateViewError {}

impl From<CoreError> for CreateViewError {
    fn from(e: CoreError) -> Self {
        CreateViewError::Error(e)
    }
}

/// One materialized view: definition, maintenance plan and current data.
#[derive(Debug, Clone)]
pub struct View {
    name: String,
    expr: RelExpr,
    schema: SchemaRef,
    deps: Vec<String>,
    plan: MaintNode,
    data: Arc<Relation>,
    refreshes: u64,
    fallbacks: u64,
}

impl View {
    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining algebra expression.
    pub fn expr(&self) -> &RelExpr {
        &self.expr
    }

    /// The view's relation schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Names the definition scans (base relations and earlier views).
    pub fn deps(&self) -> &[String] {
        &self.deps
    }

    /// The current materialized contents.
    pub fn data(&self) -> &Arc<Relation> {
        &self.data
    }

    /// How many commits refreshed this view, and how many of those fell
    /// back to a full recompute.
    pub fn refresh_stats(&self) -> (u64, u64) {
        (self.refreshes, self.fallbacks)
    }
}

/// The materialized views of one database, in creation order (which is a
/// topological order of the dependency graph: a view may only reference
/// names that already exist).
#[derive(Debug, Clone, Default)]
pub struct ViewSet {
    views: Vec<View>,
}

impl ViewSet {
    /// An empty view set.
    pub fn new() -> Self {
        ViewSet::default()
    }

    /// True when no views exist (the zero-overhead fast path).
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// The views in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &View> {
        self.views.iter()
    }

    /// Looks a view up by name.
    pub fn get(&self, name: &str) -> Option<&View> {
        self.views.iter().find(|v| v.name == name)
    }

    /// True when a view with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Cheap per-transaction snapshots of every view's contents.
    pub fn snapshots(&self) -> BTreeMap<String, Arc<Relation>> {
        self.views
            .iter()
            .map(|v| (v.name.clone(), Arc::clone(&v.data)))
            .collect()
    }

    /// The union of every view's dependency set — the base relations
    /// whose deltas commits must capture.
    pub fn tracked_relations(&self) -> std::collections::BTreeSet<String> {
        self.views
            .iter()
            .flat_map(|v| v.deps.iter().cloned())
            .collect()
    }

    /// Creates a view over `expr` against the current database state:
    /// validates the definition (self-reference, schema inference,
    /// totality — see `mera_analyze::analyze_view_def`), evaluates it
    /// once, and compiles the delta-maintenance plan.
    pub fn create(
        &mut self,
        name: &str,
        expr: RelExpr,
        db: &Database,
        config: ExecConfig,
    ) -> Result<SchemaRef, CreateViewError> {
        if self.contains(name) || db.schema().contains(name) {
            return Err(CreateViewError::Error(CoreError::DuplicateRelation(
                name.to_owned(),
            )));
        }
        let provider = ViewCatalog {
            views: &self.views,
            db,
        };
        let analysis = mera_analyze::analyze_view_def(name, &expr, &Schemas(&provider));
        if !analysis.is_accepted() {
            return Err(CreateViewError::Rejected(analysis.diagnostics));
        }
        let schema = analysis
            .schema
            .expect("an accepted view definition has a schema");
        let plan = MaintNode::build(&expr, &provider, config)?;
        let data = eval(&expr, &provider, config)?;
        self.views.push(View {
            name: name.to_owned(),
            expr,
            schema: Arc::clone(&schema),
            deps: analysis.deps,
            plan,
            data: Arc::new(data),
            refreshes: 0,
            fallbacks: 0,
        });
        Ok(schema)
    }

    /// Refreshes every view after a commit. `deltas` holds the signed
    /// per-base-relation changes of the transaction; `db` is the
    /// *post-commit* state. Views refresh in creation order, and each
    /// view's own delta joins the map so downstream views see it.
    ///
    /// A view whose incremental refresh fails is recomputed from scratch
    /// and its plan rebuilt — the error is absorbed, not surfaced.
    pub fn refresh_after_commit(
        &mut self,
        mut deltas: DeltaMap,
        db: &Database,
        config: ExecConfig,
    ) -> CoreResult<()> {
        for i in 0..self.views.len() {
            let (done, rest) = self.views.split_at_mut(i);
            let view = &mut rest[0];
            let touched = view
                .deps
                .iter()
                .any(|d| deltas.get(d).is_some_and(|x| !x.is_empty()));
            if !touched {
                continue;
            }
            let provider = ViewCatalog { views: done, db };
            view.refreshes += 1;
            let delta = match view.plan.refresh(&deltas, &provider, config) {
                Ok(delta) => match apply_delta(&mut view.data, &delta) {
                    Ok(()) => delta,
                    Err(_) => Self::recompute_view(view, &provider, config)?,
                },
                Err(_) => Self::recompute_view(view, &provider, config)?,
            };
            if !delta.is_empty() {
                deltas.insert(view.name.clone(), delta);
            }
        }
        Ok(())
    }

    /// Full-recompute fallback: re-evaluates the definition, diffs
    /// against the old contents (so downstream views still get a delta),
    /// and rebuilds the maintenance state.
    fn recompute_view(
        view: &mut View,
        provider: &ViewCatalog<'_>,
        config: ExecConfig,
    ) -> CoreResult<TupleDelta> {
        view.fallbacks += 1;
        let fresh = eval(&view.expr, provider, config)?;
        let delta = SignedBag::from_diff(view.data.bag(), fresh.bag())?;
        view.plan = MaintNode::build(&view.expr, provider, config)?;
        view.data = Arc::new(fresh);
        Ok(delta)
    }

    /// Drops every view's data and plan and rebuilds them from `db` —
    /// the recovery path: view *definitions* are durable, view *state*
    /// is reconstructed (maintenance guarantees the incremental contents
    /// equal a fresh evaluation, so rebuild and replay agree).
    pub fn rebuild(&mut self, db: &Database, config: ExecConfig) -> CoreResult<()> {
        for i in 0..self.views.len() {
            let (done, rest) = self.views.split_at_mut(i);
            let view = &mut rest[0];
            let provider = ViewCatalog { views: done, db };
            view.plan = MaintNode::build(&view.expr, &provider, config)?;
            view.data = Arc::new(eval(&view.expr, &provider, config)?);
        }
        Ok(())
    }
}

/// Applies a signed view delta to the materialized contents in place.
/// Fails (without corrupting the data beyond repair — the caller falls
/// back to recompute) when a retraction exceeds the stored multiplicity.
fn apply_delta(data: &mut Arc<Relation>, delta: &TupleDelta) -> CoreResult<()> {
    let rel = Arc::make_mut(data);
    for (t, m) in delta.iter() {
        if m > 0 {
            rel.insert(t.clone(), m as u64)?;
        } else {
            let want = m.unsigned_abs();
            if rel.remove(t, want) != want {
                return Err(CoreError::NegativeMultiplicity("view contents"));
            }
        }
    }
    Ok(())
}

/// Resolves already-refreshed views first, then the database — the
/// catalog every view's definition is evaluated against.
struct ViewCatalog<'a> {
    views: &'a [View],
    db: &'a Database,
}

impl RelationProvider for ViewCatalog<'_> {
    fn relation(&self, name: &str) -> CoreResult<&Relation> {
        if let Some(v) = self.views.iter().find(|v| v.name == name) {
            return Ok(&v.data);
        }
        self.db.relation(name)
    }
}

/// Evaluates an expression with the configured engine (no optimizer: view
/// plans are already shaped by the maintenance compiler).
fn eval(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    config: ExecConfig,
) -> CoreResult<Relation> {
    Engine::new(config.engine)
        .with_options(config.options)
        .run(expr, provider)
}

/// Evaluates a one-operator template over a literal relation — the path
/// that routes homomorphic delta pieces through the columnar engine.
fn eval_values(expr: RelExpr, config: ExecConfig) -> CoreResult<Relation> {
    Engine::new(config.engine)
        .with_options(config.options)
        .run(&expr, &NoRelations)
}

// ---------------------------------------------------------------------
// the delta-rewritten maintenance plan
// ---------------------------------------------------------------------

/// A homomorphic (per-tuple, multiplicity-linear) operator: its delta
/// rule is the operator itself, applied separately to the positive and
/// negative parts.
#[derive(Debug, Clone)]
enum LinearOp {
    Select(ScalarExpr),
    Project(AttrList),
    ExtProject(Vec<ScalarExpr>),
}

impl LinearOp {
    fn wrap(&self, input: RelExpr) -> RelExpr {
        match self {
            LinearOp::Select(p) => input.select(p.clone()),
            LinearOp::Project(a) => RelExpr::Project {
                input: Arc::new(input),
                attrs: a.clone(),
            },
            LinearOp::ExtProject(es) => input.ext_project(es.clone()),
        }
    }
}

/// One side of a maintained join: the materialized input bag, hashed on
/// the extracted equi-join key columns (`keys` are 0-based; empty when
/// the predicate has no equi conjunct, degrading to one bucket).
#[derive(Debug, Clone, Default)]
struct JoinSide {
    keys: Vec<usize>,
    buckets: FxHashMap<Vec<Value>, Bag<Tuple>>,
}

impl JoinSide {
    fn build(keys: Vec<usize>, rel: &Relation) -> CoreResult<Self> {
        let mut side = JoinSide {
            keys,
            buckets: FxHashMap::default(),
        };
        for (t, m) in rel.iter() {
            side.add(t.clone(), m)?;
        }
        Ok(side)
    }

    fn key_of(&self, t: &Tuple) -> Vec<Value> {
        self.keys.iter().map(|&i| t.values()[i].clone()).collect()
    }

    fn add(&mut self, t: Tuple, m: u64) -> CoreResult<()> {
        self.buckets
            .entry(self.key_of(&t))
            .or_default()
            .insert(t, m)
    }

    fn remove(&mut self, t: &Tuple, m: u64) -> CoreResult<()> {
        let key = self.key_of(t);
        let Some(bucket) = self.buckets.get_mut(&key) else {
            return Err(CoreError::NegativeMultiplicity("join state"));
        };
        if bucket.remove(t, m) != m {
            return Err(CoreError::NegativeMultiplicity("join state"));
        }
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        Ok(())
    }

    fn apply(&mut self, delta: &TupleDelta) -> CoreResult<()> {
        for (t, m) in delta.iter() {
            if m > 0 {
                self.add(t.clone(), m as u64)?;
            } else {
                self.remove(t, m.unsigned_abs())?;
            }
        }
        Ok(())
    }

    fn probe(&self, key: &[Value]) -> Option<&Bag<Tuple>> {
        self.buckets.get(key)
    }
}

/// A node of the delta-rewritten plan. Mirrors the definition's
/// expression tree, replacing each operator with its maintenance rule.
#[derive(Debug, Clone)]
enum MaintNode {
    /// A scanned name: the delta comes straight from the commit's map.
    Base { name: String },
    /// A subtree that is empty in every state (literal values, provably
    /// empty compositions): its delta is always empty.
    ConstEmpty,
    /// σ/π/π̄ over a child: delta maps through the operator.
    Linear {
        child: Box<MaintNode>,
        op: LinearOp,
        in_schema: SchemaRef,
    },
    /// ⊎: deltas add.
    Union {
        left: Box<MaintNode>,
        right: Box<MaintNode>,
    },
    /// × / ⋈: bilinear, with both sides materialized and hash-indexed.
    Join {
        left: Box<MaintNode>,
        right: Box<MaintNode>,
        predicate: ScalarExpr,
        left_state: JoinSide,
        right_state: JoinSide,
    },
    /// δ: support counts decide 0↔1 transitions.
    Distinct {
        child: Box<MaintNode>,
        seen: Bag<Tuple>,
    },
    /// − / ∩: both inputs materialized; touched tuples re-derive
    /// `max(0, l−r)` / `min(l, r)`.
    DiffLike {
        minus: bool,
        left: Box<MaintNode>,
        right: Box<MaintNode>,
        lstate: Bag<Tuple>,
        rstate: Bag<Tuple>,
    },
    /// Keyed γ: per-group bags of the aggregated attribute's values;
    /// touched groups emit a retraction of the old aggregate row and an
    /// assertion of the new one.
    GroupBy {
        child: Box<MaintNode>,
        keys: Vec<usize>,
        agg: Aggregate,
        attr: usize,
        in_type: DataType,
        groups: FxHashMap<Vec<Value>, Bag<Value>>,
    },
    /// Fallback for operators with no incremental rule (closure,
    /// whole-relation γ): re-evaluate and diff.
    Recompute { expr: RelExpr, last: Relation },
}

impl MaintNode {
    /// Compiles a definition subtree into its maintenance plan,
    /// evaluating subtrees as needed to seed operator state.
    fn build(
        expr: &RelExpr,
        provider: &ViewCatalog<'_>,
        config: ExecConfig,
    ) -> CoreResult<MaintNode> {
        // emptiness gate: a subtree that is empty in *every* state needs
        // no maintenance machinery at all
        if mera_analyze::structural_card(expr, &Schemas(provider)) == mera_analyze::Card::Empty {
            return Ok(MaintNode::ConstEmpty);
        }
        Ok(match expr {
            RelExpr::Scan(name) => MaintNode::Base { name: name.clone() },
            // a literal never changes
            RelExpr::Values(_) => MaintNode::ConstEmpty,
            RelExpr::Select { input, predicate } => MaintNode::Linear {
                in_schema: input.schema(&Schemas(provider))?,
                child: Box::new(Self::build(input, provider, config)?),
                op: LinearOp::Select(predicate.clone()),
            },
            RelExpr::Project { input, attrs } => MaintNode::Linear {
                in_schema: input.schema(&Schemas(provider))?,
                child: Box::new(Self::build(input, provider, config)?),
                op: LinearOp::Project(attrs.clone()),
            },
            RelExpr::ExtProject { input, exprs } => MaintNode::Linear {
                in_schema: input.schema(&Schemas(provider))?,
                child: Box::new(Self::build(input, provider, config)?),
                op: LinearOp::ExtProject(exprs.clone()),
            },
            RelExpr::Union(l, r) => MaintNode::Union {
                left: Box::new(Self::build(l, provider, config)?),
                right: Box::new(Self::build(r, provider, config)?),
            },
            RelExpr::Product(l, r)
            | RelExpr::Join {
                left: l, right: r, ..
            } => {
                let predicate = match expr {
                    RelExpr::Join { predicate, .. } => predicate.clone(),
                    _ => ScalarExpr::bool(true),
                };
                let left_arity = l.schema(&Schemas(provider))?.arity();
                let (lk, rk) = equi_keys(&predicate, left_arity);
                let lrel = eval(l, provider, config)?;
                let rrel = eval(r, provider, config)?;
                MaintNode::Join {
                    left: Box::new(Self::build(l, provider, config)?),
                    right: Box::new(Self::build(r, provider, config)?),
                    predicate,
                    left_state: JoinSide::build(lk, &lrel)?,
                    right_state: JoinSide::build(rk, &rrel)?,
                }
            }
            RelExpr::Distinct(input) => MaintNode::Distinct {
                seen: eval(input, provider, config)?.into_bag(),
                child: Box::new(Self::build(input, provider, config)?),
            },
            RelExpr::Difference(l, r) | RelExpr::Intersect(l, r) => MaintNode::DiffLike {
                minus: matches!(expr, RelExpr::Difference(..)),
                lstate: eval(l, provider, config)?.into_bag(),
                rstate: eval(r, provider, config)?.into_bag(),
                left: Box::new(Self::build(l, provider, config)?),
                right: Box::new(Self::build(r, provider, config)?),
            },
            RelExpr::GroupBy {
                input,
                keys,
                agg,
                attr,
            } if !keys.is_empty() => {
                let in_schema = input.schema(&Schemas(provider))?;
                let in_type = in_schema.dtype(*attr)?;
                let rel = eval(input, provider, config)?;
                let mut groups: FxHashMap<Vec<Value>, Bag<Value>> = FxHashMap::default();
                for (t, m) in rel.iter() {
                    let key = group_key(t, keys)?;
                    groups
                        .entry(key)
                        .or_default()
                        .insert(t.attr(*attr)?.clone(), m)?;
                }
                MaintNode::GroupBy {
                    child: Box::new(Self::build(input, provider, config)?),
                    keys: keys.clone(),
                    agg: *agg,
                    attr: *attr,
                    in_type,
                    groups,
                }
            }
            // whole-relation γ and closure have no incremental rule here
            RelExpr::GroupBy { .. } | RelExpr::Closure(_) => MaintNode::Recompute {
                expr: expr.clone(),
                last: eval(expr, provider, config)?,
            },
        })
    }

    /// Propagates the commit's deltas through this node, updating
    /// maintenance state and returning the node's own output delta.
    fn refresh(
        &mut self,
        deltas: &DeltaMap,
        provider: &ViewCatalog<'_>,
        config: ExecConfig,
    ) -> CoreResult<TupleDelta> {
        match self {
            MaintNode::Base { name } => Ok(deltas.get(name).cloned().unwrap_or_default()),
            MaintNode::ConstEmpty => Ok(TupleDelta::new()),
            MaintNode::Linear {
                child,
                op,
                in_schema,
            } => {
                let d = child.refresh(deltas, provider, config)?;
                if d.is_empty() {
                    return Ok(d);
                }
                let (pos, neg) = d.split();
                let mut out = TupleDelta::new();
                for (bag, positive) in [(pos, true), (neg, false)] {
                    if bag.is_empty() {
                        continue;
                    }
                    let part = Relation::from_counted(Arc::clone(in_schema), bag)?;
                    let mapped = eval_values(op.wrap(RelExpr::values(part)), config)?;
                    for (t, m) in mapped.iter() {
                        out.insert_unsigned(t.clone(), m, positive)?;
                    }
                }
                Ok(out)
            }
            MaintNode::Union { left, right } => {
                let mut d = left.refresh(deltas, provider, config)?;
                d.merge(right.refresh(deltas, provider, config)?)?;
                Ok(d)
            }
            MaintNode::Join {
                left,
                right,
                predicate,
                left_state,
                right_state,
            } => {
                let dl = left.refresh(deltas, provider, config)?;
                let dr = right.refresh(deltas, provider, config)?;
                let mut out = TupleDelta::new();
                // ΔL ⋈ R_old: a left tuple's key values (taken at the
                // left key columns) index the right side's buckets,
                // because the key lists are parallel
                for (t, m) in dl.iter() {
                    if let Some(bucket) = right_state.probe(&left_state.key_of(t)) {
                        for (u, n) in bucket.iter() {
                            let joined = t.concat(u);
                            if predicate.eval_predicate(&joined)? {
                                out.insert(joined, signed_product(m, n)?)?;
                            }
                        }
                    }
                }
                left_state.apply(&dl)?;
                // L_new ⋈ ΔR (post-delta left state, so ΔL ⋈ ΔR counts once)
                for (t, m) in dr.iter() {
                    if let Some(bucket) = left_state.probe(&right_state.key_of(t)) {
                        for (u, n) in bucket.iter() {
                            let joined = u.concat(t);
                            if predicate.eval_predicate(&joined)? {
                                out.insert(joined, signed_product(m, n)?)?;
                            }
                        }
                    }
                }
                right_state.apply(&dr)?;
                Ok(out)
            }
            MaintNode::Distinct { child, seen } => {
                let d = child.refresh(deltas, provider, config)?;
                let mut out = TupleDelta::new();
                for (t, m) in d.into_iter() {
                    let old = seen.multiplicity(&t);
                    if m > 0 {
                        seen.insert(t.clone(), m as u64)?;
                    } else {
                        let want = m.unsigned_abs();
                        if seen.remove(&t, want) != want {
                            return Err(CoreError::NegativeMultiplicity("distinct state"));
                        }
                    }
                    let new = seen.multiplicity(&t);
                    out.insert(t, i64::from(new > 0) - i64::from(old > 0))?;
                }
                Ok(out)
            }
            MaintNode::DiffLike {
                minus,
                left,
                right,
                lstate,
                rstate,
            } => {
                let dl = left.refresh(deltas, provider, config)?;
                let dr = right.refresh(deltas, provider, config)?;
                let minus = *minus;
                let combine = |l: u64, r: u64| if minus { l.saturating_sub(r) } else { l.min(r) };
                let mut out = TupleDelta::new();
                // Dedup: a tuple changed on *both* sides (e.g. `r ∩ r`)
                // must contribute its output diff exactly once.
                let mut touched: Vec<Tuple> = Vec::new();
                let mut seen: FxHashSet<&Tuple> = FxHashSet::default();
                for (t, _) in dl.iter().chain(dr.iter()) {
                    if seen.insert(t) {
                        touched.push(t.clone());
                    }
                }
                drop(seen);
                let olds: Vec<(u64, u64)> = touched
                    .iter()
                    .map(|t| (lstate.multiplicity(t), rstate.multiplicity(t)))
                    .collect();
                apply_signed(lstate, &dl, "difference/intersection state")?;
                apply_signed(rstate, &dr, "difference/intersection state")?;
                for (t, (ol, or)) in touched.into_iter().zip(olds) {
                    let old_out = combine(ol, or);
                    let new_out = combine(lstate.multiplicity(&t), rstate.multiplicity(&t));
                    out.insert(t, signed_diff(new_out, old_out)?)?;
                }
                Ok(out)
            }
            MaintNode::GroupBy {
                child,
                keys,
                agg,
                attr,
                in_type,
                groups,
            } => {
                let d = child.refresh(deltas, provider, config)?;
                // bucket the delta by group key
                let mut by_key: FxHashMap<Vec<Value>, Vec<(Value, i64)>> = FxHashMap::default();
                for (t, m) in d.iter() {
                    by_key
                        .entry(group_key(t, keys)?)
                        .or_default()
                        .push((t.attr(*attr)?.clone(), m));
                }
                let mut out = TupleDelta::new();
                for (key, entries) in by_key {
                    let bag = groups.entry(key.clone()).or_default();
                    if !bag.is_empty() {
                        let old = agg.compute(*in_type, bag.iter())?;
                        out.insert(agg_row(&key, old), -1)?;
                    }
                    for (v, m) in entries {
                        if m > 0 {
                            bag.insert(v, m as u64)?;
                        } else {
                            let want = m.unsigned_abs();
                            if bag.remove(&v, want) != want {
                                return Err(CoreError::NegativeMultiplicity("group state"));
                            }
                        }
                    }
                    if bag.is_empty() {
                        groups.remove(&key);
                    } else {
                        let new = agg.compute(*in_type, bag.iter())?;
                        out.insert(agg_row(&key, new), 1)?;
                    }
                }
                Ok(out)
            }
            MaintNode::Recompute { expr, last } => {
                let fresh = eval(expr, provider, config)?;
                let delta = SignedBag::from_diff(last.bag(), fresh.bag())?;
                *last = fresh;
                Ok(delta)
            }
        }
    }
}

/// `new − old` of two unsigned multiplicities as a checked i64.
fn signed_diff(new: u64, old: u64) -> CoreResult<i64> {
    let to = |m: u64| i64::try_from(m).map_err(|_| CoreError::Overflow("signed multiplicity"));
    to(new)?
        .checked_sub(to(old)?)
        .ok_or(CoreError::Overflow("signed multiplicity"))
}

/// `m · n` of a signed and an unsigned multiplicity, checked.
fn signed_product(m: i64, n: u64) -> CoreResult<i64> {
    let n = i64::try_from(n).map_err(|_| CoreError::Overflow("join multiplicity"))?;
    m.checked_mul(n)
        .ok_or(CoreError::Overflow("join multiplicity"))
}

/// Applies a signed delta to an unsigned state bag, failing on underflow.
fn apply_signed(state: &mut Bag<Tuple>, delta: &TupleDelta, what: &'static str) -> CoreResult<()> {
    for (t, m) in delta.iter() {
        if m > 0 {
            state.insert(t.clone(), m as u64)?;
        } else {
            let want = m.unsigned_abs();
            if state.remove(t, want) != want {
                return Err(CoreError::NegativeMultiplicity(what));
            }
        }
    }
    Ok(())
}

/// Projects a tuple onto the grouping key (1-based indexes, in order).
fn group_key(t: &Tuple, keys: &[usize]) -> CoreResult<Vec<Value>> {
    keys.iter().map(|&k| t.attr(k).cloned()).collect()
}

/// Builds the output row `key ⊕ ⟨aggregate⟩` of a keyed γ.
fn agg_row(key: &[Value], agg: Value) -> Tuple {
    let mut vals = key.to_vec();
    vals.push(agg);
    Tuple::new(vals)
}

/// Extracts the equi-join key columns from a predicate over `E ⊕ E'`:
/// the conjuncts of shape `%i = %j` with `i` on the left side and `j` on
/// the right. Returns parallel 0-based key lists `(left, right)`; both
/// empty when no such conjunct exists (the nested-loop degradation).
fn equi_keys(predicate: &ScalarExpr, left_arity: usize) -> (Vec<usize>, Vec<usize>) {
    fn conjuncts<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
        if let ScalarExpr::And(l, r) = e {
            conjuncts(l, out);
            conjuncts(r, out);
        } else {
            out.push(e);
        }
    }
    let mut cs = Vec::new();
    conjuncts(predicate, &mut cs);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for c in cs {
        if let ScalarExpr::Cmp(mera_expr::CmpOp::Eq, a, b) = c {
            if let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) {
                let (i, j) = if i <= j { (*i, *j) } else { (*j, *i) };
                if i >= 1 && i <= left_arity && j > left_arity {
                    left.push(i - 1);
                    right.push(j - left_arity - 1);
                }
            }
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::Program;
    use crate::statement::Statement;
    use crate::transaction::TransactionManager;
    use mera_core::tuple;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "r",
                Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
            )
            .expect("fresh")
            .with(
                "s",
                Schema::named(&[("k", DataType::Int), ("w", DataType::Int)]),
            )
            .expect("fresh")
    }

    fn row2(a: i64, b: i64) -> Relation {
        relation_of(
            Schema::anon(&[DataType::Int, DataType::Int]),
            vec![tuple![a, b]],
        )
        .expect("typed")
    }

    fn insert(rel: &str, a: i64, b: i64) -> Statement {
        Statement::insert(rel, RelExpr::values(row2(a, b)))
    }

    fn delete(rel: &str, a: i64, b: i64) -> Statement {
        Statement::delete(rel, RelExpr::values(row2(a, b)))
    }

    /// The maintained contents must equal a fresh evaluation of the
    /// definition at every commit point.
    fn assert_consistent(mgr: &TransactionManager, name: &str) {
        let db = mgr.snapshot();
        let view = mgr.view(name).expect("view exists");
        let expr = {
            // recompute through the manager-independent engine
            let snaps = mgr.view_snapshots();
            let v = snaps.get(name).expect("view exists");
            assert_eq!(&view, v.as_ref());
            drop(snaps);
            mgr_view_expr(mgr, name)
        };
        let fresh = Engine::new(EngineKind::Physical)
            .run(&expr, &db)
            .expect("definition evaluates");
        assert_eq!(view, fresh, "view `{name}` diverged from its definition");
    }

    fn mgr_view_expr(mgr: &TransactionManager, name: &str) -> RelExpr {
        // round-trip through the snapshot API is not enough: fetch the
        // definition by re-creating it is impossible, so expose via stats
        // — instead we just re-derive from the known test definitions
        let _ = mgr;
        TEST_DEFS.with(|m| m.borrow().get(name).expect("registered").clone())
    }

    thread_local! {
        static TEST_DEFS: std::cell::RefCell<BTreeMap<String, RelExpr>> =
            const { RefCell::new(BTreeMap::new()) };
    }
    use std::cell::RefCell;

    fn create(mgr: &TransactionManager, name: &str, expr: RelExpr) {
        TEST_DEFS.with(|m| m.borrow_mut().insert(name.to_owned(), expr.clone()));
        mgr.create_view(name, expr).expect("view accepted");
    }

    use mera_eval::EngineKind;

    #[test]
    fn select_project_view_is_maintained() {
        let mgr = TransactionManager::new(schema());
        create(
            &mgr,
            "v",
            RelExpr::scan("r")
                .select(ScalarExpr::attr(2).cmp(mera_expr::CmpOp::Gt, ScalarExpr::int(10)))
                .project(&[1]),
        );
        for stmt in [
            insert("r", 1, 5),
            insert("r", 2, 20),
            insert("r", 2, 20),
            delete("r", 2, 20),
            insert("r", 3, 11),
        ] {
            mgr.execute(&Program::single(stmt)).expect("commits");
            assert_consistent(&mgr, "v");
        }
        let (_, refreshes, fallbacks) = mgr.view_stats().remove(0);
        assert!(refreshes >= 4);
        assert_eq!(fallbacks, 0, "linear ops must never fall back");
    }

    #[test]
    fn join_view_is_maintained_incrementally() {
        let mgr = TransactionManager::new(schema());
        create(
            &mgr,
            "j",
            RelExpr::scan("r").join(
                RelExpr::scan("s"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            ),
        );
        let steps = [
            insert("r", 1, 10),
            insert("s", 1, 100),
            insert("s", 1, 200),
            insert("r", 2, 20),
            insert("s", 2, 300),
            delete("s", 1, 100),
            delete("r", 1, 10),
        ];
        for stmt in steps {
            mgr.execute(&Program::single(stmt)).expect("commits");
            assert_consistent(&mgr, "j");
        }
        let (_, _, fallbacks) = mgr.view_stats().remove(0);
        assert_eq!(fallbacks, 0, "equi-joins must never fall back");
    }

    #[test]
    fn keyed_group_by_view_tracks_group_births_and_deaths() {
        let mgr = TransactionManager::new(schema());
        create(
            &mgr,
            "totals",
            RelExpr::scan("r").group_by(&[1], Aggregate::Sum, 2),
        );
        for stmt in [
            insert("r", 1, 10),
            insert("r", 1, 5),
            insert("r", 2, 7),
            delete("r", 1, 10),
            delete("r", 2, 7), // group 2 dies
            insert("r", 2, 9), // and is reborn
        ] {
            mgr.execute(&Program::single(stmt)).expect("commits");
            assert_consistent(&mgr, "totals");
        }
        // MIN/MAX are maintainable too (full value bags are kept)
        create(
            &mgr,
            "maxes",
            RelExpr::scan("r").group_by(&[1], Aggregate::Max, 2),
        );
        mgr.execute(&Program::single(delete("r", 1, 5)))
            .expect("commits");
        assert_consistent(&mgr, "maxes");
        for (_, _, fallbacks) in mgr.view_stats() {
            assert_eq!(fallbacks, 0);
        }
    }

    #[test]
    fn distinct_union_difference_intersection_views() {
        let mgr = TransactionManager::new(schema());
        create(&mgr, "d", RelExpr::scan("r").distinct());
        create(&mgr, "u", RelExpr::scan("r").union(RelExpr::scan("s")));
        create(&mgr, "m", RelExpr::scan("r").difference(RelExpr::scan("s")));
        create(&mgr, "i", RelExpr::scan("r").intersect(RelExpr::scan("s")));
        for stmt in [
            insert("r", 1, 1),
            insert("r", 1, 1),
            insert("s", 1, 1),
            insert("s", 1, 1),
            insert("s", 1, 1),
            delete("r", 1, 1),
            insert("r", 2, 2),
            delete("s", 1, 1),
        ] {
            mgr.execute(&Program::single(stmt)).expect("commits");
            for name in ["d", "u", "m", "i"] {
                assert_consistent(&mgr, name);
            }
        }
        for (_, _, fallbacks) in mgr.view_stats() {
            assert_eq!(fallbacks, 0);
        }
    }

    #[test]
    fn whole_relation_aggregate_uses_recompute_fallback_node() {
        let mgr = TransactionManager::new(schema());
        // γ with empty keys has no incremental rule: Recompute node
        create(
            &mgr,
            "cnt",
            RelExpr::scan("r").group_by(&[], Aggregate::Cnt, 1),
        );
        for stmt in [insert("r", 1, 1), insert("r", 2, 2), delete("r", 1, 1)] {
            mgr.execute(&Program::single(stmt)).expect("commits");
            assert_consistent(&mgr, "cnt");
        }
    }

    #[test]
    fn views_layer_on_views() {
        let mgr = TransactionManager::new(schema());
        create(
            &mgr,
            "big",
            RelExpr::scan("r")
                .select(ScalarExpr::attr(2).cmp(mera_expr::CmpOp::Gt, ScalarExpr::int(0))),
        );
        // second view scans the first — the delta must cascade
        create(
            &mgr,
            "big_total",
            RelExpr::scan("big").group_by(&[1], Aggregate::Sum, 2),
        );
        mgr.execute(&Program::single(insert("r", 1, 3)))
            .expect("commits");
        let v = mgr.view("big_total").expect("exists");
        assert_eq!(v.multiplicity(&tuple![1_i64, 3_i64]), 1);
        mgr.execute(&Program::single(insert("r", 1, 4)))
            .expect("commits");
        let v = mgr.view("big_total").expect("exists");
        assert_eq!(v.multiplicity(&tuple![1_i64, 7_i64]), 1);
    }

    #[test]
    fn views_are_readable_but_not_writable() {
        let mgr = TransactionManager::new(schema());
        create(&mgr, "v", RelExpr::scan("r").project(&[1]));
        mgr.execute(&Program::single(insert("r", 7, 1)))
            .expect("commits");
        // readable in queries
        let (outcome, _) = mgr
            .execute(&Program::single(Statement::query(RelExpr::scan("v"))))
            .expect("runs");
        let out = outcome.outputs().expect("committed");
        assert_eq!(out.queries[0].multiplicity(&tuple![7_i64]), 1);
        // not writable: E0302 at analysis time
        let (outcome, _) = mgr
            .execute(&Program::single(insert("v", 9, 9)))
            .expect("runs");
        let crate::transaction::Outcome::Aborted(
            crate::transaction::AbortReason::StaticallyRejected(diags),
        ) = outcome
        else {
            panic!("expected static rejection");
        };
        assert!(diags
            .iter()
            .any(|d| d.code == mera_analyze::Code::DmlOnView));
        // and a temporary may not shadow a view either
        let (outcome, _) = mgr
            .execute(&Program::single(Statement::assign("v", RelExpr::scan("r"))))
            .expect("runs");
        assert!(!outcome.is_committed());
    }

    #[test]
    fn rejected_definitions_do_not_create_views() {
        let mgr = TransactionManager::new(schema());
        // duplicate of a base relation name
        assert!(matches!(
            mgr.create_view("r", RelExpr::scan("s")),
            Err(CreateViewError::Error(CoreError::DuplicateRelation(_)))
        ));
        // partial aggregate over possibly-empty input: E0303
        let err = mgr
            .create_view("avg", RelExpr::scan("r").group_by(&[], Aggregate::Avg, 2))
            .unwrap_err();
        let CreateViewError::Rejected(diags) = err else {
            panic!("expected rejection");
        };
        assert!(diags
            .iter()
            .any(|d| d.code == mera_analyze::Code::PartialView));
        assert!(mgr.view("avg").is_err());
    }

    #[test]
    fn aborted_transactions_leave_views_untouched() {
        let mgr = TransactionManager::new(schema());
        create(&mgr, "v", RelExpr::scan("r").project(&[1]));
        mgr.execute(&Program::single(insert("r", 1, 1)))
            .expect("commits");
        let before = mgr.view("v").expect("exists");
        // a failing transaction: insert then scan of unknown relation
        let bad = Program::new()
            .then(insert("r", 2, 2))
            .then(Statement::query(RelExpr::scan("nosuch")));
        let (outcome, _) = mgr.execute(&bad).expect("runs");
        assert!(!outcome.is_committed());
        assert_eq!(mgr.view("v").expect("exists"), before);
    }

    #[test]
    fn multi_statement_transactions_coalesce_deltas() {
        let mgr = TransactionManager::new(schema());
        create(
            &mgr,
            "totals",
            RelExpr::scan("r").group_by(&[1], Aggregate::Sum, 2),
        );
        // one transaction that inserts, deletes and re-inserts: only the
        // net change may reach the view
        let p = Program::new()
            .then(insert("r", 1, 10))
            .then(delete("r", 1, 10))
            .then(insert("r", 1, 20))
            .then(insert("r", 2, 1));
        mgr.execute(&p).expect("commits");
        assert_consistent(&mgr, "totals");
        let v = mgr.view("totals").expect("exists");
        assert_eq!(v.multiplicity(&tuple![1_i64, 20_i64]), 1);
        assert_eq!(v.multiplicity(&tuple![2_i64, 1_i64]), 1);
    }

    /// Regression: when the same base relation feeds *both* sides of a
    /// difference or intersection (`r ∩ r`, `r − r`), the tuple shows up
    /// in both child deltas and its output diff must still be applied
    /// exactly once.
    #[test]
    fn self_intersection_and_difference_are_not_double_counted() {
        let mgr = TransactionManager::new(schema());
        create(
            &mgr,
            "self_cap",
            RelExpr::scan("r").intersect(RelExpr::scan("r")),
        );
        create(
            &mgr,
            "self_minus",
            RelExpr::scan("r").difference(RelExpr::scan("r")),
        );
        let p = Program::new()
            .then(insert("r", 2, 2))
            .then(insert("r", 2, 2))
            .then(insert("r", 0, 4));
        mgr.execute(&p).expect("commits");
        assert_consistent(&mgr, "self_cap");
        assert_consistent(&mgr, "self_minus");
        let cap = mgr.view("self_cap").expect("exists");
        assert_eq!(cap.multiplicity(&tuple![2_i64, 2_i64]), 2);
        assert!(mgr.view("self_minus").expect("exists").is_empty());

        mgr.execute(&Program::single(delete("r", 2, 2)))
            .expect("commits");
        assert_consistent(&mgr, "self_cap");
        assert_consistent(&mgr, "self_minus");
    }
}
