//! Transactions (Definition 4.3) and the serial transaction manager.
//!
//! A transaction is a program in *transaction brackets* executed against a
//! database state `D_t`. The end bracket either **commits** — temporaries
//! are removed and the final intermediate state is installed as `D_{t+1}` —
//! or **aborts** — `D_t` is (re-)installed as `D_{t+1}`. Either way the
//! atomicity property holds: `T(D) = D_{t.n}` or `T(D) = D`.
//!
//! Isolation is by serial execution: the [`TransactionManager`] runs one
//! transaction at a time under a lock, so only pre- and post-transaction
//! states are ever visible — precisely the paper's visibility rule.

use std::fmt;
use std::sync::Arc;

use mera_core::prelude::*;
use mera_eval::{IndexSet, KeySet, KeyViolation};
use mera_opt::CatalogStats;
use parking_lot::Mutex;

use crate::constraints::ConstraintSet;
use crate::exec::{
    analyze_program_with_views, execute_statement, ExecConfig, Outputs, WorkingState,
};
use crate::log::{LogRecord, RedoLog};
use crate::statement::Program;
use crate::views::{CreateViewError, ViewSet};
use mera_expr::rel::RelExpr;

/// Why a transaction aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// A statement failed with an error (the common case: partial
    /// aggregates, division by zero, schema violations).
    Error(CoreError),
    /// The pre-execution static analyzer found error-severity diagnostics;
    /// no statement was executed. Carries *every* diagnostic of the run
    /// (warnings included), in analysis order.
    StaticallyRejected(Vec<mera_analyze::Diagnostic>),
    /// An injected fault (testing hook) fired before the given statement
    /// index.
    InjectedFault(usize),
    /// The commit-time integrity check found a violation (the enforcement
    /// model of the paper's reference \[11\]).
    ConstraintViolation(String),
    /// A declared key constraint would be violated by the transaction's
    /// net deltas — detected in O(|delta|) at the commit point, before
    /// anything is installed. Carries the `E0401` diagnostic.
    KeyViolation(mera_analyze::Diagnostic),
    /// First-committer-wins validation failed: between this transaction's
    /// snapshot and its commit point, another transaction committed writes
    /// to the same relations (or, on keyed relations, the same key
    /// points). The transaction saw a consistent snapshot throughout and
    /// can simply be retried against a newer one.
    Conflict {
        /// The relations whose concurrent writes overlap.
        relations: Vec<String>,
        /// The logical time of the newest conflicting committed version.
        committed_at: LogicalTime,
    },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Error(e) => write!(f, "statement error: {e}"),
            AbortReason::StaticallyRejected(diags) => {
                let first = mera_analyze::first_error(diags)
                    .expect("a static rejection carries at least one error");
                write!(f, "static analysis rejected the program: {first}")
            }
            AbortReason::InjectedFault(i) => write!(f, "injected fault before statement {i}"),
            AbortReason::ConstraintViolation(v) => write!(f, "{v}"),
            AbortReason::KeyViolation(d) => write!(f, "{d}"),
            AbortReason::Conflict {
                relations,
                committed_at,
            } => write!(
                f,
                "write-write conflict on {} with the transaction committed at t={committed_at} \
                 (first committer wins; retry against a newer snapshot)",
                relations.join(", ")
            ),
        }
    }
}

/// The `E0401` diagnostic for one detected key violation.
pub(crate) fn key_violation_diagnostic(v: &KeyViolation) -> mera_analyze::Diagnostic {
    mera_analyze::Diagnostic::new(
        mera_analyze::Code::KeyViolation,
        mera_analyze::Span::root("commit"),
        v.to_string(),
    )
    .with_note(
        "a key bounds the summed multiplicity per key point by 1; \
         the transaction's net deltas would exceed it",
    )
}

/// The outcome of one transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The transaction committed; query outputs are delivered.
    Committed(Outputs),
    /// The transaction aborted; the database is unchanged.
    Aborted(AbortReason),
}

impl Outcome {
    /// True when committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, Outcome::Committed(_))
    }

    /// The outputs of a committed transaction.
    pub fn outputs(&self) -> Option<&Outputs> {
        match self {
            Outcome::Committed(o) => Some(o),
            Outcome::Aborted(_) => None,
        }
    }
}

/// Runs one transaction against a database state, returning the outcome
/// and the resulting state (`D_{t+1}` in both branches — logical time
/// advances even for aborts, marking the attempt as a transition).
///
/// `fault_before` injects an abort before the statement with that index
/// (0-based), exercising the atomicity property under mid-program failure.
pub fn run_transaction(
    db: &Database,
    program: &Program,
    config: ExecConfig,
    fault_before: Option<usize>,
) -> (Database, Outcome) {
    run_transaction_checked(db, program, config, fault_before, &ConstraintSet::new())
}

/// [`run_transaction`] with commit-time integrity enforcement: after the
/// last statement, the candidate state is validated against `constraints`;
/// a violation aborts exactly like a statement error.
pub fn run_transaction_checked(
    db: &Database,
    program: &Program,
    config: ExecConfig,
    fault_before: Option<usize>,
    constraints: &ConstraintSet,
) -> (Database, Outcome) {
    run_transaction_with_views(db, None, program, config, fault_before, constraints)
}

/// [`run_transaction_checked`] with materialized-view maintenance: view
/// contents are readable during the transaction (as of `D_t` — a view
/// never shows the transaction's own uncommitted writes), and at commit
/// time the signed deltas of every mutated base relation are pushed
/// through the views' maintenance plans. On abort the views are
/// untouched.
///
/// If even the full-recompute fallback of some view fails, the whole
/// transaction aborts and the views are rebuilt against the pre-state —
/// views and base state never diverge.
pub fn run_transaction_with_views(
    db: &Database,
    views: Option<&mut ViewSet>,
    program: &Program,
    config: ExecConfig,
    fault_before: Option<usize>,
    constraints: &ConstraintSet,
) -> (Database, Outcome) {
    run_transaction_cataloged(
        db,
        CommitCatalog {
            views,
            ..CommitCatalog::default()
        },
        program,
        config,
        fault_before,
        constraints,
    )
}

/// The maintained catalog objects a committing transaction keeps
/// consistent with the base state. All three consume the *same* signed
/// deltas at commit time, so maintenance work is O(|delta|) across the
/// board, never O(|relation|).
#[derive(Default)]
pub struct CommitCatalog<'a> {
    /// Materialized views, refreshed through their maintenance plans.
    pub views: Option<&'a mut ViewSet>,
    /// Table statistics (row counts, column bounds, distinct sketches),
    /// folded incrementally and stamped with the post-commit time. Also
    /// read *during* the transaction: statements plan cost-based.
    pub stats: Option<&'a mut Arc<CatalogStats>>,
    /// Secondary indexes, folded incrementally. Also read during the
    /// transaction: statements take index access paths while the indexed
    /// relations are untouched by the transaction itself.
    pub indexes: Option<&'a mut Arc<IndexSet>>,
    /// Declared key constraints, checked against the net deltas at the
    /// commit point (a violation aborts) and folded incrementally on
    /// success. Also read during the transaction: the optimizer grounds
    /// its property inference in keys of relations the transaction has
    /// not dirtied.
    pub keys: Option<&'a mut Arc<KeySet>>,
}

/// [`run_transaction_with_views`] generalised to the full maintained
/// catalog: views, table statistics and secondary indexes all stay
/// consistent with the committed state, and statements inside the
/// transaction plan against the statistics and indexes of `D_t`.
pub fn run_transaction_cataloged(
    db: &Database,
    catalog: CommitCatalog<'_>,
    program: &Program,
    config: ExecConfig,
    fault_before: Option<usize>,
    constraints: &ConstraintSet,
) -> (Database, Outcome) {
    let CommitCatalog {
        views,
        mut stats,
        mut indexes,
        mut keys,
    } = catalog;
    let abort = |reason: AbortReason| {
        let mut next = db.clone();
        next.tick();
        (next, Outcome::Aborted(reason))
    };
    // static pre-check: a program with error-severity diagnostics aborts
    // before any statement runs (warnings pass through — they describe
    // plans that *may* fail, and execution is the arbiter)
    let empty = ViewSet::new();
    if config.analyze {
        let vs = views.as_deref().unwrap_or(&empty);
        let diags = analyze_program_with_views(db, vs, program);
        if mera_analyze::has_errors(&diags) {
            return abort(AbortReason::StaticallyRejected(diags));
        }
    }
    let mut state = WorkingState::with_catalog(
        db.clone(),
        views.as_deref().unwrap_or(&empty),
        stats.as_deref().map(Arc::clone),
        indexes.as_deref().map(Arc::clone),
        keys.as_deref().map(Arc::clone),
    );
    let mut outputs = Outputs::default();
    for (i, stmt) in program.statements.iter().enumerate() {
        if fault_before == Some(i) {
            // abort: D_t is installed as D_{t+1}
            return abort(AbortReason::InjectedFault(i));
        }
        if let Err(e) = execute_statement(&mut state, stmt, config, &mut outputs) {
            return abort(AbortReason::Error(e));
        }
    }
    // commit-time integrity check (the [11] enforcement point)
    match constraints.validate(&state.db) {
        Ok(Ok(())) => {}
        Ok(Err(violation)) => {
            return abort(AbortReason::ConstraintViolation(violation.to_string()));
        }
        Err(e) => return abort(AbortReason::Error(e)),
    }
    // key-constraint check: every key is verified against the *net* deltas
    // (O(|delta|) per key) before anything is installed — all-or-nothing
    if let Some(ks) = keys.as_deref() {
        for (name, delta) in &state.deltas {
            if delta.is_empty() {
                continue;
            }
            if let Err(v) = ks.check(name, delta) {
                return abort(AbortReason::KeyViolation(key_violation_diagnostic(&v)));
            }
        }
    }
    // commit: temporaries vanish with the working state; D_{t.n} → D_{t+1}.
    // Destructuring drops the working state's snapshots (views, stats,
    // indexes), so the maintenance below mutates sole owners in place.
    let WorkingState {
        db: mut next,
        deltas,
        ..
    } = state;
    next.tick();
    // statistics and indexes fold the deltas by reference (views consume
    // them by value below): O(|delta|) per catalog object
    if let Some(s) = stats.as_deref_mut() {
        let s = Arc::make_mut(s);
        for (name, delta) in &deltas {
            if delta.is_empty() {
                continue;
            }
            if let Ok(post) = next.relation(name) {
                s.apply_commit(name, delta, post);
            }
        }
        s.set_as_of(next.time());
    }
    if let Some(ix) = indexes.as_deref_mut() {
        let ix = Arc::make_mut(ix);
        for (name, delta) in &deltas {
            if delta.is_empty() {
                continue;
            }
            if ix.apply_commit(name, delta).is_err() {
                // incremental maintenance failed; the definitions still
                // hold and the base commit is fine — rebuild from post
                let _ = ix.rebuild(&next);
                break;
            }
        }
    }
    if let Some(ks) = keys.as_deref_mut() {
        // the check above passed, so folding the deltas in cannot violate
        let ks = Arc::make_mut(ks);
        for (name, delta) in &deltas {
            if !delta.is_empty() {
                ks.apply_commit(name, delta);
            }
        }
    }
    if let Some(vs) = views {
        if let Err(e) = vs.refresh_after_commit(deltas, &next, config) {
            // even full recompute failed: abort and re-anchor the whole
            // catalog to the pre-transaction state (which it described
            // before, so these rebuilds are expected to succeed)
            let (aborted, outcome) = abort(AbortReason::Error(e));
            let _ = vs.rebuild(db, config);
            if let Some(s) = stats {
                if let Ok(mut fresh) = CatalogStats::from_database(db) {
                    fresh.set_as_of(aborted.time());
                    *s = Arc::new(fresh);
                }
            }
            if let Some(ix) = indexes {
                let _ = Arc::make_mut(ix).rebuild(db);
            }
            if let Some(ks) = keys {
                let _ = Arc::make_mut(ks).rebuild(db);
            }
            return (aborted, outcome);
        }
    }
    (next, Outcome::Committed(outputs))
}

/// A serial transaction manager: owns the database state, executes
/// transactions one at a time, and maintains a redo log of committed
/// programs for recovery.
pub struct TransactionManager {
    inner: Mutex<ManagerInner>,
    config: ExecConfig,
    constraints: ConstraintSet,
}

struct ManagerInner {
    db: Database,
    log: RedoLog,
    views: ViewSet,
    stats: Arc<CatalogStats>,
    indexes: Arc<IndexSet>,
    keys: Arc<KeySet>,
}

impl ManagerInner {
    fn catalog(&mut self) -> CommitCatalog<'_> {
        CommitCatalog {
            views: Some(&mut self.views),
            stats: Some(&mut self.stats),
            indexes: Some(&mut self.indexes),
            keys: Some(&mut self.keys),
        }
    }
}

/// Why [`TransactionManager::declare_key`] refused a declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclareKeyError {
    /// The declaration was rejected with a diagnostic: existing data
    /// violates the key (`E0401`), the target is a view (`E0402`), or the
    /// key is already declared (`E0403`).
    Rejected(mera_analyze::Diagnostic),
    /// The declaration is structurally invalid (unknown relation,
    /// out-of-range or duplicate attributes).
    Error(CoreError),
}

impl fmt::Display for DeclareKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclareKeyError::Rejected(d) => write!(f, "key declaration rejected: {d}"),
            DeclareKeyError::Error(e) => write!(f, "key declaration failed: {e}"),
        }
    }
}

impl std::error::Error for DeclareKeyError {}

impl From<CoreError> for DeclareKeyError {
    fn from(e: CoreError) -> Self {
        DeclareKeyError::Error(e)
    }
}

impl TransactionManager {
    /// Creates a manager over the initial state of a database schema.
    pub fn new(schema: DatabaseSchema) -> Self {
        Self::with_config(schema, ExecConfig::default())
    }

    /// Creates a manager with an explicit execution configuration.
    pub fn with_config(schema: DatabaseSchema, config: ExecConfig) -> Self {
        Self::with_constraints(schema, config, ConstraintSet::new())
    }

    /// Creates a manager enforcing an integrity constraint set at every
    /// commit point.
    pub fn with_constraints(
        schema: DatabaseSchema,
        config: ExecConfig,
        constraints: ConstraintSet,
    ) -> Self {
        let db = Database::new(schema);
        let stats = CatalogStats::from_database(&db).expect("catalog relations resolve");
        TransactionManager {
            inner: Mutex::new(ManagerInner {
                db,
                log: RedoLog::new(),
                views: ViewSet::new(),
                stats: Arc::new(stats),
                indexes: Arc::new(IndexSet::new()),
                keys: Arc::new(KeySet::new()),
            }),
            config,
            constraints,
        }
    }

    /// The constraint set enforced at commit time.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Restores a manager from a redo log by replaying every committed
    /// program against the initial state (the durability property: a
    /// committed transaction's effects survive a restart).
    pub fn recover(schema: DatabaseSchema, log: &RedoLog) -> CoreResult<Self> {
        let manager = Self::new(schema);
        {
            let inner = &mut *manager.inner.lock();
            for record in log.records() {
                let before = inner.db.clone();
                let (next, outcome) = run_transaction_cataloged(
                    &before,
                    inner.catalog(),
                    &record.program,
                    manager.config,
                    None,
                    &manager.constraints,
                );
                match outcome {
                    Outcome::Committed(_) => {
                        let time = next.time();
                        inner.db = next;
                        inner.log.append(LogRecord {
                            time,
                            program: record.program.clone(),
                        })?;
                    }
                    Outcome::Aborted(reason) => {
                        return Err(CoreError::TypeError(format!(
                            "redo log replay aborted at t={}: {reason}",
                            record.time
                        )))
                    }
                }
            }
        }
        Ok(manager)
    }

    /// Executes one transaction; on commit the effects are installed and
    /// logged, on abort the database is untouched (other than logical
    /// time). Returns the outcome together with the observed transition.
    pub fn execute(&self, program: &Program) -> CoreResult<(Outcome, Transition)> {
        let inner = &mut *self.inner.lock();
        let before = inner.db.clone();
        let (next, outcome) = run_transaction_cataloged(
            &before,
            inner.catalog(),
            program,
            self.config,
            None,
            &self.constraints,
        );
        if outcome.is_committed() {
            inner.log.append(LogRecord {
                time: next.time(),
                program: program.clone(),
            })?;
        } else {
            // contents unchanged by the abort, only logical time moved:
            // re-stamp so the statistics stay a cache hit for `next`
            Arc::make_mut(&mut inner.stats).set_as_of(next.time());
        }
        inner.db = next.clone();
        let transition = Transition::new(before, next)?;
        Ok((outcome, transition))
    }

    /// Executes with an injected fault (testing hook, never logged).
    pub fn execute_with_fault(
        &self,
        program: &Program,
        fault_before: usize,
    ) -> CoreResult<(Outcome, Transition)> {
        let inner = &mut *self.inner.lock();
        let before = inner.db.clone();
        let (next, outcome) = run_transaction_cataloged(
            &before,
            inner.catalog(),
            program,
            self.config,
            Some(fault_before),
            &self.constraints,
        );
        if !outcome.is_committed() {
            Arc::make_mut(&mut inner.stats).set_as_of(next.time());
        }
        inner.db = next.clone();
        let transition = Transition::new(before, next)?;
        Ok((outcome, transition))
    }

    /// Creates a materialized view over the current state: the definition
    /// is validated (`E0301`/`E0303` and ordinary schema errors reject
    /// it), evaluated once, and incrementally maintained by every
    /// subsequent commit.
    pub fn create_view(&self, name: &str, expr: RelExpr) -> Result<SchemaRef, CreateViewError> {
        let inner = &mut *self.inner.lock();
        inner.views.create(name, expr, &inner.db, self.config)
    }

    /// Creates a secondary index on the 1-based `keys` of `relation` over
    /// the current state. The index is a catalog object from then on:
    /// every commit folds its signed deltas in (O(|delta|)), the cost
    /// model weighs it as an access path, and the physical engine executes
    /// point lookups and hinted equi-joins through it.
    pub fn create_index(&self, relation: &str, keys: &[usize]) -> CoreResult<()> {
        let inner = &mut *self.inner.lock();
        let (db, indexes) = (&inner.db, &mut inner.indexes);
        Arc::make_mut(indexes).create(db, relation, keys)
    }

    /// The registered index definitions as `(relation, sorted keys)`,
    /// sorted.
    pub fn index_definitions(&self) -> Vec<(String, Vec<usize>)> {
        self.inner.lock().indexes.definitions()
    }

    /// Declares the 1-based `attrs` as a candidate key of `relation` over
    /// the current state. Rejections carry a diagnostic: existing data
    /// violating the key (`E0401`), a key on a view (`E0402` — views are
    /// derived, their multiplicities follow from the definition), or a
    /// duplicate declaration (`E0403`). From then on every commit checks
    /// the key against its net deltas in O(|delta|) and aborts violators,
    /// and the optimizer grounds property inference in it.
    pub fn declare_key(&self, relation: &str, attrs: &[usize]) -> Result<(), DeclareKeyError> {
        let inner = &mut *self.inner.lock();
        if inner.views.get(relation).is_some() {
            return Err(DeclareKeyError::Rejected(
                mera_analyze::Diagnostic::new(
                    mera_analyze::Code::KeyOnView,
                    mera_analyze::Span::root("key"),
                    format!("cannot declare a key on materialized view `{relation}`"),
                )
                .with_note(
                    "a view's multiplicities are determined by its definition; \
                     declare the key on the base relations instead",
                ),
            ));
        }
        if inner.keys.is_declared(relation, attrs) {
            return Err(DeclareKeyError::Rejected(mera_analyze::Diagnostic::new(
                mera_analyze::Code::DuplicateKeyDeclaration,
                mera_analyze::Span::root("key"),
                format!(
                    "key {relation}({}) is already declared",
                    attrs
                        .iter()
                        .map(|a| format!("%{a}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            )));
        }
        let (db, keys) = (&inner.db, &mut inner.keys);
        match Arc::make_mut(keys).declare(db, relation, attrs)? {
            Ok(()) => Ok(()),
            Err(v) => Err(DeclareKeyError::Rejected(key_violation_diagnostic(&v))),
        }
    }

    /// The declared key constraints as `(relation, sorted attrs)`, sorted.
    pub fn key_definitions(&self) -> Vec<(String, Vec<usize>)> {
        self.inner.lock().keys.definitions()
    }

    /// A shared snapshot of the maintained key constraints.
    pub fn keys(&self) -> Arc<KeySet> {
        Arc::clone(&self.inner.lock().keys)
    }

    /// Adds a fresh empty relation to the current state (the SQL `CREATE
    /// TABLE` path). Fails if the name is taken.
    pub fn add_relation(&self, schema: RelationSchema) -> CoreResult<()> {
        let inner = &mut *self.inner.lock();
        inner.db.add_relation(schema)?;
        // re-anchor the derived catalog objects so they describe the new
        // state (an empty relation: cheap)
        if let Ok(mut fresh) = CatalogStats::from_database(&inner.db) {
            fresh.set_as_of(inner.db.time());
            inner.stats = Arc::new(fresh);
        }
        Ok(())
    }

    /// A shared snapshot of the maintained secondary indexes.
    pub fn indexes(&self) -> Arc<IndexSet> {
        Arc::clone(&self.inner.lock().indexes)
    }

    /// A shared snapshot of the maintained table statistics (stamped with
    /// the logical time they describe).
    pub fn stats(&self) -> Arc<CatalogStats> {
        Arc::clone(&self.inner.lock().stats)
    }

    /// Renders the plan a read-only expression gets against the current
    /// committed state — join order, access paths, estimated-vs-actual
    /// cardinalities (see [`crate::explain_expr`]). Evaluates the
    /// expression (on the instrumented physical engine) but commits
    /// nothing.
    pub fn explain(&self, expr: &RelExpr) -> CoreResult<String> {
        let inner = self.inner.lock();
        let state = crate::exec::WorkingState::with_catalog(
            inner.db.clone(),
            &inner.views,
            Some(Arc::clone(&inner.stats)),
            Some(Arc::clone(&inner.indexes)),
            Some(Arc::clone(&inner.keys)),
        );
        crate::explain::explain_expr(&state, expr, self.config)
    }

    /// Runs the static-analysis passes over a program against the current
    /// state (views included) without executing it.
    pub fn check_program(&self, program: &Program) -> Vec<mera_analyze::Diagnostic> {
        let inner = self.inner.lock();
        crate::exec::analyze_program_with_views(&inner.db, &inner.views, program)
    }

    /// A snapshot of one materialized view's current contents.
    pub fn view(&self, name: &str) -> CoreResult<Relation> {
        let inner = self.inner.lock();
        inner
            .views
            .get(name)
            .map(|v| v.data().as_ref().clone())
            .ok_or_else(|| CoreError::UnknownRelation(name.to_owned()))
    }

    /// Snapshots of every materialized view, by name.
    pub fn view_snapshots(&self) -> std::collections::BTreeMap<String, std::sync::Arc<Relation>> {
        self.inner.lock().views.snapshots()
    }

    /// `(refreshes, full-recompute fallbacks)` per view — observability
    /// for the incremental path (a healthy workload shows zero fallbacks).
    pub fn view_stats(&self) -> Vec<(String, u64, u64)> {
        self.inner
            .lock()
            .views
            .iter()
            .map(|v| {
                let (r, f) = v.refresh_stats();
                (v.name().to_owned(), r, f)
            })
            .collect()
    }

    /// A snapshot of the current database state.
    pub fn snapshot(&self) -> Database {
        self.inner.lock().db.clone()
    }

    /// A copy of the redo log.
    pub fn log(&self) -> RedoLog {
        self.inner.lock().log.clone()
    }

    /// Current logical time.
    pub fn time(&self) -> LogicalTime {
        self.inner.lock().db.time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::Statement;
    use mera_core::tuple;
    use mera_expr::{RelExpr, ScalarExpr};
    use std::sync::Arc;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "acct",
                Schema::named(&[("owner", DataType::Str), ("amount", DataType::Int)]),
            )
            .expect("fresh")
    }

    fn deposit(owner: &str, amount: i64) -> Statement {
        let row = relation_of(
            Schema::named(&[("owner", DataType::Str), ("amount", DataType::Int)]),
            vec![tuple![owner, amount]],
        )
        .expect("typed");
        Statement::insert("acct", RelExpr::values(row))
    }

    #[test]
    fn commit_installs_next_state_and_advances_time() {
        let mgr = TransactionManager::new(schema());
        assert_eq!(mgr.time(), 0);
        let (outcome, transition) = mgr
            .execute(&Program::single(deposit("a", 100)))
            .expect("executes");
        assert!(outcome.is_committed());
        assert!(transition.is_single_step());
        assert!(!transition.is_identity());
        assert_eq!(mgr.time(), 1);
        assert_eq!(mgr.snapshot().relation("acct").expect("present").len(), 1);
    }

    #[test]
    fn statement_error_aborts_whole_transaction() {
        // analysis off: the failure surfaces at runtime, mid-program
        let mgr = TransactionManager::with_config(
            schema(),
            ExecConfig {
                analyze: false,
                ..ExecConfig::default()
            },
        );
        mgr.execute(&Program::single(deposit("a", 100)))
            .expect("setup");
        // deposit then a failing statement (AVG over empty bag)
        let failing = Program::new().then(deposit("b", 50)).then(Statement::query(
            RelExpr::scan("acct")
                .select(ScalarExpr::bool(false))
                .group_by(&[], mera_expr::Aggregate::Avg, 2),
        ));
        let (outcome, transition) = mgr.execute(&failing).expect("runs");
        assert!(matches!(
            outcome,
            Outcome::Aborted(AbortReason::Error(CoreError::AggregateOnEmpty("AVG")))
        ));
        // atomicity: the deposit of 50 is rolled back
        assert!(transition.is_identity());
        let snap = mgr.snapshot();
        assert_eq!(snap.relation("acct").expect("present").len(), 1);
        // but time advanced: the attempt is a transition
        assert_eq!(snap.time(), 2);
    }

    #[test]
    fn statically_rejected_program_aborts_before_execution() {
        // the same doomed program, with analysis on (the default): the
        // E0102 partiality error is caught before the deposit ever runs
        let mgr = TransactionManager::new(schema());
        let failing = Program::new().then(deposit("b", 50)).then(Statement::query(
            RelExpr::scan("acct")
                .select(ScalarExpr::bool(false))
                .group_by(&[], mera_expr::Aggregate::Avg, 2),
        ));
        let (outcome, transition) = mgr.execute(&failing).expect("runs");
        let Outcome::Aborted(reason @ AbortReason::StaticallyRejected(diags)) = &outcome else {
            panic!("expected a static rejection, got {outcome:?}");
        };
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, mera_analyze::Code::PartialAggregateOnEmpty);
        assert_eq!(diags[0].span.stmt, Some(1));
        // the rendered reason names the offending aggregate
        assert!(reason.to_string().contains("AVG"), "{reason}");
        assert!(transition.is_identity());
    }

    #[test]
    fn injected_fault_mid_program_restores_pre_state() {
        let mgr = TransactionManager::new(schema());
        let program = Program::new()
            .then(deposit("a", 1))
            .then(deposit("b", 2))
            .then(deposit("c", 3));
        let (outcome, transition) = mgr.execute_with_fault(&program, 2).expect("runs");
        assert!(matches!(
            outcome,
            Outcome::Aborted(AbortReason::InjectedFault(2))
        ));
        assert!(transition.is_identity());
        assert!(mgr.snapshot().relation("acct").expect("present").is_empty());
    }

    #[test]
    fn temporaries_never_leak_into_committed_state() {
        let mgr = TransactionManager::new(schema());
        let program = Program::new()
            .then(Statement::assign("scratch", RelExpr::scan("acct")))
            .then(deposit("a", 10))
            .then(Statement::query(RelExpr::scan("scratch")));
        let (outcome, _) = mgr.execute(&program).expect("runs");
        assert!(outcome.is_committed());
        // the post-transaction state has no relation called "scratch"
        let snap = mgr.snapshot();
        assert!(snap.relation("scratch").is_err());
        // and a later transaction cannot see it either: the analyzer
        // rejects the scan of `scratch` as an unknown relation (E0002)
        let later = Program::single(Statement::query(RelExpr::scan("scratch")));
        let (outcome, _) = mgr.execute(&later).expect("runs");
        match outcome {
            Outcome::Aborted(AbortReason::StaticallyRejected(diags)) => {
                assert_eq!(diags[0].code, mera_analyze::Code::UnknownRelation);
            }
            other => panic!("expected static rejection, got {other:?}"),
        }
        // with analysis off, the runtime agrees
        let unchecked = TransactionManager::with_config(
            schema(),
            ExecConfig {
                analyze: false,
                ..ExecConfig::default()
            },
        );
        let (outcome, _) = unchecked.execute(&later).expect("runs");
        assert!(matches!(
            outcome,
            Outcome::Aborted(AbortReason::Error(CoreError::UnknownRelation(_)))
        ));
    }

    #[test]
    fn committed_outputs_are_delivered() {
        let mgr = TransactionManager::new(schema());
        let program = Program::new()
            .then(deposit("a", 100))
            .then(deposit("a", 100))
            .then(Statement::query(RelExpr::scan("acct").group_by(
                &[1],
                mera_expr::Aggregate::Sum,
                2,
            )));
        let (outcome, _) = mgr.execute(&program).expect("runs");
        let outputs = outcome.outputs().expect("committed");
        assert_eq!(outputs.queries.len(), 1);
        assert_eq!(outputs.queries[0].multiplicity(&tuple!["a", 200_i64]), 1);
    }

    #[test]
    fn recovery_replays_committed_transactions_only() {
        let mgr = TransactionManager::new(schema());
        mgr.execute(&Program::single(deposit("a", 100)))
            .expect("t1");
        // an aborted transaction must not be logged
        let bad = Program::new()
            .then(deposit("b", 1))
            .then(Statement::query(RelExpr::scan("nosuch")));
        let (outcome, _) = mgr.execute(&bad).expect("t2");
        assert!(!outcome.is_committed());
        mgr.execute(&Program::single(deposit("c", 7))).expect("t3");

        let log = mgr.log();
        assert_eq!(log.records().len(), 2);
        let recovered = TransactionManager::recover(schema(), &log).expect("recovers");
        let original = mgr.snapshot();
        let replayed = recovered.snapshot();
        assert_eq!(
            original.relation("acct").expect("present"),
            replayed.relation("acct").expect("present")
        );
    }

    #[test]
    fn commits_maintain_stats_incrementally() {
        let mgr = TransactionManager::new(schema());
        let initial_scans = mgr.stats().full_scans();
        for i in 0..5 {
            mgr.execute(&Program::single(deposit("a", i)))
                .expect("commits");
        }
        let stats = mgr.stats();
        let acct = stats.get("acct").expect("analyzed");
        assert_eq!(acct.rows, 5);
        assert_eq!(acct.column_distinct(2), 5, "amounts all distinct");
        assert_eq!(stats.as_of(), Some(mgr.time()), "stamped current");
        assert_eq!(
            stats.full_scans(),
            initial_scans,
            "five commits folded deltas without a single rescan"
        );
        assert_eq!(stats.touched_rows(), 5, "O(delta) work witness");
    }

    #[test]
    fn aborts_leave_stats_and_indexes_untouched() {
        let mgr = TransactionManager::new(schema());
        mgr.execute(&Program::single(deposit("a", 100)))
            .expect("setup");
        mgr.create_index("acct", &[1]).expect("indexes");
        let bad = Program::new()
            .then(deposit("b", 1))
            .then(Statement::query(RelExpr::scan("nosuch")));
        let (outcome, _) = mgr.execute(&bad).expect("runs");
        assert!(!outcome.is_committed());
        let stats = mgr.stats();
        assert_eq!(stats.get("acct").expect("present").rows, 1);
        assert_eq!(stats.as_of(), Some(mgr.time()), "re-stamped after abort");
        let indexes = mgr.indexes();
        let idx = indexes.find("acct", &[1]).expect("registered");
        assert_eq!(idx.len(), 1, "aborted insert never reached the index");
    }

    #[test]
    fn commits_maintain_indexes_as_catalog_objects() {
        let mgr = TransactionManager::new(schema());
        mgr.execute(&Program::single(deposit("a", 100)))
            .expect("t1");
        mgr.create_index("acct", &[1]).expect("indexes");
        assert_eq!(mgr.index_definitions(), vec![("acct".to_owned(), vec![1])]);
        // commits after creation keep the index consistent
        mgr.execute(&Program::single(deposit("a", 50))).expect("t2");
        mgr.execute(&Program::single(deposit("b", 7))).expect("t3");
        let indexes = mgr.indexes();
        let idx = indexes.find("acct", &[1]).expect("registered");
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.lookup(&tuple!["a"]).expect("lookup").len(), 2);
        // and point queries through the manager agree with the base state
        let q = Program::single(Statement::query(
            RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::str("a"))),
        ));
        let (outcome, _) = mgr.execute(&q).expect("queries");
        assert_eq!(outcome.outputs().expect("committed").queries[0].len(), 2);
    }

    #[test]
    fn same_transaction_write_then_read_sees_own_writes() {
        // the index describes D_t; once the transaction writes the indexed
        // relation, reads must come from the live state, not the index
        let mgr = TransactionManager::new(schema());
        mgr.execute(&Program::single(deposit("a", 100)))
            .expect("setup");
        mgr.create_index("acct", &[1]).expect("indexes");
        let program = Program::new().then(deposit("a", 50)).then(Statement::query(
            RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::str("a"))),
        ));
        let (outcome, _) = mgr.execute(&program).expect("runs");
        let out = &outcome.outputs().expect("committed").queries[0];
        assert_eq!(out.len(), 2, "query must see the uncommitted deposit");
    }

    #[test]
    fn recovery_replays_statistics() {
        let mgr = TransactionManager::new(schema());
        for i in 0..3 {
            mgr.execute(&Program::single(deposit("x", i))).expect("t");
        }
        let recovered = TransactionManager::recover(schema(), &mgr.log()).expect("recovers");
        let (orig, repl) = (mgr.stats(), recovered.stats());
        let (o, r) = (
            orig.get("acct").expect("present"),
            repl.get("acct").expect("present"),
        );
        assert_eq!(o.rows, r.rows);
        assert_eq!(o.distinct_rows, r.distinct_rows);
        assert_eq!(repl.as_of(), Some(recovered.time()));
    }

    #[test]
    fn serial_execution_from_many_threads() {
        let mgr = Arc::new(TransactionManager::new(schema()));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        mgr.execute(&Program::single(deposit("x", i)))
                            .expect("commits");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        let snap = mgr.snapshot();
        assert_eq!(snap.relation("acct").expect("present").len(), 80);
        assert_eq!(snap.time(), 80);
    }
}
