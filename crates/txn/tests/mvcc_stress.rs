//! N-writer / M-reader stress over the MVCC manager, asserting snapshot
//! isolation: every read — concurrent with any number of in-flight
//! transfers — sees a state where money is conserved, and committed
//! history is a single serial order.
//!
//! The workload is the classic bank invariant: `ACCOUNTS` accounts each
//! seeded with `SEED` units; writers move one unit between two random
//! accounts per transaction (a two-statement program, so a torn read
//! would see the debit without the credit); readers repeatedly pin a
//! snapshot and check `SUM(balance)`. First-committer-wins conflicts on
//! the key-point granularity are expected and retried.
//!
//! This test is the designated ThreadSanitizer target for the MVCC
//! layer (see the `tsan` job in CI): it hammers pin/prepare/commit from
//! many threads with no external synchronization of its own.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use mera_core::prelude::*;
use mera_core::relation::relation_of;
use mera_core::tuple;
use mera_expr::{Aggregate, RelExpr, ScalarExpr};
use mera_txn::{AbortReason, MvccManager, Outcome, Program, Statement};

const ACCOUNTS: i64 = 12;
const SEED: i64 = 100;
const WRITERS: usize = 4;
const READERS: usize = 4;
const TRANSFERS_PER_WRITER: usize = 60;

fn acct_schema() -> Schema {
    Schema::named(&[("id", DataType::Int), ("bal", DataType::Int)])
}

/// One transfer: debit `from`, credit `to` — two statements, one
/// atomic program.
fn transfer(from: i64, to: i64) -> Program {
    let touch = |id: i64| RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::int(id)));
    Program::new()
        .then(Statement::update(
            "acct",
            touch(from),
            vec![
                ScalarExpr::attr(1),
                ScalarExpr::attr(2).sub(ScalarExpr::int(1)),
            ],
        ))
        .then(Statement::update(
            "acct",
            touch(to),
            vec![
                ScalarExpr::attr(1),
                ScalarExpr::attr(2).add(ScalarExpr::int(1)),
            ],
        ))
}

fn total_balance() -> Program {
    Program::single(Statement::query(RelExpr::scan("acct").group_by(
        &[],
        Aggregate::Sum,
        2,
    )))
}

/// Splitmix-style deterministic per-thread randomness (no rand dep).
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn concurrent_transfers_conserve_money_under_snapshot_reads() {
    let schema = DatabaseSchema::new()
        .with("acct", acct_schema())
        .expect("fresh");
    let mgr = Arc::new(MvccManager::new(schema));
    mgr.declare_key("acct", &[1]).expect("key declares");
    let rows: Vec<Tuple> = (0..ACCOUNTS).map(|id| tuple![id, SEED]).collect();
    let seed = relation_of(acct_schema(), rows).expect("typed");
    let (outcome, _) = mgr.execute(&Program::single(Statement::insert(
        "acct",
        RelExpr::values(seed),
    )));
    assert!(outcome.is_committed());

    let done = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let conflicts = Arc::new(AtomicU64::new(0));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let mgr = Arc::clone(&mgr);
            let committed = Arc::clone(&committed);
            let conflicts = Arc::clone(&conflicts);
            thread::spawn(move || {
                let mut rng = 0x9e3779b97f4a7c15_u64.wrapping_add(w as u64);
                for _ in 0..TRANSFERS_PER_WRITER {
                    let from = (next_rand(&mut rng) % ACCOUNTS as u64) as i64;
                    let to = (next_rand(&mut rng) % ACCOUNTS as u64) as i64;
                    if from == to {
                        continue;
                    }
                    let program = transfer(from, to);
                    // retry conflicts; anything else is a real failure
                    loop {
                        match mgr.execute(&program) {
                            (Outcome::Committed(_), _) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            (Outcome::Aborted(AbortReason::Conflict { .. }), _) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            (Outcome::Aborted(other), _) => {
                                panic!("unexpected abort: {other}")
                            }
                        }
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let mgr = Arc::clone(&mgr);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let query = total_balance();
                let mut last_time = 0;
                let mut reads = 0u64;
                while !done.load(Ordering::Relaxed) || reads == 0 {
                    let version = mgr.pin();
                    // pinned snapshots never move backwards on a session
                    assert!(
                        version.time() >= last_time,
                        "snapshot regressed: {} < {last_time}",
                        version.time()
                    );
                    last_time = version.time();
                    let outputs = mgr.read(&version, &query).expect("read-only query runs");
                    let sum = &outputs.queries[0];
                    assert_eq!(
                        sum.multiplicity(&tuple![ACCOUNTS * SEED]),
                        1,
                        "money not conserved in snapshot at t={}: {sum}",
                        version.time()
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer joins");
    }
    done.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|r| r.join().expect("joins")).sum();
    assert!(total_reads >= READERS as u64);

    // the final state conserves money and its clock counts exactly the
    // committed transactions (seed + transfers; reads never tick)
    let final_version = mgr.pin();
    let outputs = mgr
        .read(&final_version, &total_balance())
        .expect("final read");
    assert_eq!(outputs.queries[0].multiplicity(&tuple![ACCOUNTS * SEED]), 1);
    assert_eq!(
        final_version.time(),
        1 + committed.load(Ordering::Relaxed),
        "clock must tick once per committed transaction"
    );
}

#[test]
fn pinned_snapshot_is_immutable_while_writers_race() {
    let schema = DatabaseSchema::new()
        .with("acct", acct_schema())
        .expect("fresh");
    let mgr = Arc::new(MvccManager::new(schema));
    let seed = relation_of(acct_schema(), vec![tuple![1_i64, SEED]]).expect("typed");
    let (outcome, pinned) = mgr.execute(&Program::single(Statement::insert(
        "acct",
        RelExpr::values(seed),
    )));
    assert!(outcome.is_committed());

    // hammer the manager while holding the old pin
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                for n in 0..20 {
                    let row = relation_of(acct_schema(), vec![tuple![100 + n as i64, w as i64]])
                        .expect("typed");
                    loop {
                        let (outcome, _) = mgr.execute(&Program::single(Statement::insert(
                            "acct",
                            RelExpr::values(row.clone()),
                        )));
                        match outcome {
                            Outcome::Committed(_) => break,
                            Outcome::Aborted(AbortReason::Conflict { .. }) => continue,
                            Outcome::Aborted(other) => panic!("unexpected abort: {other}"),
                        }
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("joins");
    }

    // the pre-race pin still reads its original state
    let outputs = mgr
        .read(
            &pinned,
            &Program::single(Statement::query(RelExpr::scan("acct"))),
        )
        .expect("stale read runs");
    assert_eq!(outputs.queries[0].len(), 1);
    // and the latest version has everything
    let latest = mgr.pin();
    let outputs = mgr
        .read(
            &latest,
            &Program::single(Statement::query(RelExpr::scan("acct"))),
        )
        .expect("fresh read runs");
    assert_eq!(outputs.queries[0].len(), 1 + (WRITERS as u64) * 20);
}
