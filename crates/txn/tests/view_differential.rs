//! Differential property test for incremental view maintenance.
//!
//! Random view definitions — closed, well-typed trees over σ, π, δ, ⊎,
//! −, ∩, equi-join and keyed γ — are materialized over two base
//! relations, then hit with random insert/delete workloads committed one
//! transaction at a time. After **every** commit, the incrementally
//! refreshed view must equal a from-scratch recomputation of the defining
//! expression by the reference evaluator (the executable form of the
//! paper's definitions).
//!
//! The workload replays under every execution engine and under 1- and
//! 3-way partitioning, so the signed-delta path is exercised against all
//! the evaluators the commit pipeline can delegate to.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use mera_txn::{
    EngineKind, ExecConfig, ExecOptions, Outcome, Program, Statement, TransactionManager,
};
use proptest::prelude::*;

fn base_schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("a", DataType::Int), ("b", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("c", DataType::Int), ("d", DataType::Int)]),
        )
        .expect("fresh")
}

/// Random predicates over a two-int-column schema.
fn pred() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        (0i64..4).prop_map(|c| ScalarExpr::attr(1).eq(ScalarExpr::int(c))),
        (0i64..10).prop_map(|c| ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::int(c))),
        (0i64..10).prop_map(|c| ScalarExpr::attr(2).cmp(CmpOp::Ge, ScalarExpr::int(c))),
        (0i64..4, 0i64..10).prop_map(|(a, b)| {
            ScalarExpr::attr(1)
                .eq(ScalarExpr::int(a))
                .and(ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::int(b)))
        }),
        Just(ScalarExpr::bool(true)),
    ]
}

fn agg() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Cnt),
        Just(Aggregate::Sum),
        Just(Aggregate::Min),
        Just(Aggregate::Max),
    ]
}

/// Random view definitions: well-typed trees closed over the two-column
/// (int, int) schema, so every operator composes with every other. Keyed
/// γ only (whole-relation aggregates take the recompute fallback, which
/// the unit tests cover); every generated definition is total, so view
/// creation never rejects.
fn view_expr(depth: u32) -> BoxedStrategy<RelExpr> {
    let leaf = prop_oneof![Just(RelExpr::scan("r")), Just(RelExpr::scan("s"))].boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = view_expr(depth - 1);
    prop_oneof![
        (inner.clone(), pred()).prop_map(|(e, p)| e.select(p)),
        inner.clone().prop_map(|e| e.project(&[2, 1])),
        inner.clone().prop_map(|e| e.distinct()),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| {
            a.join(b, ScalarExpr::attr(1).eq(ScalarExpr::attr(3)))
                .project(&[1, 4])
        }),
        (inner, agg()).prop_map(|(e, f)| e.group_by(&[1], f, 2)),
        leaf,
    ]
    .boxed()
}

/// One workload step against a base relation.
#[derive(Debug, Clone)]
enum WOp {
    /// Insert literal rows (with multiplicities) into `r` or `s`.
    Insert(bool, Vec<(i64, i64, u64)>),
    /// Delete by predicate from `r` or `s`.
    Delete(bool, u8, i64),
}

fn wop() -> impl Strategy<Value = WOp> {
    prop_oneof![
        (
            any::<bool>(),
            proptest::collection::vec(((0i64..4), (0i64..10), (1u64..3)), 1..5)
        )
            .prop_map(|(into_r, rows)| WOp::Insert(into_r, rows)),
        (any::<bool>(), 0u8..3, (0i64..10))
            .prop_map(|(from_r, shape, c)| WOp::Delete(from_r, shape, c)),
    ]
}

fn apply(mgr: &TransactionManager, op: &WOp) {
    let (name, stmt) = match op {
        WOp::Insert(into_r, rows) => {
            let name = if *into_r { "r" } else { "s" };
            let schema = mgr
                .snapshot()
                .relation(name)
                .expect("base relation")
                .schema()
                .clone();
            let rel = Relation::from_counted(
                Arc::clone(&schema),
                rows.iter().map(|(a, b, m)| (tuple![*a, *b], *m)),
            )
            .expect("well-typed rows");
            (name, Statement::insert(name, RelExpr::values(rel)))
        }
        WOp::Delete(from_r, shape, c) => {
            let name = if *from_r { "r" } else { "s" };
            let p = match shape {
                0 => ScalarExpr::attr(1).eq(ScalarExpr::int(*c % 4)),
                1 => ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::int(*c)),
                _ => ScalarExpr::attr(2).cmp(CmpOp::Ge, ScalarExpr::int(*c)),
            };
            (name, Statement::delete(name, RelExpr::scan(name).select(p)))
        }
    };
    let (outcome, _) = mgr
        .execute(&Program::single(stmt))
        .expect("base DML executes");
    assert!(
        matches!(outcome, Outcome::Committed(_)),
        "workload DML on {name} must commit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// refresh == recompute, after every commit, under every engine and
    /// partitioning the commit pipeline supports.
    #[test]
    fn incremental_refresh_equals_recompute(
        expr in view_expr(3),
        ops in proptest::collection::vec(wop(), 1..7),
    ) {
        for engine in [EngineKind::Physical, EngineKind::Reference, EngineKind::Morsel] {
            for partitions in [1usize, 3] {
                let config = ExecConfig {
                    engine,
                    options: ExecOptions::with_partitions(partitions),
                    ..Default::default()
                };
                let mgr = TransactionManager::with_config(base_schema(), config);
                mgr.create_view("v", expr.clone())
                    .unwrap_or_else(|e| panic!("generated views are total: {e}\nplan: {expr}"));
                for op in &ops {
                    apply(&mgr, op);
                    let refreshed = mgr.view("v").expect("view exists");
                    let recomputed = mera_eval::eval(&expr, &mgr.snapshot())
                        .expect("total definitions recompute");
                    prop_assert_eq!(
                        &refreshed, &recomputed,
                        "{:?}/p{} diverged after {:?} (workload {:?}) on view: {}",
                        engine, partitions, op, ops, expr
                    );
                }
            }
        }
    }
}
