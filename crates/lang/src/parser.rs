//! Recursive-descent parser for the XRA-style language.
//!
//! ```text
//! script  := item*
//! item    := 'relation' IDENT '(' IDENT ':' TYPE (',' IDENT ':' TYPE)* ')' ';'
//!          | 'view' IDENT '=' rel ';'
//!          | 'key' IDENT '(' attrref (',' attrref)* ')' ';'
//!          | 'begin' program 'end' ';'?
//!          | stmt ';'
//! program := stmt (';' stmt)* ';'?
//! stmt    := 'insert' '(' IDENT ',' rel ')'
//!          | 'delete' '(' IDENT ',' rel ')'
//!          | 'update' '(' IDENT ',' rel ',' '(' scalar (',' scalar)* ')' ')'
//!          | IDENT '=' rel
//!          | '?' rel
//! rel     := relterm (('union'|'minus'|'intersect'|'times') relterm)*
//! relterm := 'select' '[' scalar ']' '(' rel ')'
//!          | 'project' '[' scalar (',' scalar)* ']' '(' rel ')'
//!          | 'join' '[' scalar ']' '(' rel ',' rel ')'
//!          | 'unique' '(' rel ')'
//!          | 'groupby' '[' '(' (attrref (',' attrref)*)? ')' ',' IDENT ',' attrref ']' '(' rel ')'
//!          | 'values' '(' TYPE (',' TYPE)* ')' '{' (row (',' row)*)? '}'
//!          | IDENT
//!          | '(' rel ')'
//! scalar  := or; standard precedence or < and < not < cmp < +- < */mod < unary- < primary
//! ```

use mera_core::types::DataType;

use crate::ast::*;
use crate::error::{LangError, LangResult, Pos};
use crate::token::{lex, Spanned, Token};

/// Parses a whole script.
pub fn parse_script(src: &str) -> LangResult<SScript> {
    let mut p = Parser::new(src)?;
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(SScript { items })
}

/// Parses a single relational expression (handy for tests and the REPL).
pub fn parse_rel(src: &str) -> LangResult<SRel> {
    let mut p = Parser::new(src)?;
    let rel = p.rel()?;
    p.expect_end()?;
    Ok(rel)
}

/// Parses a single program (without transaction brackets).
pub fn parse_program(src: &str) -> LangResult<SProgram> {
    let mut p = Parser::new(src)?;
    let prog = p.program(None)?;
    p.expect_end()?;
    Ok(prog)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> LangResult<Self> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn here(&self) -> Pos {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.pos)
            .unwrap_or(Pos { line: 1, col: 1 })
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> LangResult<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(LangError::parse(
                self.here(),
                format!("expected '{want}', found '{t}'"),
            )),
            None => Err(LangError::parse(
                self.here(),
                format!("expected '{want}', found end of input"),
            )),
        }
    }

    fn expect_end(&self) -> LangResult<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(LangError::parse(
                self.here(),
                format!(
                    "unexpected trailing input starting at '{}'",
                    self.peek().expect("not at end")
                ),
            ))
        }
    }

    fn ident(&mut self) -> LangResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(LangError::parse(
                self.here(),
                format!(
                    "expected identifier, found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }

    /// True when the next token is the given keyword (case-sensitive,
    /// lowercase keywords).
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> LangResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(LangError::parse(
                self.here(),
                format!(
                    "expected '{kw}', found '{}'",
                    self.peek()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            ))
        }
    }

    // ------------------------------------------------------------------
    // script level
    // ------------------------------------------------------------------

    fn item(&mut self) -> LangResult<SItem> {
        if self.at_kw("relation") {
            return self.relation_decl();
        }
        // `view NAME = E;` — the peek2 guard keeps `view = E` (an
        // assignment to a temporary called `view`) parsing as a statement
        if self.at_kw("view") && matches!(self.peek2(), Some(Token::Ident(_))) {
            self.bump();
            let name = self.ident()?;
            self.expect(&Token::Eq)?;
            let expr = self.rel()?;
            self.expect(&Token::Semi)?;
            return Ok(SItem::ViewDecl { name, expr });
        }
        // `key NAME (attr, …);` — same guard: `key = E` stays an
        // assignment to a temporary called `key`
        if self.at_kw("key") && matches!(self.peek2(), Some(Token::Ident(_))) {
            self.bump();
            let relation = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut attrs = vec![self.attr_ref()?];
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                attrs.push(self.attr_ref()?);
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::Semi)?;
            return Ok(SItem::KeyDecl { relation, attrs });
        }
        if self.eat_kw("begin") {
            let prog = self.program(Some("end"))?;
            self.expect_kw("end")?;
            let _ = self.peek() == Some(&Token::Semi) && self.bump().is_some();
            return Ok(SItem::Transaction(prog));
        }
        let stmt = self.stmt()?;
        self.expect(&Token::Semi)?;
        Ok(SItem::Statement(stmt))
    }

    fn relation_decl(&mut self) -> LangResult<SItem> {
        self.expect_kw("relation")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let attr = self.ident()?;
            self.expect(&Token::Colon)?;
            let dtype = self.dtype()?;
            attrs.push((attr, dtype));
            if self.peek() == Some(&Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Semi)?;
        Ok(SItem::RelationDecl { name, attrs })
    }

    fn dtype(&mut self) -> LangResult<DataType> {
        let pos = self.here();
        let name = self.ident()?;
        match name.as_str() {
            "bool" => Ok(DataType::Bool),
            "int" => Ok(DataType::Int),
            "real" => Ok(DataType::Real),
            "str" | "string" => Ok(DataType::Str),
            "date" => Ok(DataType::Date),
            "time" => Ok(DataType::Time),
            "money" => Ok(DataType::Money),
            other => Err(LangError::parse(pos, format!("unknown type '{other}'"))),
        }
    }

    fn program(&mut self, terminator: Option<&str>) -> LangResult<SProgram> {
        let mut statements = vec![self.stmt()?];
        while self.peek() == Some(&Token::Semi) {
            self.bump();
            let done = match terminator {
                Some(kw) => self.at_kw(kw) || self.at_end(),
                None => self.at_end(),
            };
            if done {
                break;
            }
            statements.push(self.stmt()?);
        }
        Ok(SProgram { statements })
    }

    fn stmt(&mut self) -> LangResult<SStmt> {
        if self.peek() == Some(&Token::Question) {
            self.bump();
            return Ok(SStmt::Query { expr: self.rel()? });
        }
        if self.at_kw("insert") || self.at_kw("delete") {
            let is_insert = self.at_kw("insert");
            self.bump();
            self.expect(&Token::LParen)?;
            let relation = self.ident()?;
            self.expect(&Token::Comma)?;
            let expr = self.rel()?;
            self.expect(&Token::RParen)?;
            return Ok(if is_insert {
                SStmt::Insert { relation, expr }
            } else {
                SStmt::Delete { relation, expr }
            });
        }
        if self.eat_kw("update") {
            self.expect(&Token::LParen)?;
            let relation = self.ident()?;
            self.expect(&Token::Comma)?;
            let expr = self.rel()?;
            self.expect(&Token::Comma)?;
            self.expect(&Token::LParen)?;
            let mut exprs = vec![self.scalar()?];
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                exprs.push(self.scalar()?);
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::RParen)?;
            return Ok(SStmt::Update {
                relation,
                expr,
                exprs,
            });
        }
        // assignment: IDENT '=' rel
        if matches!(self.peek(), Some(Token::Ident(_))) && self.peek2() == Some(&Token::Eq) {
            let name = self.ident()?;
            self.expect(&Token::Eq)?;
            return Ok(SStmt::Assign {
                name,
                expr: self.rel()?,
            });
        }
        Err(LangError::parse(
            self.here(),
            format!(
                "expected a statement, found '{}'",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ),
        ))
    }

    // ------------------------------------------------------------------
    // relational expressions
    // ------------------------------------------------------------------

    fn rel(&mut self) -> LangResult<SRel> {
        let mut left = self.rel_term()?;
        loop {
            let op = if self.at_kw("union") {
                SRelOp::Union
            } else if self.at_kw("minus") {
                SRelOp::Minus
            } else if self.at_kw("intersect") {
                SRelOp::Intersect
            } else if self.at_kw("times") {
                SRelOp::Times
            } else {
                break;
            };
            self.bump();
            let right = self.rel_term()?;
            left = match op {
                SRelOp::Union => SRel::Union(Box::new(left), Box::new(right)),
                SRelOp::Minus => SRel::Minus(Box::new(left), Box::new(right)),
                SRelOp::Intersect => SRel::Intersect(Box::new(left), Box::new(right)),
                SRelOp::Times => SRel::Times(Box::new(left), Box::new(right)),
            };
        }
        Ok(left)
    }

    fn rel_term(&mut self) -> LangResult<SRel> {
        if self.eat_kw("select") {
            self.expect(&Token::LBracket)?;
            let predicate = self.scalar()?;
            self.expect(&Token::RBracket)?;
            self.expect(&Token::LParen)?;
            let input = self.rel()?;
            self.expect(&Token::RParen)?;
            return Ok(SRel::Select {
                input: Box::new(input),
                predicate,
            });
        }
        if self.eat_kw("project") {
            self.expect(&Token::LBracket)?;
            let mut exprs = vec![self.scalar()?];
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                exprs.push(self.scalar()?);
            }
            self.expect(&Token::RBracket)?;
            self.expect(&Token::LParen)?;
            let input = self.rel()?;
            self.expect(&Token::RParen)?;
            return Ok(SRel::Project {
                input: Box::new(input),
                exprs,
            });
        }
        if self.eat_kw("join") {
            self.expect(&Token::LBracket)?;
            let predicate = self.scalar()?;
            self.expect(&Token::RBracket)?;
            self.expect(&Token::LParen)?;
            let left = self.rel()?;
            self.expect(&Token::Comma)?;
            let right = self.rel()?;
            self.expect(&Token::RParen)?;
            return Ok(SRel::Join {
                left: Box::new(left),
                right: Box::new(right),
                predicate,
            });
        }
        if self.eat_kw("unique") {
            self.expect(&Token::LParen)?;
            let input = self.rel()?;
            self.expect(&Token::RParen)?;
            return Ok(SRel::Unique(Box::new(input)));
        }
        if self.eat_kw("closure") {
            self.expect(&Token::LParen)?;
            let input = self.rel()?;
            self.expect(&Token::RParen)?;
            return Ok(SRel::Closure(Box::new(input)));
        }
        if self.eat_kw("groupby") {
            self.expect(&Token::LBracket)?;
            self.expect(&Token::LParen)?;
            let mut keys = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                keys.push(self.attr_ref()?);
                while self.peek() == Some(&Token::Comma) {
                    self.bump();
                    keys.push(self.attr_ref()?);
                }
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::Comma)?;
            let agg = self.ident()?;
            self.expect(&Token::Comma)?;
            let attr = self.attr_ref()?;
            self.expect(&Token::RBracket)?;
            self.expect(&Token::LParen)?;
            let input = self.rel()?;
            self.expect(&Token::RParen)?;
            return Ok(SRel::GroupBy {
                input: Box::new(input),
                keys,
                agg,
                attr: Box::new(attr),
            });
        }
        if self.eat_kw("values") {
            self.expect(&Token::LParen)?;
            let mut types = vec![self.dtype()?];
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                types.push(self.dtype()?);
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::LBrace)?;
            let mut rows = Vec::new();
            if self.peek() != Some(&Token::RBrace) {
                rows.push(self.row()?);
                while self.peek() == Some(&Token::Comma) {
                    self.bump();
                    rows.push(self.row()?);
                }
            }
            self.expect(&Token::RBrace)?;
            return Ok(SRel::Values { types, rows });
        }
        match self.peek() {
            Some(Token::LParen) => {
                self.bump();
                let inner = self.rel()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(_)) => Ok(SRel::Name(self.ident()?)),
            other => Err(LangError::parse(
                self.here(),
                format!(
                    "expected a relational expression, found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }

    fn row(&mut self) -> LangResult<Vec<SLiteral>> {
        self.expect(&Token::LParen)?;
        let mut vals = vec![self.literal()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            vals.push(self.literal()?);
        }
        self.expect(&Token::RParen)?;
        Ok(vals)
    }

    fn literal(&mut self) -> LangResult<SLiteral> {
        let pos = self.here();
        let negate = if self.peek() == Some(&Token::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Some(Token::Int(v)) => Ok(SLiteral::Int(if negate { -v } else { v })),
            Some(Token::Real(v)) => Ok(SLiteral::Real(if negate { -v } else { v })),
            Some(Token::Str(s)) if !negate => Ok(SLiteral::Str(s)),
            Some(Token::Ident(s)) if s == "true" && !negate => Ok(SLiteral::Bool(true)),
            Some(Token::Ident(s)) if s == "false" && !negate => Ok(SLiteral::Bool(false)),
            other => Err(LangError::parse(
                pos,
                format!(
                    "expected a literal, found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }

    /// An attribute reference: `%i` or a bare name.
    fn attr_ref(&mut self) -> LangResult<SScalar> {
        match self.peek() {
            Some(Token::AttrIndex(i)) => {
                let i = *i;
                self.bump();
                Ok(SScalar::AttrIndex(i))
            }
            Some(Token::Ident(_)) => Ok(SScalar::AttrName(self.ident()?)),
            other => Err(LangError::parse(
                self.here(),
                format!(
                    "expected an attribute reference, found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }

    // ------------------------------------------------------------------
    // scalar expressions
    // ------------------------------------------------------------------

    fn scalar(&mut self) -> LangResult<SScalar> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> LangResult<SScalar> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SScalar::Binary(SBinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> LangResult<SScalar> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = SScalar::Binary(SBinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> LangResult<SScalar> {
        if self.eat_kw("not") {
            Ok(SScalar::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> LangResult<SScalar> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => SBinOp::Eq,
            Some(Token::Ne) => SBinOp::Ne,
            Some(Token::Lt) => SBinOp::Lt,
            Some(Token::Le) => SBinOp::Le,
            Some(Token::Gt) => SBinOp::Gt,
            Some(Token::Ge) => SBinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(SScalar::Binary(op, Box::new(left), Box::new(right)))
    }

    fn add_expr(&mut self) -> LangResult<SScalar> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => SBinOp::Add,
                Some(Token::Minus) => SBinOp::Sub,
                Some(Token::Concat) => SBinOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = SScalar::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> LangResult<SScalar> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => SBinOp::Mul,
                Some(Token::Slash) => SBinOp::Div,
                Some(Token::Ident(s)) if s == "mod" => SBinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = SScalar::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> LangResult<SScalar> {
        if self.peek() == Some(&Token::Minus) {
            self.bump();
            return Ok(SScalar::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> LangResult<SScalar> {
        match self.peek() {
            Some(Token::AttrIndex(i)) => {
                let i = *i;
                self.bump();
                Ok(SScalar::AttrIndex(i))
            }
            Some(Token::Int(v)) => {
                let v = *v;
                self.bump();
                Ok(SScalar::Int(v))
            }
            Some(Token::Real(v)) => {
                let v = *v;
                self.bump();
                Ok(SScalar::Real(v))
            }
            Some(Token::Str(_)) => {
                if let Some(Token::Str(s)) = self.bump() {
                    Ok(SScalar::Str(s))
                } else {
                    unreachable!("peek said Str")
                }
            }
            Some(Token::Ident(s)) if s == "true" => {
                self.bump();
                Ok(SScalar::Bool(true))
            }
            Some(Token::Ident(s)) if s == "false" => {
                self.bump();
                Ok(SScalar::Bool(false))
            }
            Some(Token::Ident(_)) => Ok(SScalar::AttrName(self.ident()?)),
            Some(Token::LParen) => {
                self.bump();
                let inner = self.scalar()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            other => Err(LangError::parse(
                self.here(),
                format!(
                    "expected a scalar expression, found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }
}

enum SRelOp {
    Union,
    Minus,
    Intersect,
    Times,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_1_parses() {
        // names of beers brewed in the Netherlands
        let src = "project[%1](select[country = 'NL'](join[%2 = %4](beer, brewery)))";
        let rel = parse_rel(src).expect("parses");
        let SRel::Project { input, exprs } = rel else {
            panic!("expected project at root");
        };
        assert_eq!(exprs, vec![SScalar::AttrIndex(1)]);
        assert!(matches!(*input, SRel::Select { .. }));
    }

    #[test]
    fn binary_rel_ops_left_assoc() {
        let rel = parse_rel("a union b minus c").expect("parses");
        assert!(matches!(rel, SRel::Minus(l, _) if matches!(*l, SRel::Union(..))));
        let rel = parse_rel("a times (b intersect c)").expect("parses");
        assert!(matches!(rel, SRel::Times(_, r) if matches!(*r, SRel::Intersect(..))));
    }

    #[test]
    fn groupby_parses_with_and_without_keys() {
        let rel = parse_rel("groupby[(country), AVG, alcperc](beer)").expect("parses");
        let SRel::GroupBy {
            keys, agg, attr, ..
        } = rel
        else {
            panic!("expected group-by");
        };
        assert_eq!(keys, vec![SScalar::AttrName("country".into())]);
        assert_eq!(agg, "AVG");
        assert_eq!(*attr, SScalar::AttrName("alcperc".into()));

        let rel = parse_rel("groupby[(), CNT, %1](beer)").expect("parses");
        assert!(matches!(rel, SRel::GroupBy { keys, .. } if keys.is_empty()));
    }

    #[test]
    fn values_literal_parses() {
        let rel = parse_rel("values (int, str) {(1, 'a'), (1, 'a'), (-2, 'b')}").expect("parses");
        let SRel::Values { types, rows } = rel else {
            panic!("expected values");
        };
        assert_eq!(types, vec![DataType::Int, DataType::Str]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2][0], SLiteral::Int(-2));
        // empty literal
        let rel = parse_rel("values (bool) {}").expect("parses");
        assert!(matches!(rel, SRel::Values { rows, .. } if rows.is_empty()));
    }

    #[test]
    fn scalar_precedence() {
        // 1 + 2 * 3 = 7 and %1 > 0  →  ((1 + (2*3)) = 7) and (%1 > 0)
        let rel = parse_rel("select[1 + 2 * 3 = 7 and %1 > 0](r)").expect("parses");
        let SRel::Select { predicate, .. } = rel else {
            panic!("expected select");
        };
        let SScalar::Binary(SBinOp::And, l, _) = predicate else {
            panic!("expected and at top, got {predicate:?}");
        };
        let SScalar::Binary(SBinOp::Eq, sum, _) = *l else {
            panic!("expected = under and");
        };
        assert!(matches!(*sum, SScalar::Binary(SBinOp::Add, _, _)));
    }

    #[test]
    fn statements_parse() {
        let p = parse_program(
            "insert(beer, values (str) {('X')}); \
             delete(beer, select[%1 = 'X'](beer)); \
             update(beer, beer, (%1)); \
             t = project[%1](beer); \
             ?t",
        )
        .expect("parses");
        assert_eq!(p.statements.len(), 5);
        assert!(matches!(p.statements[0], SStmt::Insert { .. }));
        assert!(matches!(p.statements[2], SStmt::Update { ref exprs, .. } if exprs.len() == 1));
        assert!(matches!(p.statements[3], SStmt::Assign { .. }));
        assert!(matches!(p.statements[4], SStmt::Query { .. }));
    }

    #[test]
    fn script_with_ddl_and_transaction() {
        let s = parse_script(
            "relation beer (name: str, brewery: str, alcperc: real);\n\
             begin\n  insert(beer, values (str, str, real) {('G','G',5.0)});\n  ?beer;\nend;\n\
             ?beer;",
        )
        .expect("parses");
        assert_eq!(s.items.len(), 3);
        assert!(matches!(s.items[0], SItem::RelationDecl { ref attrs, .. } if attrs.len() == 3));
        assert!(matches!(s.items[1], SItem::Transaction(ref p) if p.statements.len() == 2));
        assert!(matches!(s.items[2], SItem::Statement(_)));
    }

    #[test]
    fn key_declaration_parses() {
        let s = parse_script("relation r (a: int, b: int);\nkey r (a, %2);").expect("parses");
        assert_eq!(s.items.len(), 2);
        let SItem::KeyDecl {
            ref relation,
            ref attrs,
        } = s.items[1]
        else {
            panic!("expected key declaration, got {:?}", s.items[1]);
        };
        assert_eq!(relation, "r");
        assert_eq!(
            *attrs,
            vec![SScalar::AttrName("a".into()), SScalar::AttrIndex(2)]
        );
        // `key = E;` is still an assignment to a temporary named `key`
        let s = parse_script("key = project[%1](r);").expect("parses");
        assert!(matches!(
            s.items[0],
            SItem::Statement(SStmt::Assign { ref name, .. }) if name == "key"
        ));
        // an empty attribute list is a parse error
        assert!(parse_script("key r ();").is_err());
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_rel("select[%1 = ](beer)").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }), "{err}");
        let err = parse_rel("project[](r)").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        let err = parse_script("relation r (a: b);").unwrap_err();
        assert!(err.to_string().contains("unknown type"));
        let err = parse_rel("a union").unwrap_err();
        assert!(err.to_string().contains("end of input"));
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_rel("beer beer").is_err());
        assert!(parse_program("?beer extra").is_err());
    }

    #[test]
    fn not_and_negation() {
        let rel = parse_rel("select[not %1 = 1 and %2 = -3](r)").expect("parses");
        let SRel::Select { predicate, .. } = rel else {
            panic!();
        };
        // not binds tighter than and: (not (%1=1)) and (%2=-3)
        let SScalar::Binary(SBinOp::And, l, r) = predicate else {
            panic!("expected and");
        };
        assert!(matches!(*l, SScalar::Not(_)));
        let SScalar::Binary(SBinOp::Eq, _, neg) = *r else {
            panic!("expected =");
        };
        assert!(matches!(*neg, SScalar::Neg(_)));
    }
}
