//! Pretty-printer: typed algebra back to parseable XRA source.
//!
//! `parse(print(e))` lowers back to `e` for every expressible tree — the
//! round-trip property checked in `tests/roundtrip.rs`. Attribute
//! references are always printed in the paper's prefixed-index form, which
//! is resolution-free.

use mera_expr::{ArithOp, CmpOp, RelExpr, ScalarExpr};
use mera_txn::{Program, Statement};

/// Renders a relational expression as parseable XRA source.
pub fn rel_to_xra(expr: &RelExpr) -> String {
    match expr {
        RelExpr::Scan(name) => name.clone(),
        RelExpr::Values(rel) => {
            let mut s = String::from("values (");
            for (i, a) in rel.schema().attributes().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&a.dtype.to_string());
            }
            s.push_str(") {");
            for (i, (t, m)) in rel.sorted_pairs().iter().enumerate() {
                for k in 0..*m {
                    if i > 0 || k > 0 {
                        s.push_str(", ");
                    }
                    s.push('(');
                    for (j, v) in t.values().iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&literal_to_xra(v));
                    }
                    s.push(')');
                }
            }
            s.push('}');
            s
        }
        RelExpr::Union(l, r) => format!("({} union {})", rel_to_xra(l), rel_to_xra(r)),
        RelExpr::Difference(l, r) => format!("({} minus {})", rel_to_xra(l), rel_to_xra(r)),
        RelExpr::Intersect(l, r) => {
            format!("({} intersect {})", rel_to_xra(l), rel_to_xra(r))
        }
        RelExpr::Product(l, r) => format!("({} times {})", rel_to_xra(l), rel_to_xra(r)),
        RelExpr::Select { input, predicate } => {
            format!(
                "select[{}]({})",
                scalar_to_xra(predicate),
                rel_to_xra(input)
            )
        }
        RelExpr::Project { input, attrs } => {
            let list: Vec<String> = attrs.indexes().iter().map(|i| format!("%{i}")).collect();
            format!("project[{}]({})", list.join(", "), rel_to_xra(input))
        }
        RelExpr::ExtProject { input, exprs } => {
            let list: Vec<String> = exprs.iter().map(scalar_to_xra).collect();
            format!("project[{}]({})", list.join(", "), rel_to_xra(input))
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => format!(
            "join[{}]({}, {})",
            scalar_to_xra(predicate),
            rel_to_xra(left),
            rel_to_xra(right)
        ),
        RelExpr::Distinct(input) => format!("unique({})", rel_to_xra(input)),
        RelExpr::Closure(input) => format!("closure({})", rel_to_xra(input)),
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let list: Vec<String> = keys.iter().map(|i| format!("%{i}")).collect();
            format!(
                "groupby[({}), {}, %{}]({})",
                list.join(", "),
                agg.name(),
                attr,
                rel_to_xra(input)
            )
        }
    }
}

/// Renders one literal value as parseable XRA source — the single place
/// where string quoting (`''` escaping) and real formatting live, shared
/// by scalar literals and `values` rows.
fn literal_to_xra(v: &mera_core::value::Value) -> String {
    use mera_core::value::Value;
    match v {
        Value::Str(s) => format!("'{}'", s.as_str().replace('\'', "''")),
        Value::Real(r) => {
            // ensure reals keep a decimal point so they re-lex as reals
            let s = r.get().to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        other => other.to_string(),
    }
}

/// Renders a scalar expression as parseable XRA source.
pub fn scalar_to_xra(e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Attr(i) => format!("%{i}"),
        ScalarExpr::Literal(v) => literal_to_xra(v),
        ScalarExpr::Arith(op, l, r) => {
            let op = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
                ArithOp::Mod => "mod",
            };
            format!("({} {} {})", scalar_to_xra(l), op, scalar_to_xra(r))
        }
        ScalarExpr::Neg(inner) => format!("(-{})", scalar_to_xra(inner)),
        ScalarExpr::Cmp(op, l, r) => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {} {})", scalar_to_xra(l), op, scalar_to_xra(r))
        }
        ScalarExpr::And(l, r) => format!("({} and {})", scalar_to_xra(l), scalar_to_xra(r)),
        ScalarExpr::Or(l, r) => format!("({} or {})", scalar_to_xra(l), scalar_to_xra(r)),
        ScalarExpr::Not(inner) => format!("(not {})", scalar_to_xra(inner)),
        ScalarExpr::Concat(l, r) => {
            format!("({} || {})", scalar_to_xra(l), scalar_to_xra(r))
        }
    }
}

/// Renders a statement as parseable XRA source.
pub fn stmt_to_xra(stmt: &Statement) -> String {
    match stmt {
        Statement::Insert { relation, expr } => {
            format!("insert({relation}, {})", rel_to_xra(expr))
        }
        Statement::Delete { relation, expr } => {
            format!("delete({relation}, {})", rel_to_xra(expr))
        }
        Statement::Update {
            relation,
            expr,
            exprs,
        } => {
            let list: Vec<String> = exprs.iter().map(scalar_to_xra).collect();
            format!(
                "update({relation}, {}, ({}))",
                rel_to_xra(expr),
                list.join(", ")
            )
        }
        Statement::Assign { name, expr } => format!("{name} = {}", rel_to_xra(expr)),
        Statement::Query { expr } => format!("?{}", rel_to_xra(expr)),
    }
}

/// Renders a program as parseable XRA source (one statement per line).
pub fn program_to_xra(program: &Program) -> String {
    program
        .statements
        .iter()
        .map(stmt_to_xra)
        .collect::<Vec<_>>()
        .join(";\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::Aggregate;

    #[test]
    fn renders_example_3_1() {
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .select(ScalarExpr::attr(6).eq(ScalarExpr::str("NL")))
            .project(&[1]);
        assert_eq!(
            rel_to_xra(&e),
            "project[%1](select[(%6 = 'NL')](join[(%2 = %4)](beer, brewery)))"
        );
    }

    #[test]
    fn renders_groupby_and_unique() {
        let e = RelExpr::scan("beer")
            .group_by(&[2], Aggregate::Avg, 3)
            .distinct();
        assert_eq!(rel_to_xra(&e), "unique(groupby[(%2), AVG, %3](beer))");
    }

    #[test]
    fn reals_keep_decimal_point() {
        let e = ScalarExpr::real(5.0);
        assert_eq!(scalar_to_xra(&e), "5.0");
        let e = ScalarExpr::real(1.25);
        assert_eq!(scalar_to_xra(&e), "1.25");
    }

    #[test]
    fn strings_escape_quotes() {
        let e = ScalarExpr::str("it's");
        assert_eq!(scalar_to_xra(&e), "'it''s'");
    }

    #[test]
    fn statement_rendering() {
        let s = Statement::update(
            "beer",
            RelExpr::scan("beer"),
            vec![
                ScalarExpr::attr(1),
                ScalarExpr::attr(2).mul(ScalarExpr::real(1.1)),
            ],
        );
        assert_eq!(stmt_to_xra(&s), "update(beer, beer, (%1, (%2 * 1.1)))");
    }
}
