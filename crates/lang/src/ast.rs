//! The syntactic AST.
//!
//! This is the *named* surface form: attributes may be referenced by name,
//! to be resolved against schemas during lowering (the paper's "notational
//! convention" layer on top of prefixed indexes).

use mera_core::types::DataType;

/// Binary operators in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `||`
    Concat,
}

/// A scalar expression as written.
#[derive(Debug, Clone, PartialEq)]
pub enum SScalar {
    /// `%i` — prefixed attribute index.
    AttrIndex(usize),
    /// A bare identifier — an attribute name to resolve.
    AttrName(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal (`true`/`false`).
    Bool(bool),
    /// Binary operation.
    Binary(SBinOp, Box<SScalar>, Box<SScalar>),
    /// `not e`.
    Not(Box<SScalar>),
    /// Unary minus.
    Neg(Box<SScalar>),
}

/// A literal value in a `values` relation literal.
#[derive(Debug, Clone, PartialEq)]
pub enum SLiteral {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// A relational expression as written.
#[derive(Debug, Clone, PartialEq)]
pub enum SRel {
    /// A relation name (database relation or program temporary).
    Name(String),
    /// `select[φ](E)`.
    Select {
        /// Input.
        input: Box<SRel>,
        /// Condition.
        predicate: SScalar,
    },
    /// `project[e₁, …, eₙ](E)` — plain when all eᵢ are attribute refs.
    Project {
        /// Input.
        input: Box<SRel>,
        /// Projection expressions.
        exprs: Vec<SScalar>,
    },
    /// `join[φ](E₁, E₂)`.
    Join {
        /// Left input.
        left: Box<SRel>,
        /// Right input.
        right: Box<SRel>,
        /// Join condition over the concatenated schema.
        predicate: SScalar,
    },
    /// `E₁ union E₂`.
    Union(Box<SRel>, Box<SRel>),
    /// `E₁ minus E₂`.
    Minus(Box<SRel>, Box<SRel>),
    /// `E₁ intersect E₂`.
    Intersect(Box<SRel>, Box<SRel>),
    /// `E₁ times E₂`.
    Times(Box<SRel>, Box<SRel>),
    /// `unique(E)` — duplicate elimination `δ`.
    Unique(Box<SRel>),
    /// `closure(E)` — transitive closure `α` (the §5 extension).
    Closure(Box<SRel>),
    /// `groupby[(keys), AGG, attr](E)`.
    GroupBy {
        /// Input.
        input: Box<SRel>,
        /// Grouping attribute references (possibly empty).
        keys: Vec<SScalar>,
        /// Aggregate function name.
        agg: String,
        /// Aggregated attribute reference.
        attr: Box<SScalar>,
    },
    /// `values (types) {(row), …}` — a literal relation.
    Values {
        /// The column types.
        types: Vec<DataType>,
        /// The rows (duplicates meaningful).
        rows: Vec<Vec<SLiteral>>,
    },
}

/// A statement as written (Definition 4.1 surface forms).
#[derive(Debug, Clone, PartialEq)]
pub enum SStmt {
    /// `insert(R, E)`.
    Insert {
        /// Target relation.
        relation: String,
        /// Source expression.
        expr: SRel,
    },
    /// `delete(R, E)`.
    Delete {
        /// Target relation.
        relation: String,
        /// Expression selecting tuples to remove.
        expr: SRel,
    },
    /// `update(R, E, (e₁, …, eₙ))`.
    Update {
        /// Target relation.
        relation: String,
        /// Expression selecting tuples to modify.
        expr: SRel,
        /// The structure-preserving expression list.
        exprs: Vec<SScalar>,
    },
    /// `name = E`.
    Assign {
        /// Temporary name.
        name: String,
        /// Bound expression.
        expr: SRel,
    },
    /// `?E`.
    Query {
        /// Queried expression.
        expr: SRel,
    },
}

/// A program: statements in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SProgram {
    /// The statements.
    pub statements: Vec<SStmt>,
}

/// A top-level script item.
#[derive(Debug, Clone, PartialEq)]
pub enum SItem {
    /// `relation name (attr: type, …)` — a schema declaration.
    RelationDecl {
        /// Relation name.
        name: String,
        /// `(attribute name, domain)` pairs.
        attrs: Vec<(String, DataType)>,
    },
    /// `view name = E` — a materialized-view declaration.
    ViewDecl {
        /// View name.
        name: String,
        /// The defining expression.
        expr: SRel,
    },
    /// `key name (attr, …)` — a key-constraint declaration: the summed
    /// multiplicity per key point is bounded by 1 (the bag-model reading
    /// of a relational key).
    KeyDecl {
        /// The constrained relation.
        relation: String,
        /// The key attributes (`%i` or bare names).
        attrs: Vec<SScalar>,
    },
    /// `begin p end` — a transaction.
    Transaction(SProgram),
    /// A bare statement (executed as a single-statement transaction).
    Statement(SStmt),
}

/// A whole script: declarations, transactions and statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SScript {
    /// The items in source order.
    pub items: Vec<SItem>,
}
