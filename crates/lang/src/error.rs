//! Language-level errors with source positions.

use std::fmt;

use mera_core::CoreError;

/// A line/column source position (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing or lowering XRA source.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Lexical error at a position.
    Lex {
        /// Where.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// Parse error at a position.
    Parse {
        /// Where.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// A semantic error from lowering (schema resolution, typing).
    Semantic(CoreError),
}

impl LangError {
    /// Builds a lexical error.
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        LangError::Lex {
            pos,
            message: message.into(),
        }
    }

    /// Builds a parse error.
    pub fn parse(pos: Pos, message: impl Into<String>) -> Self {
        LangError::Parse {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Semantic(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<CoreError> for LangError {
    fn from(e: CoreError) -> Self {
        LangError::Semantic(e)
    }
}

/// Result alias for language operations.
pub type LangResult<T> = Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::parse(Pos { line: 3, col: 7 }, "expected ')'");
        assert_eq!(e.to_string(), "parse error at 3:7: expected ')'");
        let e = LangError::lex(Pos { line: 1, col: 1 }, "bad char");
        assert!(e.to_string().contains("1:1"));
    }

    #[test]
    fn core_errors_convert() {
        let e: LangError = CoreError::UnknownRelation("beer".into()).into();
        assert!(matches!(e, LangError::Semantic(_)));
        assert!(e.to_string().contains("beer"));
    }
}
