//! # mera-lang — the XRA-style textual language
//!
//! The paper's extended relational algebra grew into XRA, the primary
//! database language of PRISMA/DB. This crate is a textual front-end in
//! that tradition:
//!
//! * [`token`] — lexer (`%i` attribute indexes, `select[…]`, comments),
//! * [`ast`] / [`parser`] — the named surface syntax,
//! * [`lower`] — name resolution and lowering to the typed algebra and
//!   statements,
//! * [`pretty`] — printing typed trees back to parseable source,
//! * [`session`] — a stateful runner: scripts → atomic transactions.
//!
//! ```
//! use mera_lang::Session;
//!
//! let mut session = Session::new();
//! session.run_script(
//!     "relation beer (name: str, brewery: str, alcperc: real); \
//!      insert(beer, values (str, str, real) {('Grolsch','Grolsche',5.0)});",
//! )?;
//! let out = session.query("project[name](beer)")?;
//! assert_eq!(out.len(), 1);
//! # Ok::<(), mera_lang::LangError>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod session;
pub mod token;

pub use error::{LangError, LangResult, Pos};
pub use lower::{lower_script, KeyDef, Lowerer};
pub use parser::{parse_program, parse_rel, parse_script};
pub use pretty::{program_to_xra, rel_to_xra, scalar_to_xra, stmt_to_xra};
pub use session::{RunResult, Session};
