//! Tokens and the hand-rolled lexer for the XRA-style language.
//!
//! The surface syntax is an ASCII rendering of the paper's notation:
//! `select[…](E)` for `σ`, `project[…](E)` for `π`, `union`/`minus`/
//! `intersect`/`times` for `⊎ − ∩ ×`, `unique(E)` for `δ`, and
//! `groupby[(keys), AGG, attr](E)` for `γ`. Attributes are written with
//! the paper's prefix form `%i` or by name.

use std::fmt;

use crate::error::{LangError, LangResult, Pos};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised by the parser so
    /// identifiers stay maximally permissive).
    Ident(String),
    /// Prefixed attribute index `%i`.
    AttrIndex(usize),
    /// Integer literal.
    Int(i64),
    /// Real literal (contains a decimal point or exponent).
    Real(f64),
    /// Single-quoted string literal (with `''` escaping).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `.` (qualified names in the SQL front-end).
    Dot,
    /// `?`.
    Question,
    /// `=`.
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `||` string concatenation.
    Concat,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::AttrIndex(i) => write!(f, "%{i}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Real(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Question => write!(f, "?"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Concat => write!(f, "||"),
        }
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexes a source string into tokens. `--` starts a comment to end of
/// line.
pub fn lex(src: &str) -> LangResult<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    let push_simple = |out: &mut Vec<Spanned>, token: Token, line: u32, col: u32| {
        out.push(Spanned {
            token,
            pos: Pos { line, col },
        });
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col };
        macro_rules! advance {
            ($n:expr) => {{
                i += $n;
                col += $n as u32;
            }};
        }
        match c {
            ' ' | '\t' | '\r' => advance!(1),
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push_simple(&mut out, Token::LParen, line, col);
                advance!(1);
            }
            ')' => {
                push_simple(&mut out, Token::RParen, line, col);
                advance!(1);
            }
            '[' => {
                push_simple(&mut out, Token::LBracket, line, col);
                advance!(1);
            }
            ']' => {
                push_simple(&mut out, Token::RBracket, line, col);
                advance!(1);
            }
            '{' => {
                push_simple(&mut out, Token::LBrace, line, col);
                advance!(1);
            }
            '}' => {
                push_simple(&mut out, Token::RBrace, line, col);
                advance!(1);
            }
            ',' => {
                push_simple(&mut out, Token::Comma, line, col);
                advance!(1);
            }
            ';' => {
                push_simple(&mut out, Token::Semi, line, col);
                advance!(1);
            }
            ':' => {
                push_simple(&mut out, Token::Colon, line, col);
                advance!(1);
            }
            '.' => {
                push_simple(&mut out, Token::Dot, line, col);
                advance!(1);
            }
            '?' => {
                push_simple(&mut out, Token::Question, line, col);
                advance!(1);
            }
            '=' => {
                push_simple(&mut out, Token::Eq, line, col);
                advance!(1);
            }
            '+' => {
                push_simple(&mut out, Token::Plus, line, col);
                advance!(1);
            }
            '-' => {
                push_simple(&mut out, Token::Minus, line, col);
                advance!(1);
            }
            '*' => {
                push_simple(&mut out, Token::Star, line, col);
                advance!(1);
            }
            '/' => {
                push_simple(&mut out, Token::Slash, line, col);
                advance!(1);
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                push_simple(&mut out, Token::Concat, line, col);
                advance!(2);
            }
            '<' => {
                let token = match bytes.get(i + 1) {
                    Some(b'=') => {
                        advance!(2);
                        Token::Le
                    }
                    Some(b'>') => {
                        advance!(2);
                        Token::Ne
                    }
                    _ => {
                        advance!(1);
                        Token::Lt
                    }
                };
                out.push(Spanned { token, pos });
            }
            '>' => {
                let token = if bytes.get(i + 1) == Some(&b'=') {
                    advance!(2);
                    Token::Ge
                } else {
                    advance!(1);
                    Token::Gt
                };
                out.push(Spanned { token, pos });
            }
            '%' => {
                // prefixed attribute index
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(LangError::lex(pos, "expected digits after '%'"));
                }
                let n: usize = src[start..j]
                    .parse()
                    .map_err(|_| LangError::lex(pos, "attribute index too large"))?;
                out.push(Spanned {
                    token: Token::AttrIndex(n),
                    pos,
                });
                let len = j - i;
                advance!(len);
            }
            '\'' => {
                // string literal with '' escaping; content bytes are copied
                // verbatim and decoded once, so multi-byte UTF-8 survives
                let mut s: Vec<u8> = Vec::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => return Err(LangError::lex(pos, "unterminated string literal")),
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push(b'\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b);
                            j += 1;
                        }
                    }
                }
                let s = String::from_utf8(s)
                    .map_err(|_| LangError::lex(pos, "invalid UTF-8 in string literal"))?;
                out.push(Spanned {
                    token: Token::Str(s),
                    pos,
                });
                let len = j - i;
                advance!(len);
            }
            d if d.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_real = false;
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && bytes
                        .get(j + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_real = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &src[start..j];
                let token = if is_real {
                    Token::Real(
                        text.parse()
                            .map_err(|_| LangError::lex(pos, "invalid real literal"))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| LangError::lex(pos, "integer literal too large"))?,
                    )
                };
                out.push(Spanned { token, pos });
                let len = j - i;
                advance!(len);
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(src[start..j].to_owned()),
                    pos,
                });
                let len = j - i;
                advance!(len);
            }
            other => {
                return Err(LangError::lex(
                    pos,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("select[%1 = 5](beer)"),
            vec![
                Token::Ident("select".into()),
                Token::LBracket,
                Token::AttrIndex(1),
                Token::Eq,
                Token::Int(5),
                Token::RBracket,
                Token::LParen,
                Token::Ident("beer".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn numbers_and_reals() {
        assert_eq!(
            toks("42 1.5 0.25"),
            vec![Token::Int(42), Token::Real(1.5), Token::Real(0.25),]
        );
        // a real literal requires digits after the point; a separated '.'
        // lexes as the qualified-name dot
        assert_eq!(toks("3 ."), vec![Token::Int(3), Token::Dot]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'Guineken' 'it''s'"),
            vec![Token::Str("Guineken".into()), Token::Str("it's".into())]
        );
        assert!(lex("'open").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = <>"),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_and_whitespace() {
        assert_eq!(
            toks("a -- the rest is ignored\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn attr_index_requires_digits() {
        assert!(lex("%x").is_err());
        assert_eq!(toks("%12"), vec![Token::AttrIndex(12)]);
    }

    #[test]
    fn positions_tracked() {
        let spanned = lex("a\n  b").expect("lexes");
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn concat_operator() {
        assert_eq!(
            toks("a || b"),
            vec![
                Token::Ident("a".into()),
                Token::Concat,
                Token::Ident("b".into()),
            ]
        );
        assert!(lex("a | b").is_err());
    }
}
