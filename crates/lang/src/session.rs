//! An interactive session: parse → lower → run as transactions.
//!
//! [`Session`] is the glue a REPL or script runner needs: it owns a
//! database state, accepts XRA source, lowers each transaction and runs it
//! with atomic commit/abort semantics, returning rendered query outputs.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::RelExpr;
use mera_txn::exec::ExecConfig;
use mera_txn::transaction::{run_transaction_cataloged, CommitCatalog, Outcome};
use mera_txn::views::{CreateViewError, ViewSet};
use mera_txn::{CatalogStats, ConstraintSet, IndexSet, KeySet, Program};

use crate::error::{LangError, LangResult};
use crate::lower::lower_script;
use crate::parser::parse_script;

/// The result of running one transaction in a session.
#[derive(Debug, Clone, PartialEq)]
pub enum RunResult {
    /// Committed; the relations are the `?E` outputs in statement order.
    Committed(Vec<Relation>),
    /// Aborted with a rendered reason; the database is unchanged.
    Aborted(String),
}

/// A stateful XRA session.
pub struct Session {
    db: Database,
    config: ExecConfig,
    views: ViewSet,
    stats: Arc<CatalogStats>,
    indexes: Arc<IndexSet>,
    keys: Arc<KeySet>,
}

impl Session {
    /// A fresh session with an empty database schema.
    pub fn new() -> Self {
        Session::with_database(Database::new(DatabaseSchema::new()))
    }

    /// A session over an existing database state.
    pub fn with_database(db: Database) -> Self {
        let stats = CatalogStats::from_database(&db).expect("catalog relations resolve");
        Session {
            db,
            config: ExecConfig::default(),
            views: ViewSet::new(),
            stats: Arc::new(stats),
            indexes: Arc::new(IndexSet::new()),
            keys: Arc::new(KeySet::new()),
        }
    }

    /// Overrides the execution configuration.
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// Selects the evaluator used by subsequent transactions and queries,
    /// keeping the other configuration knobs.
    pub fn set_engine(&mut self, engine: mera_txn::EngineKind) {
        self.config.engine = engine;
    }

    /// Overrides the engine tuning options (batch size, partitions),
    /// keeping the other configuration knobs.
    pub fn set_exec_options(&mut self, options: mera_txn::ExecOptions) {
        self.config.options = options;
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The session's materialized views.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// Creates a materialized view over the current state; it is kept
    /// incrementally up to date by every subsequent commit.
    pub fn create_view(&mut self, name: &str, expr: RelExpr) -> LangResult<()> {
        self.views
            .create(name, expr, &self.db, self.config)
            .map(|_| ())
            .map_err(|e| match e {
                CreateViewError::Error(c) => LangError::Semantic(c),
                CreateViewError::Rejected(diags) => {
                    LangError::Semantic(CoreError::TypeError(format!(
                        "view definition rejected:\n{}",
                        mera_analyze::render(&diags)
                    )))
                }
            })
    }

    /// The database schema extended with every view's schema — what the
    /// lowerer resolves names against.
    fn catalog(&self) -> DatabaseSchema {
        let mut schema = self.db.schema().clone();
        for v in self.views.iter() {
            let _ = schema.add(RelationSchema::new(
                v.name().to_owned(),
                v.schema().as_ref().clone(),
            ));
        }
        schema
    }

    /// Runs a whole script: declarations extend the schema immediately;
    /// each transaction (or bare statement) runs atomically. Returns one
    /// [`RunResult`] per transaction.
    ///
    /// A semantic or parse error anywhere in the script aborts the whole
    /// call *before* any transaction runs only for parse errors;
    /// declarations and transactions are otherwise applied in order (a
    /// failing transaction aborts itself, not the script).
    pub fn run_script(&mut self, src: &str) -> LangResult<Vec<RunResult>> {
        let script = parse_script(src)?;
        // declarations must be visible to lowering: lower against the
        // session's schema (views included) extended with the script's
        // declarations
        let lowered = lower_script(&script, &self.catalog())?;
        for decl in lowered.declarations {
            self.db.add_relation(decl)?;
        }
        // views are created before the script's transactions run: their
        // initial contents come from the current state, and every commit
        // below refreshes them incrementally
        for view in lowered.views {
            self.create_view(&view.name, view.expr)?;
        }
        // key constraints install before the script's transactions run, so
        // every transaction below is planned and enforced under them
        for key in lowered.keys {
            self.declare_key(&key.relation, &key.attrs)?;
        }
        let mut results = Vec::with_capacity(lowered.transactions.len());
        for program in &lowered.transactions {
            results.push(self.run_program(program));
        }
        Ok(results)
    }

    /// Statically checks a script without executing anything: parses,
    /// lowers, and runs the `mera-analyze` passes over every view
    /// declaration and every transaction.
    ///
    /// Returns one diagnostic list per view declaration (in source
    /// order), followed by one per transaction (same order as
    /// [`run_script`](Self::run_script) results). Neither the database
    /// state nor the schema is touched — declarations in the script are
    /// only *visible* to the check, not installed.
    ///
    /// Relation cardinalities are treated as unknown: a check is a claim
    /// about the script against *any* database state matching the schema,
    /// so only structurally provable facts (e.g. `select[false]`, literal
    /// `values`) feed the emptiness pass.
    pub fn check_script(&self, src: &str) -> LangResult<Vec<Vec<mera_analyze::Diagnostic>>> {
        let script = parse_script(src)?;
        let catalog = self.catalog();
        let lowered = lower_script(&script, &catalog)?;
        let mut schema = catalog;
        for decl in lowered.declarations {
            schema.add(decl).map_err(LangError::Semantic)?;
        }
        let mut out = Vec::new();
        for view in &lowered.views {
            let va = mera_analyze::analyze_view_def(&view.name, &view.expr, &schema);
            if let Some(s) = &va.schema {
                schema
                    .add(RelationSchema::new(view.name.clone(), s.as_ref().clone()))
                    .map_err(LangError::Semantic)?;
            }
            out.push(va.diagnostics);
        }
        let cards = mera_analyze::CardEnv::new();
        out.extend(lowered.transactions.iter().map(|program| {
            mera_analyze::analyze_program(
                program.statements.iter().map(|s| s.analyzer_view()),
                &schema,
                &cards,
            )
        }));
        Ok(out)
    }

    /// Runs one already-lowered program as a transaction. Commits refresh
    /// every materialized view, the table statistics and every secondary
    /// index incrementally.
    pub fn run_program(&mut self, program: &Program) -> RunResult {
        let (next, outcome) = run_transaction_cataloged(
            &self.db,
            CommitCatalog {
                views: Some(&mut self.views),
                stats: Some(&mut self.stats),
                indexes: Some(&mut self.indexes),
                keys: Some(&mut self.keys),
            },
            program,
            self.config,
            None,
            &ConstraintSet::new(),
        );
        if !outcome.is_committed() {
            // contents unchanged by the abort, only logical time moved
            Arc::make_mut(&mut self.stats).set_as_of(next.time());
        }
        self.db = next;
        match outcome {
            Outcome::Committed(outputs) => RunResult::Committed(outputs.queries),
            Outcome::Aborted(reason) => RunResult::Aborted(reason.to_string()),
        }
    }

    /// Creates a secondary index on the 1-based `keys` of `relation`; it
    /// is kept incrementally up to date by every subsequent commit and
    /// used as an access path by queries.
    pub fn create_index(&mut self, relation: &str, keys: &[usize]) -> LangResult<()> {
        Arc::make_mut(&mut self.indexes)
            .create(&self.db, relation, keys)
            .map_err(LangError::Semantic)
    }

    /// The session's maintained table statistics.
    pub fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    /// The session's maintained secondary indexes.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// Declares the 1-based `attrs` as a candidate key of `relation`.
    /// Existing data violating the key, a key on a view, and a duplicate
    /// declaration are all rejected with a rendered diagnostic
    /// (`E0401`/`E0402`/`E0403`). Every subsequent commit enforces the key
    /// against its net deltas and aborts violators; queries plan with the
    /// key as a property source (δ-elimination, keyed-γ simplification).
    pub fn declare_key(&mut self, relation: &str, attrs: &[usize]) -> LangResult<()> {
        if self.views.get(relation).is_some() {
            return Err(LangError::Semantic(CoreError::TypeError(format!(
                "error[E0402]: cannot declare a key on materialized view `{relation}`"
            ))));
        }
        if self.keys.is_declared(relation, attrs) {
            return Err(LangError::Semantic(CoreError::TypeError(format!(
                "error[E0403]: key {relation}({}) is already declared",
                attrs
                    .iter()
                    .map(|a| format!("%{a}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ))));
        }
        match Arc::make_mut(&mut self.keys)
            .declare(&self.db, relation, attrs)
            .map_err(LangError::Semantic)?
        {
            Ok(()) => Ok(()),
            Err(v) => Err(LangError::Semantic(CoreError::TypeError(format!(
                "error[E0401]: {v}"
            )))),
        }
    }

    /// The session's declared key constraints.
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// The working state a read-only evaluation (or EXPLAIN) runs
    /// against: current database, view snapshots, statistics and indexes.
    fn read_state(&self) -> mera_txn::WorkingState {
        mera_txn::WorkingState::with_catalog(
            self.db.clone(),
            &self.views,
            Some(Arc::clone(&self.stats)),
            Some(Arc::clone(&self.indexes)),
            Some(Arc::clone(&self.keys)),
        )
    }

    /// Evaluates a single relational expression (as `?E`) without touching
    /// the database — the REPL's expression mode. Materialized views are
    /// readable by name, served from their cached contents; the plan is
    /// cost-based against the session's statistics, with index access
    /// paths.
    pub fn query(&self, src: &str) -> LangResult<Relation> {
        let expr = self.lower_rel(src)?;
        mera_txn::exec::eval_expr(&self.read_state(), &expr, self.config)
            .map_err(LangError::Semantic)
    }

    /// Renders the plan a relational expression gets — join order, access
    /// paths, estimated-vs-actual cardinalities — without touching the
    /// database (the REPL's `explain` mode). See [`mera_txn::explain_expr`]
    /// for the format.
    pub fn explain(&self, src: &str) -> LangResult<String> {
        let expr = self.lower_rel(src)?;
        mera_txn::explain_expr(&self.read_state(), &expr, self.config).map_err(LangError::Semantic)
    }

    fn lower_rel(&self, src: &str) -> LangResult<RelExpr> {
        let rel = crate::parser::parse_rel(src)?;
        let catalog = self.catalog();
        let lowerer = crate::lower::Lowerer::new(&catalog);
        lowerer.lower_rel(&rel)
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;

    #[test]
    fn script_end_to_end() {
        let mut session = Session::new();
        let results = session
            .run_script(
                "relation beer (name: str, brewery: str, alcperc: real);\n\
                 begin\n\
                   insert(beer, values (str, str, real) {\n\
                     ('Grolsch', 'Grolsche', 5.0),\n\
                     ('GuinekenPils', 'Guineken', 5.0)\n\
                   });\n\
                 end;\n\
                 ?select[brewery = 'Guineken'](beer);",
            )
            .expect("script runs");
        assert_eq!(results.len(), 2);
        let RunResult::Committed(ref outs) = results[1] else {
            panic!("query transaction committed");
        };
        assert_eq!(outs[0].len(), 1);
        assert!(outs[0].contains(&tuple!["GuinekenPils", "Guineken", 5.0_f64]));
    }

    #[test]
    fn example_4_1_via_source() {
        let mut session = Session::new();
        session
            .run_script(
                "relation beer (name: str, brewery: str, alcperc: real);\n\
                 insert(beer, values (str, str, real) {('GuinekenPils','Guineken',5.0)});",
            )
            .expect("setup");
        let results = session
            .run_script(
                "update(beer, select[brewery = 'Guineken'](beer),\n\
                         (name, brewery, alcperc * 1.1));\n\
                 ?beer;",
            )
            .expect("update runs");
        let RunResult::Committed(ref outs) = results[1] else {
            panic!("committed");
        };
        assert!(outs[0].contains(&tuple!["GuinekenPils", "Guineken", 5.5_f64]));
    }

    #[test]
    fn aborted_transaction_leaves_database_unchanged() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int);")
            .expect("declares");
        let results = session
            .run_script(
                "begin\n\
                   insert(r, values (int) {(1)});\n\
                   ?groupby[(), AVG, %1](select[false](r));\n\
                 end;",
            )
            .expect("script parses and lowers");
        assert!(matches!(results[0], RunResult::Aborted(ref m) if m.contains("AVG")));
        // the insert rolled back
        let out = session.query("r").expect("queries");
        assert!(out.is_empty());
    }

    #[test]
    fn check_script_reports_without_executing() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int, b: str);")
            .expect("declares");
        let before = session.database().clone();
        // E0102: AVG over a provably-empty input
        let diags = session
            .check_script("?groupby[(), AVG, %1](select[false](r));")
            .expect("checks");
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0][0].code,
            mera_analyze::Code::PartialAggregateOnEmpty
        );
        // W0101: AVG over a relation of unknown cardinality — a warning,
        // so the program would still be admitted for execution
        let diags = session
            .check_script("?groupby[(), AVG, %1](r);")
            .expect("checks");
        assert_eq!(
            diags[0][0].code,
            mera_analyze::Code::PartialAggregateMayBeUndefined
        );
        assert!(!mera_analyze::has_errors(&diags[0]));
        // declarations inside the checked script resolve but do not install
        let diags = session
            .check_script("relation s (x: int); ?s;")
            .expect("checks");
        assert!(diags.iter().all(|d| d.is_empty()));
        assert_eq!(session.database(), &before);
    }

    #[test]
    fn statically_bad_transaction_aborts_with_diagnostic() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int);")
            .expect("declares");
        // inserting strings into an int relation: lowering is structural
        // and lets it through; the analyzer rejects it (E0004) before the
        // engine would have
        let results = session
            .run_script("insert(r, values (str) {('x')});")
            .expect("parses and lowers");
        let RunResult::Aborted(ref msg) = results[0] else {
            panic!("expected abort, got {:?}", results[0]);
        };
        assert!(msg.contains("static analysis rejected"), "{msg}");
        assert!(msg.contains("E0004"), "{msg}");
    }

    #[test]
    fn query_mode_is_side_effect_free() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int); insert(r, values (int) {(1),(1)});")
            .expect("setup");
        let before = session.database().clone();
        let out = session.query("unique(r)").expect("queries");
        assert_eq!(out.len(), 1);
        assert_eq!(session.database(), &before);
    }

    #[test]
    fn view_script_declares_and_maintains() {
        let mut session = Session::new();
        session
            .run_script(
                "relation sales (region: str, amount: int);\n\
                 view totals = groupby[(region), SUM, amount](sales);",
            )
            .expect("declares view");
        assert!(session.views().contains("totals"));
        session
            .run_script(
                "insert(sales, values (str, int) {('north', 10), ('north', 5), ('south', 7)});",
            )
            .expect("inserts");
        let out = session.query("totals").expect("view is readable");
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple!["north", 15_i64]));
        assert!(out.contains(&tuple!["south", 7_i64]));
        // views compose in queries like any relation
        let out = session
            .query("select[%2 > 10](totals)")
            .expect("view composes");
        assert_eq!(out.len(), 1);
        // deletes retract through the view
        session
            .run_script("delete(sales, values (str, int) {('south', 7)});")
            .expect("deletes");
        let out = session.query("totals").expect("view is readable");
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple!["north", 15_i64]));
    }

    #[test]
    fn view_name_resolves_in_later_script_items() {
        let mut session = Session::new();
        let results = session
            .run_script(
                "relation r (a: int);\n\
                 insert(r, values (int) {(1), (2), (3)});\n\
                 view big = select[%1 > 1](r);\n\
                 ?big union big;",
            )
            .expect("runs");
        let RunResult::Committed(ref outs) = results[1] else {
            panic!("query committed: {:?}", results[1]);
        };
        assert_eq!(outs[0].len(), 4);
    }

    #[test]
    fn dml_on_view_is_rejected() {
        let mut session = Session::new();
        session
            .run_script(
                "relation r (a: int);\n\
                 view v = unique(r);",
            )
            .expect("declares");
        let results = session
            .run_script("insert(v, values (int) {(1)});")
            .expect("parses and lowers");
        let RunResult::Aborted(ref msg) = results[0] else {
            panic!("expected abort, got {:?}", results[0]);
        };
        assert!(msg.contains("E0302"), "{msg}");
    }

    #[test]
    fn partial_view_definition_is_rejected() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int);")
            .expect("declares");
        let err = session
            .run_script("view avg = groupby[(), AVG, %1](r);")
            .expect_err("partial view rejected");
        let msg = err.to_string();
        assert!(msg.contains("E0303"), "{msg}");
        assert!(!session.views().contains("avg"));
    }

    #[test]
    fn check_script_reports_view_diagnostics_first() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int);")
            .expect("declares");
        let diags = session
            .check_script(
                "view avg = groupby[(), AVG, %1](r);\n\
                 ?r;",
            )
            .expect("checks");
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0][0].code, mera_analyze::Code::PartialView);
        assert!(diags[1].is_empty());
    }

    #[test]
    fn script_declared_key_is_enforced_at_commit() {
        let mut session = Session::new();
        session
            .run_script(
                "relation member (name: str, town: str);\n\
                 key member (name);\n\
                 insert(member, values (str, str) {('dick', 'enschede')});",
            )
            .expect("declares and inserts");
        assert!(session.keys().is_declared("member", &[1]));
        // a second tuple at the same key point aborts with E0401 and
        // leaves the database unchanged
        let results = session
            .run_script("insert(member, values (str, str) {('dick', 'hengelo')});")
            .expect("parses and lowers");
        let RunResult::Aborted(ref msg) = results[0] else {
            panic!("expected abort, got {:?}", results[0]);
        };
        assert!(msg.contains("E0401"), "{msg}");
        assert_eq!(session.query("member").expect("queries").len(), 1);
        // replacing the tuple in one transaction is fine: the *net* delta
        // at the key point stays within bounds
        let results = session
            .run_script(
                "begin\n\
                   delete(member, select[town = 'enschede'](member));\n\
                   insert(member, values (str, str) {('dick', 'hengelo')});\n\
                 end;",
            )
            .expect("parses and lowers");
        assert!(matches!(results[0], RunResult::Committed(_)));
        let out = session.query("member").expect("queries");
        assert!(out.contains(&tuple!["dick", "hengelo"]));
    }

    #[test]
    fn key_on_view_and_duplicate_key_are_rejected() {
        let mut session = Session::new();
        session
            .run_script(
                "relation r (a: int);\n\
                 view v = unique(r);\n\
                 key r (a);",
            )
            .expect("declares");
        let err = session.run_script("key v (%1);").expect_err("rejected");
        assert!(err.to_string().contains("E0402"), "{err}");
        let err = session.run_script("key r (%1);").expect_err("rejected");
        assert!(err.to_string().contains("E0403"), "{err}");
    }

    #[test]
    fn key_declaration_over_violating_data_is_rejected() {
        let mut session = Session::new();
        session
            .run_script(
                "relation r (a: int, b: int);\n\
                 insert(r, values (int, int) {(1, 10), (1, 20)});",
            )
            .expect("setup");
        let err = session.run_script("key r (a);").expect_err("rejected");
        assert!(err.to_string().contains("E0401"), "{err}");
        assert!(!session.keys().is_declared("r", &[1]));
        // the two-attribute key holds, so it installs
        session.run_script("key r (a, b);").expect("declares");
        assert!(session.keys().is_declared("r", &[1, 2]));
    }

    #[test]
    fn declared_key_licenses_delta_elimination_in_queries() {
        let mut session = Session::new();
        session
            .run_script(
                "relation r (a: int, b: int);\n\
                 key r (a);\n\
                 insert(r, values (int, int) {(1, 10), (2, 20)});",
            )
            .expect("setup");
        // δ over a keyed relation is the identity; the plan drops it
        let plan = session.explain("unique(r)").expect("explains");
        assert!(
            !plan.contains("distinct"),
            "keyed input must license \u{3b4}-elimination:\n{plan}"
        );
        let out = session.query("unique(r)").expect("queries");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn parse_errors_do_not_mutate() {
        let mut session = Session::new();
        session.run_script("relation r (a: int);").expect("setup");
        let before = session.database().clone();
        assert!(session.run_script("insert(r values);").is_err());
        assert_eq!(session.database(), &before);
    }
}
