//! An interactive session: parse → lower → run as transactions.
//!
//! [`Session`] is the glue a REPL or script runner needs: it owns a
//! database state, accepts XRA source, lowers each transaction and runs it
//! with atomic commit/abort semantics, returning rendered query outputs.

use mera_core::prelude::*;
use mera_txn::exec::ExecConfig;
use mera_txn::transaction::{run_transaction, Outcome};
use mera_txn::Program;

use crate::error::{LangError, LangResult};
use crate::lower::lower_script;
use crate::parser::parse_script;

/// The result of running one transaction in a session.
#[derive(Debug, Clone, PartialEq)]
pub enum RunResult {
    /// Committed; the relations are the `?E` outputs in statement order.
    Committed(Vec<Relation>),
    /// Aborted with a rendered reason; the database is unchanged.
    Aborted(String),
}

/// A stateful XRA session.
pub struct Session {
    db: Database,
    config: ExecConfig,
}

impl Session {
    /// A fresh session with an empty database schema.
    pub fn new() -> Self {
        Session {
            db: Database::new(DatabaseSchema::new()),
            config: ExecConfig::default(),
        }
    }

    /// A session over an existing database state.
    pub fn with_database(db: Database) -> Self {
        Session {
            db,
            config: ExecConfig::default(),
        }
    }

    /// Overrides the execution configuration.
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// Selects the evaluator used by subsequent transactions and queries,
    /// keeping the other configuration knobs.
    pub fn set_engine(&mut self, engine: mera_txn::EngineKind) {
        self.config.engine = engine;
    }

    /// Overrides the engine tuning options (batch size, partitions),
    /// keeping the other configuration knobs.
    pub fn set_exec_options(&mut self, options: mera_txn::ExecOptions) {
        self.config.options = options;
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Runs a whole script: declarations extend the schema immediately;
    /// each transaction (or bare statement) runs atomically. Returns one
    /// [`RunResult`] per transaction.
    ///
    /// A semantic or parse error anywhere in the script aborts the whole
    /// call *before* any transaction runs only for parse errors;
    /// declarations and transactions are otherwise applied in order (a
    /// failing transaction aborts itself, not the script).
    pub fn run_script(&mut self, src: &str) -> LangResult<Vec<RunResult>> {
        let script = parse_script(src)?;
        // declarations must be visible to lowering: lower against the
        // session's schema extended with the script's declarations
        let lowered = lower_script(&script, self.db.schema())?;
        for decl in lowered.declarations {
            self.db.add_relation(decl)?;
        }
        let mut results = Vec::with_capacity(lowered.transactions.len());
        for program in &lowered.transactions {
            results.push(self.run_program(program));
        }
        Ok(results)
    }

    /// Statically checks a script without executing anything: parses,
    /// lowers, and runs the `mera-analyze` passes over every transaction.
    ///
    /// Returns one diagnostic list per transaction (same order as
    /// [`run_script`](Self::run_script) results). Neither the database
    /// state nor the schema is touched — declarations in the script are
    /// only *visible* to the check, not installed.
    ///
    /// Relation cardinalities are treated as unknown: a check is a claim
    /// about the script against *any* database state matching the schema,
    /// so only structurally provable facts (e.g. `select[false]`, literal
    /// `values`) feed the emptiness pass.
    pub fn check_script(&self, src: &str) -> LangResult<Vec<Vec<mera_analyze::Diagnostic>>> {
        let script = parse_script(src)?;
        let lowered = lower_script(&script, self.db.schema())?;
        let mut schema = self.db.schema().clone();
        for decl in lowered.declarations {
            schema.add(decl).map_err(LangError::Semantic)?;
        }
        let cards = mera_analyze::CardEnv::new();
        Ok(lowered
            .transactions
            .iter()
            .map(|program| {
                mera_analyze::analyze_program(
                    program.statements.iter().map(|s| s.analyzer_view()),
                    &schema,
                    &cards,
                )
            })
            .collect())
    }

    /// Runs one already-lowered program as a transaction.
    pub fn run_program(&mut self, program: &Program) -> RunResult {
        let (next, outcome) = run_transaction(&self.db, program, self.config, None);
        self.db = next;
        match outcome {
            Outcome::Committed(outputs) => RunResult::Committed(outputs.queries),
            Outcome::Aborted(reason) => RunResult::Aborted(reason.to_string()),
        }
    }

    /// Evaluates a single relational expression (as `?E`) without touching
    /// the database — the REPL's expression mode.
    pub fn query(&self, src: &str) -> LangResult<Relation> {
        let rel = crate::parser::parse_rel(src)?;
        let lowerer = crate::lower::Lowerer::new(self.db.schema());
        let expr = lowerer.lower_rel(&rel)?;
        let state = mera_txn::WorkingState::new(self.db.clone());
        mera_txn::exec::eval_expr(&state, &expr, self.config).map_err(LangError::Semantic)
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;

    #[test]
    fn script_end_to_end() {
        let mut session = Session::new();
        let results = session
            .run_script(
                "relation beer (name: str, brewery: str, alcperc: real);\n\
                 begin\n\
                   insert(beer, values (str, str, real) {\n\
                     ('Grolsch', 'Grolsche', 5.0),\n\
                     ('GuinekenPils', 'Guineken', 5.0)\n\
                   });\n\
                 end;\n\
                 ?select[brewery = 'Guineken'](beer);",
            )
            .expect("script runs");
        assert_eq!(results.len(), 2);
        let RunResult::Committed(ref outs) = results[1] else {
            panic!("query transaction committed");
        };
        assert_eq!(outs[0].len(), 1);
        assert!(outs[0].contains(&tuple!["GuinekenPils", "Guineken", 5.0_f64]));
    }

    #[test]
    fn example_4_1_via_source() {
        let mut session = Session::new();
        session
            .run_script(
                "relation beer (name: str, brewery: str, alcperc: real);\n\
                 insert(beer, values (str, str, real) {('GuinekenPils','Guineken',5.0)});",
            )
            .expect("setup");
        let results = session
            .run_script(
                "update(beer, select[brewery = 'Guineken'](beer),\n\
                         (name, brewery, alcperc * 1.1));\n\
                 ?beer;",
            )
            .expect("update runs");
        let RunResult::Committed(ref outs) = results[1] else {
            panic!("committed");
        };
        assert!(outs[0].contains(&tuple!["GuinekenPils", "Guineken", 5.5_f64]));
    }

    #[test]
    fn aborted_transaction_leaves_database_unchanged() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int);")
            .expect("declares");
        let results = session
            .run_script(
                "begin\n\
                   insert(r, values (int) {(1)});\n\
                   ?groupby[(), AVG, %1](select[false](r));\n\
                 end;",
            )
            .expect("script parses and lowers");
        assert!(matches!(results[0], RunResult::Aborted(ref m) if m.contains("AVG")));
        // the insert rolled back
        let out = session.query("r").expect("queries");
        assert!(out.is_empty());
    }

    #[test]
    fn check_script_reports_without_executing() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int, b: str);")
            .expect("declares");
        let before = session.database().clone();
        // E0102: AVG over a provably-empty input
        let diags = session
            .check_script("?groupby[(), AVG, %1](select[false](r));")
            .expect("checks");
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0][0].code,
            mera_analyze::Code::PartialAggregateOnEmpty
        );
        // W0101: AVG over a relation of unknown cardinality — a warning,
        // so the program would still be admitted for execution
        let diags = session
            .check_script("?groupby[(), AVG, %1](r);")
            .expect("checks");
        assert_eq!(
            diags[0][0].code,
            mera_analyze::Code::PartialAggregateMayBeUndefined
        );
        assert!(!mera_analyze::has_errors(&diags[0]));
        // declarations inside the checked script resolve but do not install
        let diags = session
            .check_script("relation s (x: int); ?s;")
            .expect("checks");
        assert!(diags.iter().all(|d| d.is_empty()));
        assert_eq!(session.database(), &before);
    }

    #[test]
    fn statically_bad_transaction_aborts_with_diagnostic() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int);")
            .expect("declares");
        // inserting strings into an int relation: lowering is structural
        // and lets it through; the analyzer rejects it (E0004) before the
        // engine would have
        let results = session
            .run_script("insert(r, values (str) {('x')});")
            .expect("parses and lowers");
        let RunResult::Aborted(ref msg) = results[0] else {
            panic!("expected abort, got {:?}", results[0]);
        };
        assert!(msg.contains("static analysis rejected"), "{msg}");
        assert!(msg.contains("E0004"), "{msg}");
    }

    #[test]
    fn query_mode_is_side_effect_free() {
        let mut session = Session::new();
        session
            .run_script("relation r (a: int); insert(r, values (int) {(1),(1)});")
            .expect("setup");
        let before = session.database().clone();
        let out = session.query("unique(r)").expect("queries");
        assert_eq!(out.len(), 1);
        assert_eq!(session.database(), &before);
    }

    #[test]
    fn parse_errors_do_not_mutate() {
        let mut session = Session::new();
        session.run_script("relation r (a: int);").expect("setup");
        let before = session.database().clone();
        assert!(session.run_script("insert(r values);").is_err());
        assert_eq!(session.database(), &before);
    }
}
