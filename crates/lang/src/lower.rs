//! Lowering: syntactic AST → typed algebra and statements.
//!
//! The main job besides shape translation is *name resolution*: the paper
//! addresses attributes by prefixed index (`%i`), with names as a
//! notational convenience. The lowerer resolves bare attribute names
//! against the schema of the relevant input expression (for joins, the
//! concatenated schema `E ⊕ E'`), rejecting unknown names; `%i` passes
//! through unchanged.

use std::collections::HashMap;
use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{Aggregate, ArithOp, CmpOp, RelExpr, ScalarExpr, SchemaProvider};
use mera_txn::{Program, Statement};

use crate::ast::*;
use crate::error::{LangError, LangResult};

/// Lowers syntax to typed algebra, tracking program temporaries so later
/// statements can reference earlier assignments.
pub struct Lowerer<'a> {
    provider: &'a dyn DynProvider,
    temps: HashMap<String, SchemaRef>,
}

trait DynProvider {
    fn schema_of(&self, name: &str) -> CoreResult<SchemaRef>;
}

impl<P: SchemaProvider> DynProvider for P {
    fn schema_of(&self, name: &str) -> CoreResult<SchemaRef> {
        self.relation_schema(name)
    }
}

impl SchemaProvider for Lowerer<'_> {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        if let Some(s) = self.temps.get(name) {
            return Ok(Arc::clone(s));
        }
        self.provider.schema_of(name)
    }
}

impl<'a> Lowerer<'a> {
    /// Builds a lowerer over a schema provider (typically the database
    /// schema).
    pub fn new<P: SchemaProvider>(provider: &'a P) -> Self {
        Lowerer {
            provider,
            temps: HashMap::new(),
        }
    }

    /// Lowers one relational expression.
    pub fn lower_rel(&self, rel: &SRel) -> LangResult<RelExpr> {
        match rel {
            SRel::Name(name) => {
                // validate the name resolves at all, for a good error here
                self.relation_schema(name)?;
                Ok(RelExpr::scan(name.clone()))
            }
            SRel::Select { input, predicate } => {
                let input = self.lower_rel(input)?;
                let schema = input.schema(self)?;
                let predicate = self.lower_scalar(predicate, &schema)?;
                Ok(input.select(predicate))
            }
            SRel::Project { input, exprs } => {
                let input = self.lower_rel(input)?;
                let schema = input.schema(self)?;
                let lowered: LangResult<Vec<ScalarExpr>> = exprs
                    .iter()
                    .map(|e| self.lower_scalar(e, &schema))
                    .collect();
                let lowered = lowered?;
                // all-attribute lists become the plain projection π_a
                let plain: Option<Vec<usize>> = lowered
                    .iter()
                    .map(|e| match e {
                        ScalarExpr::Attr(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                match plain {
                    Some(attrs) => Ok(RelExpr::Project {
                        input: Arc::new(input),
                        attrs: AttrList::new(attrs)?,
                    }),
                    None => Ok(input.ext_project(lowered)),
                }
            }
            SRel::Join {
                left,
                right,
                predicate,
            } => {
                let left = self.lower_rel(left)?;
                let right = self.lower_rel(right)?;
                let joined = left.schema(self)?.concat(right.schema(self)?.as_ref());
                let predicate = self.lower_scalar(predicate, &joined)?;
                Ok(left.join(right, predicate))
            }
            SRel::Union(l, r) => Ok(self.lower_rel(l)?.union(self.lower_rel(r)?)),
            SRel::Minus(l, r) => Ok(self.lower_rel(l)?.difference(self.lower_rel(r)?)),
            SRel::Intersect(l, r) => Ok(self.lower_rel(l)?.intersect(self.lower_rel(r)?)),
            SRel::Times(l, r) => Ok(self.lower_rel(l)?.product(self.lower_rel(r)?)),
            SRel::Unique(input) => Ok(self.lower_rel(input)?.distinct()),
            SRel::Closure(input) => Ok(self.lower_rel(input)?.closure()),
            SRel::GroupBy {
                input,
                keys,
                agg,
                attr,
            } => {
                let input = self.lower_rel(input)?;
                let schema = input.schema(self)?;
                let keys: LangResult<Vec<usize>> =
                    keys.iter().map(|k| self.resolve_attr(k, &schema)).collect();
                let attr = self.resolve_attr(attr, &schema)?;
                let agg = Aggregate::parse(agg).ok_or_else(|| {
                    LangError::Semantic(CoreError::TypeError(format!(
                        "unknown aggregate function '{agg}'"
                    )))
                })?;
                Ok(input.group_by(&keys?, agg, attr))
            }
            SRel::Values { types, rows } => {
                let schema = Arc::new(Schema::anon(types));
                let tuples: LangResult<Vec<Tuple>> = rows
                    .iter()
                    .map(|row| {
                        let vals: LangResult<Vec<Value>> = row.iter().map(lower_literal).collect();
                        Ok(Tuple::new(vals?))
                    })
                    .collect();
                let rel = Relation::from_tuples(schema, tuples?)?;
                Ok(RelExpr::values(rel))
            }
        }
    }

    /// Lowers one scalar expression against an input schema.
    pub fn lower_scalar(&self, e: &SScalar, schema: &Schema) -> LangResult<ScalarExpr> {
        Ok(match e {
            SScalar::AttrIndex(i) => {
                schema.attr(*i)?; // range check with a positioned error
                ScalarExpr::Attr(*i)
            }
            SScalar::AttrName(name) => ScalarExpr::Attr(schema.index_of(name)?),
            SScalar::Int(v) => ScalarExpr::int(*v),
            SScalar::Real(v) => ScalarExpr::Literal(Value::real(*v).map_err(LangError::Semantic)?),
            SScalar::Str(s) => ScalarExpr::str(s.clone()),
            SScalar::Bool(b) => ScalarExpr::bool(*b),
            SScalar::Not(inner) => self.lower_scalar(inner, schema)?.not(),
            SScalar::Neg(inner) => {
                // fold unary minus into numeric literals so `-1` lowers to
                // the literal −1 (keeps the printer/parser round trip
                // exact)
                match self.lower_scalar(inner, schema)? {
                    ScalarExpr::Literal(Value::Int(v)) => ScalarExpr::Literal(Value::Int(
                        v.checked_neg().ok_or(CoreError::Overflow("negation"))?,
                    )),
                    ScalarExpr::Literal(Value::Real(r)) => {
                        ScalarExpr::Literal(Value::real(-r.get()).map_err(LangError::Semantic)?)
                    }
                    other => ScalarExpr::Neg(Arc::new(other)),
                }
            }
            SScalar::Binary(op, l, r) => {
                let l = self.lower_scalar(l, schema)?;
                let r = self.lower_scalar(r, schema)?;
                match op {
                    SBinOp::Add => l.arith(ArithOp::Add, r),
                    SBinOp::Sub => l.arith(ArithOp::Sub, r),
                    SBinOp::Mul => l.arith(ArithOp::Mul, r),
                    SBinOp::Div => l.arith(ArithOp::Div, r),
                    SBinOp::Mod => l.arith(ArithOp::Mod, r),
                    SBinOp::Eq => l.cmp(CmpOp::Eq, r),
                    SBinOp::Ne => l.cmp(CmpOp::Ne, r),
                    SBinOp::Lt => l.cmp(CmpOp::Lt, r),
                    SBinOp::Le => l.cmp(CmpOp::Le, r),
                    SBinOp::Gt => l.cmp(CmpOp::Gt, r),
                    SBinOp::Ge => l.cmp(CmpOp::Ge, r),
                    SBinOp::And => l.and(r),
                    SBinOp::Or => l.or(r),
                    SBinOp::Concat => l.concat_with(r),
                }
            }
        })
    }

    fn resolve_attr(&self, e: &SScalar, schema: &Schema) -> LangResult<usize> {
        match e {
            SScalar::AttrIndex(i) => {
                schema.attr(*i)?;
                Ok(*i)
            }
            SScalar::AttrName(name) => Ok(schema.index_of(name)?),
            other => Err(LangError::Semantic(CoreError::TypeError(format!(
                "expected an attribute reference, found expression {other:?}"
            )))),
        }
    }

    /// Lowers one statement; assignments register the temporary's schema
    /// for later statements.
    pub fn lower_stmt(&mut self, stmt: &SStmt) -> LangResult<Statement> {
        Ok(match stmt {
            SStmt::Insert { relation, expr } => {
                let expr = self.lower_rel(expr)?;
                Statement::insert(relation.clone(), expr)
            }
            SStmt::Delete { relation, expr } => {
                let expr = self.lower_rel(expr)?;
                Statement::delete(relation.clone(), expr)
            }
            SStmt::Update {
                relation,
                expr,
                exprs,
            } => {
                let target_schema = self.relation_schema(relation)?;
                let lowered_expr = self.lower_rel(expr)?;
                let lowered: LangResult<Vec<ScalarExpr>> = exprs
                    .iter()
                    .map(|e| self.lower_scalar(e, &target_schema))
                    .collect();
                Statement::update(relation.clone(), lowered_expr, lowered?)
            }
            SStmt::Assign { name, expr } => {
                let lowered = self.lower_rel(expr)?;
                let schema = lowered.schema(self)?;
                self.temps.insert(name.clone(), schema);
                Statement::assign(name.clone(), lowered)
            }
            SStmt::Query { expr } => Statement::query(self.lower_rel(expr)?),
        })
    }

    /// Lowers a whole program.
    pub fn lower_program(&mut self, program: &SProgram) -> LangResult<Program> {
        let mut out = Program::new();
        for stmt in &program.statements {
            out = out.then(self.lower_stmt(stmt)?);
        }
        Ok(out)
    }
}

fn lower_literal(l: &SLiteral) -> LangResult<Value> {
    Ok(match l {
        SLiteral::Int(v) => Value::Int(*v),
        SLiteral::Real(v) => Value::real(*v).map_err(LangError::Semantic)?,
        SLiteral::Str(s) => Value::str(s.as_str()),
        SLiteral::Bool(b) => Value::Bool(*b),
    })
}

/// A lowered materialized-view declaration.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// The view's name.
    pub name: String,
    /// The lowered defining expression.
    pub expr: RelExpr,
}

/// A lowered key-constraint declaration: attribute names resolved to
/// 1-based indexes against the constrained relation's schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyDef {
    /// The constrained relation.
    pub relation: String,
    /// The key attributes as 1-based indexes.
    pub attrs: Vec<usize>,
}

/// A lowered script: schema declarations, materialized-view declarations,
/// key constraints, plus one program per transaction (bare statements
/// become single-statement transactions, matching the paper's rule that
/// transactions are "the best level for database access in practice").
#[derive(Debug, Clone, Default)]
pub struct LoweredScript {
    /// Declared relation schemas, in source order.
    pub declarations: Vec<RelationSchema>,
    /// Declared materialized views, in source order.
    pub views: Vec<ViewDef>,
    /// Declared key constraints, in source order.
    pub keys: Vec<KeyDef>,
    /// One program per transaction.
    pub transactions: Vec<Program>,
}

/// Lowers a script. Declarations are collected into a database schema that
/// also resolves the transactions' relation names; `base` provides any
/// pre-existing relations.
pub fn lower_script<P: SchemaProvider>(script: &SScript, base: &P) -> LangResult<LoweredScript> {
    let mut declared = DatabaseSchema::new();
    let mut out = LoweredScript::default();
    for item in &script.items {
        match item {
            SItem::RelationDecl { name, attrs } => {
                let schema = Schema::new(
                    attrs
                        .iter()
                        .map(|(n, t)| Attribute::named(n.clone(), *t))
                        .collect(),
                );
                declared.add(RelationSchema::new(name.clone(), schema.clone()))?;
                out.declarations
                    .push(RelationSchema::new(name.clone(), schema));
            }
            SItem::ViewDecl { name, expr } => {
                let combined = Combined {
                    declared: &declared,
                    base,
                };
                let lowerer = Lowerer::new(&combined);
                let lowered = lowerer.lower_rel(expr)?;
                // the view name resolves like a relation for the rest of
                // the script (duplicates rejected exactly like relations)
                let schema = lowered.schema(&combined)?;
                declared.add(RelationSchema::new(name.clone(), schema.as_ref().clone()))?;
                out.views.push(ViewDef {
                    name: name.clone(),
                    expr: lowered,
                });
            }
            SItem::KeyDecl { relation, attrs } => {
                let combined = Combined {
                    declared: &declared,
                    base,
                };
                let schema = combined.relation_schema(relation)?;
                let lowerer = Lowerer::new(&combined);
                let resolved: LangResult<Vec<usize>> = attrs
                    .iter()
                    .map(|a| lowerer.resolve_attr(a, &schema))
                    .collect();
                out.keys.push(KeyDef {
                    relation: relation.clone(),
                    attrs: resolved?,
                });
            }
            SItem::Transaction(p) => {
                let combined = Combined {
                    declared: &declared,
                    base,
                };
                let mut lowerer = Lowerer::new(&combined);
                out.transactions.push(lowerer.lower_program(p)?);
            }
            SItem::Statement(s) => {
                let combined = Combined {
                    declared: &declared,
                    base,
                };
                let mut lowerer = Lowerer::new(&combined);
                let stmt = lowerer.lower_stmt(s)?;
                out.transactions.push(Program::single(stmt));
            }
        }
    }
    Ok(out)
}

struct Combined<'a, P: SchemaProvider> {
    declared: &'a DatabaseSchema,
    base: &'a P,
}

impl<P: SchemaProvider> SchemaProvider for Combined<'_, P> {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        if self.declared.contains(name) {
            return self.declared.relation_schema(name);
        }
        self.base.relation_schema(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rel, parse_script};
    use mera_expr::EmptyProvider;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh")
    }

    fn lower(src: &str) -> LangResult<RelExpr> {
        let cat = catalog();
        let lowerer = Lowerer::new(&cat);
        lowerer.lower_rel(&parse_rel(src).expect("parses"))
    }

    #[test]
    fn example_3_1_lowers_with_name_resolution() {
        // `country` resolves against the joined schema (attribute 6)
        let e = lower("project[%1](select[country = 'NL'](join[brewery = %4](beer, brewery)))")
            .expect("lowers");
        let want = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .select(ScalarExpr::attr(6).eq(ScalarExpr::str("NL")))
            .project(&[1]);
        assert_eq!(e, want);
    }

    #[test]
    fn name_resolution_prefers_first_match_across_join() {
        // both relations have `name`; a bare reference takes the first
        let e = lower("select[name = 'x'](join[%2 = %4](beer, brewery))").expect("lowers");
        let RelExpr::Select { predicate, .. } = e else {
            panic!("expected select");
        };
        assert_eq!(predicate, ScalarExpr::attr(1).eq(ScalarExpr::str("x")));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(
            lower("select[colour = 'red'](beer)"),
            Err(LangError::Semantic(CoreError::UnknownAttribute(_)))
        ));
        assert!(matches!(
            lower("ales"),
            Err(LangError::Semantic(CoreError::UnknownRelation(_)))
        ));
        assert!(matches!(
            lower("select[%9 = 1](beer)"),
            Err(LangError::Semantic(CoreError::AttrIndexOutOfRange { .. }))
        ));
    }

    #[test]
    fn projection_with_names_becomes_plain_projection() {
        let e = lower("project[alcperc, name](beer)").expect("lowers");
        assert!(matches!(e, RelExpr::Project { ref attrs, .. } if attrs.indexes() == [3, 1]));
        // arithmetic forces the extended projection
        let e = lower("project[name, alcperc * 1.1](beer)").expect("lowers");
        assert!(matches!(e, RelExpr::ExtProject { ref exprs, .. } if exprs.len() == 2));
    }

    #[test]
    fn groupby_lowers_names_and_aggregate() {
        let e = lower("groupby[(brewery), avg, alcperc](beer)").expect("lowers");
        let want = RelExpr::scan("beer").group_by(&[2], Aggregate::Avg, 3);
        assert_eq!(e, want);
        // statistical aggregates are accepted too
        assert!(lower("groupby[(brewery), median, alcperc](beer)").is_ok());
        assert!(lower("groupby[(brewery), stddev, alcperc](beer)").is_ok());
        assert!(matches!(
            lower("groupby[(brewery), quartile, alcperc](beer)"),
            Err(LangError::Semantic(CoreError::TypeError(_)))
        ));
    }

    #[test]
    fn values_literal_lowers_with_duplicates() {
        let cat = catalog();
        let lowerer = Lowerer::new(&cat);
        let e = lowerer
            .lower_rel(&parse_rel("values (int, str) {(1,'a'), (1,'a')}").expect("parses"))
            .expect("lowers");
        let RelExpr::Values(rel) = e else {
            panic!("expected values");
        };
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.distinct_len(), 1);
        // type mismatch inside a row is a semantic error
        let bad = lowerer.lower_rel(&parse_rel("values (int) {('x')}").expect("parses"));
        assert!(bad.is_err());
    }

    #[test]
    fn program_lowering_tracks_temporaries() {
        let cat = catalog();
        let mut lowerer = Lowerer::new(&cat);
        let p = parse_program(
            "dutch = select[country = 'NL'](brewery); \
             ?project[name](join[%2 = %4](beer, dutch))",
        )
        .expect("parses");
        let lowered = lowerer.lower_program(&p).expect("lowers");
        assert_eq!(lowered.len(), 2);
        // the second statement resolved `name` against beer ⊕ dutch
        let Statement::Query { expr } = &lowered.statements[1] else {
            panic!("expected query");
        };
        assert!(expr.to_string().contains("dutch"));
    }

    #[test]
    fn update_lowering_resolves_against_target_schema() {
        let cat = catalog();
        let mut lowerer = Lowerer::new(&cat);
        let p = parse_program(
            "update(beer, select[brewery = 'Guineken'](beer), (name, brewery, alcperc * 1.1))",
        )
        .expect("parses");
        let lowered = lowerer.lower_program(&p).expect("lowers");
        let Statement::Update { exprs, .. } = &lowered.statements[0] else {
            panic!("expected update");
        };
        assert_eq!(exprs.len(), 3);
        assert_eq!(exprs[2], ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)));
    }

    #[test]
    fn key_declaration_lowers_with_name_resolution() {
        let script = parse_script(
            "relation r (a: int, b: str);\n\
             key r (a);\n\
             key r (%2, a);",
        )
        .expect("parses");
        let lowered = lower_script(&script, &EmptyProvider).expect("lowers");
        assert_eq!(
            lowered.keys,
            vec![
                KeyDef {
                    relation: "r".into(),
                    attrs: vec![1],
                },
                KeyDef {
                    relation: "r".into(),
                    attrs: vec![2, 1],
                },
            ]
        );
        // unknown attribute and unknown relation are rejected
        let script = parse_script("relation r (a: int);\nkey r (z);").expect("parses");
        assert!(lower_script(&script, &EmptyProvider).is_err());
        let script = parse_script("key s (a);").expect("parses");
        assert!(matches!(
            lower_script(&script, &EmptyProvider),
            Err(LangError::Semantic(CoreError::UnknownRelation(_)))
        ));
    }

    #[test]
    fn script_lowering_declares_then_uses() {
        let script = parse_script(
            "relation r (a: int);\n\
             begin insert(r, values (int) {(1)}); ?r; end;",
        )
        .expect("parses");
        let lowered = lower_script(&script, &EmptyProvider).expect("lowers");
        assert_eq!(lowered.declarations.len(), 1);
        assert_eq!(lowered.transactions.len(), 1);
        assert_eq!(lowered.transactions[0].len(), 2);
        // duplicate declaration is rejected
        let script = parse_script("relation r (a: int); relation r (b: str);").expect("parses");
        assert!(lower_script(&script, &EmptyProvider).is_err());
    }
}
