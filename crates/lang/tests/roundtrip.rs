//! Round-trip property: `lower(parse(print(e))) == e` for every
//! expressible algebra tree, and execution of parsed programs matches
//! execution of hand-built ones.

use mera_core::prelude::*;
use mera_expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use mera_lang::{parse_rel, rel_to_xra, Lowerer};
use proptest::prelude::*;

fn catalog() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("a", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
}

/// Builds one of a family of predicates over r's schema by index.
fn pred(ix: u8, c: i64) -> ScalarExpr {
    match ix % 6 {
        0 => ScalarExpr::attr(1).eq(ScalarExpr::int(c)),
        1 => ScalarExpr::attr(2).eq(ScalarExpr::str("it's\n\tµ")),
        2 => ScalarExpr::attr(1)
            .add(ScalarExpr::int(c))
            .cmp(CmpOp::Lt, ScalarExpr::int(7)),
        3 => ScalarExpr::attr(1)
            .cmp(CmpOp::Ge, ScalarExpr::int(c))
            .and(ScalarExpr::attr(2).eq(ScalarExpr::str("x")).not()),
        4 => ScalarExpr::bool(true).or(ScalarExpr::attr(1).eq(ScalarExpr::int(c))),
        _ => ScalarExpr::Neg(std::sync::Arc::new(ScalarExpr::attr(1))).eq(ScalarExpr::int(-c)),
    }
}

/// Builds an algebra tree from flat selectors (mirrors the optimizer's
/// test generator; nested proptest combinators overflow debug stacks).
fn build(shape: u8, p_ix: u8, q_ix: u8, c: i64) -> RelExpr {
    let r = RelExpr::scan("r");
    match shape % 10 {
        0 => r,
        1 => r.select(pred(p_ix, c)),
        2 => r
            .select(pred(p_ix, c))
            .union(RelExpr::scan("r").select(pred(q_ix, c))),
        3 => r.difference(RelExpr::scan("r")).distinct(),
        4 => r.intersect(RelExpr::scan("r")).project(&[2, 1]),
        5 => r.product(RelExpr::scan("s")),
        6 => r.join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        ),
        7 => r.ext_project(vec![
            ScalarExpr::attr(1).mul(ScalarExpr::int(c.max(1))),
            ScalarExpr::attr(2).concat_with(ScalarExpr::str("!")),
        ]),
        8 => r.group_by(&[2], Aggregate::Cnt, 1),
        _ => r.select(pred(p_ix, c)).group_by(&[], Aggregate::Sum, 1),
    }
}

proptest! {
    #[test]
    fn print_parse_lower_is_identity(
        shape in 0u8..10,
        p_ix in 0u8..6,
        q_ix in 0u8..6,
        c in -3i64..7,
    ) {
        let e = build(shape, p_ix, q_ix, c);
        let src = rel_to_xra(&e);
        let parsed = parse_rel(&src)
            .unwrap_or_else(|err| panic!("printer produced unparseable source {src:?}: {err}"));
        let cat = catalog();
        let lowerer = Lowerer::new(&cat);
        let lowered = lowerer
            .lower_rel(&parsed)
            .unwrap_or_else(|err| panic!("round-trip failed to lower {src:?}: {err}"));
        prop_assert_eq!(lowered, e, "round-trip changed the tree for {}", src);
    }

    /// Arbitrary (interned) string literals survive print → parse → lower,
    /// including quotes, spaces and non-ASCII content.
    #[test]
    fn string_literal_roundtrip(ix in proptest::collection::vec(0usize..10, 0..10)) {
        let alphabet = ['a', 'z', '0', ' ', '\'', 'é', 'µ', '_', '!', 'Q'];
        let s: String = ix.into_iter().map(|i| alphabet[i]).collect();
        let e = RelExpr::scan("r").select(ScalarExpr::attr(2).eq(ScalarExpr::str(&s)));
        let src = rel_to_xra(&e);
        let parsed = parse_rel(&src)
            .unwrap_or_else(|err| panic!("printer produced unparseable source {src:?}: {err}"));
        let cat = catalog();
        let lowered = Lowerer::new(&cat)
            .lower_rel(&parsed)
            .unwrap_or_else(|err| panic!("round-trip failed to lower {src:?}: {err}"));
        prop_assert_eq!(lowered, e, "round-trip changed string literal for {}", src);
    }

    /// A `values` literal survives the round trip with duplicates intact.
    #[test]
    fn values_roundtrip(rows in proptest::collection::vec((0i64..4, 0i64..3), 0..6)) {
        let schema = std::sync::Arc::new(Schema::anon(&[DataType::Int, DataType::Int]));
        let rel = Relation::from_tuples(
            schema,
            rows.iter().map(|&(a, b)| mera_core::tuple![a, b]),
        )
        .expect("typed");
        let e = RelExpr::values(rel.clone());
        let src = rel_to_xra(&e);
        let parsed = parse_rel(&src).expect("parses");
        let cat = catalog();
        let lowered = Lowerer::new(&cat).lower_rel(&parsed).expect("lowers");
        let RelExpr::Values(back) = lowered else {
            panic!("expected values literal back");
        };
        prop_assert_eq!(back.as_ref(), &rel);
    }
}

/// Statements round-trip through the printer and parser too: for each
/// statement shape, `lower(parse(print(s)))` reproduces the original.
#[test]
fn statement_roundtrip() {
    use mera_lang::{parse_program, program_to_xra};
    use mera_txn::{Program, Statement};

    let rows = Relation::from_tuples(
        std::sync::Arc::new(Schema::named(&[
            ("a", DataType::Int),
            ("tag", DataType::Str),
        ])),
        vec![mera_core::tuple![1_i64, "x"], mera_core::tuple![1_i64, "x"]],
    )
    .expect("typed");
    let program = Program::new()
        .then(Statement::insert("r", RelExpr::values(rows)))
        .then(Statement::delete(
            "r",
            RelExpr::scan("r").select(ScalarExpr::attr(2).eq(ScalarExpr::str("it's"))),
        ))
        .then(Statement::update(
            "r",
            RelExpr::scan("r"),
            vec![
                ScalarExpr::attr(1).mul(ScalarExpr::int(2)),
                ScalarExpr::attr(2),
            ],
        ))
        .then(Statement::assign(
            "t",
            RelExpr::scan("r").group_by(&[2], Aggregate::Cnt, 1),
        ))
        .then(Statement::query(RelExpr::scan("t").distinct().closure()));

    let src = program_to_xra(&program);
    let parsed = parse_program(&src).unwrap_or_else(|e| panic!("unparseable {src:?}: {e}"));
    let cat = catalog();
    let mut lowerer = Lowerer::new(&cat);
    // note: lowering `t = …` registers the temporary so `?t` resolves
    let lowered = lowerer
        .lower_program(&parsed)
        .unwrap_or_else(|e| panic!("unlowerable {src:?}: {e}"));
    assert_eq!(lowered, program, "round trip changed the program:\n{src}");
}
