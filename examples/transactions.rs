//! Programs and transactions (paper §4): Example 4.1's update, temporary
//! relations, atomic abort, and redo-log recovery.
//!
//! Run with `cargo run --example transactions`.

use mera::expr::{Aggregate, RelExpr, ScalarExpr};
use mera::txn::{Program, Statement, TransactionManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mgr = TransactionManager::new(mera::beer_schema());

    // ── load the fixture through insert statements ─────────────────────
    let fixture = mera::beer_database();
    let load = Program::new()
        .then(Statement::insert(
            "beer",
            RelExpr::values(fixture.relation("beer")?.clone()),
        ))
        .then(Statement::insert(
            "brewery",
            RelExpr::values(fixture.relation("brewery")?.clone()),
        ));
    let (outcome, transition) = mgr.execute(&load)?;
    assert!(outcome.is_committed());
    println!(
        "t={}: loaded {} beers, {} breweries (single-step transition: {})",
        mgr.time(),
        mgr.snapshot().relation("beer")?.len(),
        mgr.snapshot().relation("brewery")?.len(),
        transition.is_single_step(),
    );

    // ── Example 4.1: Guineken raises alcohol percentages by 10% ───────
    // (our fixture spells it Heineken; the statement is the paper's)
    let guineken_update = Program::single(Statement::update(
        "beer",
        RelExpr::scan("beer").select(ScalarExpr::attr(2).eq(ScalarExpr::str("Heineken"))),
        vec![
            ScalarExpr::attr(1),
            ScalarExpr::attr(2),
            ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)),
        ],
    ));
    mgr.execute(&guineken_update)?;
    println!(
        "\nafter the Example 4.1 update:\n{}",
        mgr.snapshot().relation("beer")?
    );

    // ── a multi-statement transaction with a temporary relation ───────
    let report = Program::new()
        .then(Statement::assign(
            "dutch",
            RelExpr::scan("brewery").select(ScalarExpr::attr(3).eq(ScalarExpr::str("NL"))),
        ))
        .then(Statement::query(
            RelExpr::scan("beer")
                .join(
                    RelExpr::scan("dutch"),
                    ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
                )
                .group_by(&[4], Aggregate::Max, 3),
        ));
    let (outcome, _) = mgr.execute(&report)?;
    let outputs = outcome.outputs().expect("committed");
    println!(
        "\nstrongest beer per Dutch brewery (via a temporary):\n{}",
        outputs.queries[0]
    );
    // temporaries never survive the transaction
    assert!(mgr.snapshot().relation("dutch").is_err());

    // ── atomicity: an error mid-transaction rolls everything back ─────
    let before = mgr.snapshot();
    let doomed = Program::new()
        .then(Statement::delete("beer", RelExpr::scan("beer"))) // wipe...
        .then(Statement::query(
            // ...then fail: AVG over the now-empty relation
            RelExpr::scan("beer").group_by(&[], Aggregate::Avg, 3),
        ));
    let (outcome, transition) = mgr.execute(&doomed)?;
    println!("\ndoomed transaction: {:?}", outcome);
    assert!(!outcome.is_committed());
    assert!(transition.is_identity());
    assert_eq!(
        mgr.snapshot().relation("beer")?,
        before.relation("beer")?,
        "the delete was rolled back"
    );
    println!("database unchanged after abort ✓ (T(D) = D, the atomicity property)");

    // ── durability: replay the redo log from scratch ──────────────────
    let log = mgr.log();
    println!(
        "\nredo log has {} committed transaction(s):\n{}",
        log.len(),
        log.to_text()
    );
    let recovered = TransactionManager::recover(mera::beer_schema(), &log)?;
    assert_eq!(
        recovered.snapshot().relation("beer")?,
        mgr.snapshot().relation("beer")?
    );
    println!("recovered state matches the live state ✓");
    Ok(())
}
