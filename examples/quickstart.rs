//! Quickstart: the multi-set algebra on the paper's beer database.
//!
//! Reproduces Example 3.1 — "the multi-set of all names of beers brewn in
//! the Netherlands" — three ways: through the algebra builder API, through
//! the optimizer + physical engine, and through the XRA textual language.
//!
//! Run with `cargo run --example quickstart`.

use mera::core::prelude::*;
use mera::expr::{RelExpr, ScalarExpr};
use mera::lang::Session;
use mera::opt::Optimizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── the data ──────────────────────────────────────────────────────
    let db = mera::beer_database();
    println!("beer relation:\n{}\n", db.relation("beer")?);
    println!("brewery relation:\n{}\n", db.relation("brewery")?);

    // ── Example 3.1, built with the algebra API ───────────────────────
    // π_(%1) σ_(%6='NL') (beer ⋈_(%2=%4) brewery)
    let dutch_beers = RelExpr::scan("beer")
        .join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        )
        .select(ScalarExpr::attr(6).eq(ScalarExpr::str("NL")))
        .project(&[1]);
    println!("algebra: {dutch_beers}");

    // the reference evaluator is the paper's definitions, executable
    let result = mera::eval::eval(&dutch_beers, &db)?;
    println!("\nDutch beer names (duplicates preserved!):\n{result}\n");
    assert_eq!(result.multiplicity(&tuple!["Bock"]), 2); // two brewers brew a Bock
    assert_eq!(result.len(), 5);

    // ── the same query through the optimizer and physical engine ──────
    let optimized = Optimizer::standard().optimize(&dutch_beers, db.schema())?;
    println!("optimized plan: {}", optimized.expr);
    println!(
        "rules applied: {:?} in {} pass(es)",
        optimized.applications, optimized.passes
    );
    let physical = mera::eval::execute(&optimized.expr, &db)?;
    assert_eq!(physical, result);
    println!("physical engine agrees with the reference evaluator ✓\n");

    // ── and through the XRA textual language ──────────────────────────
    let session = Session::with_database(db);
    let via_lang =
        session.query("project[%1](select[country = 'NL'](join[%2 = %4](beer, brewery)))")?;
    assert_eq!(via_lang, result);
    println!("XRA front-end agrees too ✓");

    // bag semantics in one line: projection never loses tuples
    let percentages = session.query("project[alcperc](beer)")?;
    println!(
        "\nπ(alcperc): {} tuples, {} distinct — bag projection keeps duplicates",
        percentages.len(),
        percentages.distinct_len()
    );
    Ok(())
}
