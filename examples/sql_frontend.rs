//! The SQL front-end: the paper's SQL forms of Examples 3.2 and 4.1
//! executed against the multi-set algebra.
//!
//! Run with `cargo run --example sql_frontend`.

use mera::core::prelude::*;
use mera::sql::run_sql;
use mera::txn::{EngineKind, ExecConfig, TransactionManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // every statement runs through the unified batched engine; swap in
    // `EngineKind::Parallel` to fan the same plans out across partitions
    let mgr = TransactionManager::with_config(
        mera::beer_schema(),
        ExecConfig::with_engine(EngineKind::Physical),
    );

    run_sql(
        &mgr,
        "INSERT INTO beer VALUES \
         ('Grolsch',  'Grolsche', 5.0), \
         ('Heineken', 'Heineken', 5.0), \
         ('Amstel',   'Heineken', 5.1), \
         ('Guinness', 'StJames',  4.2), \
         ('Bock',     'Grolsche', 6.5), \
         ('Bock',     'Heineken', 6.3)",
    )?;
    run_sql(
        &mgr,
        "INSERT INTO brewery VALUES \
         ('Grolsche', 'Enschede',  'NL'), \
         ('Heineken', 'Amsterdam', 'NL'), \
         ('StJames',  'Dublin',    'IE')",
    )?;

    // SQL keeps duplicates unless DISTINCT is written — bag semantics
    let names = run_sql(&mgr, "SELECT name FROM beer")?.expect("query");
    println!("SELECT name FROM beer:\n{names}\n");
    assert_eq!(names.multiplicity(&tuple!["Bock"]), 2);

    let distinct = run_sql(&mgr, "SELECT DISTINCT name FROM beer")?.expect("query");
    println!("SELECT DISTINCT name FROM beer:\n{distinct}\n");
    assert_eq!(distinct.multiplicity(&tuple!["Bock"]), 1);

    // ── the paper's Example 3.2 SQL, verbatim ──────────────────────────
    let avg = run_sql(
        &mgr,
        "SELECT country, AVG(alcperc) \
         FROM beer, brewery \
         WHERE beer.brewery = brewery.name \
         GROUP BY country",
    )?
    .expect("query");
    println!("Example 3.2 (AVG per country):\n{avg}\n");
    let nl = (5.0 + 5.0 + 5.1 + 6.5 + 6.3) / 5.0;
    assert_eq!(avg.multiplicity(&tuple!["NL", nl]), 1);

    // HAVING over the aggregate
    let prolific = run_sql(
        &mgr,
        "SELECT brewery, COUNT(*) FROM beer GROUP BY brewery HAVING COUNT(*) > 1",
    )?
    .expect("query");
    println!("breweries with more than one beer:\n{prolific}\n");

    // ── the paper's Example 4.1 SQL, verbatim (modulo the brewer) ─────
    run_sql(
        &mgr,
        "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Heineken'",
    )?;
    let after = run_sql(
        &mgr,
        "SELECT name, alcperc FROM beer WHERE brewery = 'Heineken'",
    )?
    .expect("query");
    println!("after the Example 4.1 UPDATE:\n{after}\n");
    assert_eq!(after.multiplicity(&tuple!["Amstel", 5.1 * 1.1]), 1);

    // DELETE
    run_sql(&mgr, "DELETE FROM beer WHERE alcperc < 5.0")?;
    let count = run_sql(&mgr, "SELECT COUNT(*) FROM beer")?.expect("query");
    println!("beers left after deleting the weak ones:\n{count}");
    Ok(())
}
