//! An interactive XRA shell over the multi-set algebra.
//!
//! Reads statements from stdin (or a piped script) and executes each
//! input line-group as an atomic transaction, printing `?E` results as
//! tables. Start with a pre-loaded beer database via `--beer`.
//!
//! ```text
//! $ cargo run --example xra_repl -- --beer
//! xra> ?project[name](select[country = 'NL'](join[%2 = %4](beer, brewery)));
//! xra> begin insert(beer, values (str,str,real) {('New','Grolsche',5.5)}); ?beer; end;
//! xra> relation drinker (name: str, likes: str);
//! ```
//!
//! Input ends at EOF; `\q` quits.

use std::io::{self, BufRead, Write};

use mera::lang::{RunResult, Session};

fn main() -> io::Result<()> {
    let preload = std::env::args().any(|a| a == "--beer");
    let mut session = if preload {
        Session::with_database(mera::beer_database())
    } else {
        Session::new()
    };
    println!("mera XRA shell — multi-set extended relational algebra (ICDE '94)");
    if preload {
        println!("pre-loaded relations: beer (6 tuples), brewery (3 tuples)");
    }
    println!("statements end with ';' — '\\q' quits\n");

    let stdin = io::stdin();
    let mut buffer = String::new();
    prompt(&buffer)?;
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim() == "\\q" {
            break;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // execute once the buffer holds a complete item (ends with ';' or
        // an 'end' of a transaction)
        let trimmed = buffer.trim_end();
        let complete =
            trimmed.ends_with(';') && (!buffer.contains("begin") || trimmed.contains("end"));
        if complete {
            run(&mut session, &buffer);
            buffer.clear();
        }
        prompt(&buffer)?;
    }
    Ok(())
}

fn prompt(buffer: &str) -> io::Result<()> {
    let p = if buffer.is_empty() { "xra> " } else { "...> " };
    print!("{p}");
    io::stdout().flush()
}

fn run(session: &mut Session, src: &str) {
    match session.run_script(src) {
        Err(e) => println!("error: {e}"),
        Ok(results) => {
            for result in results {
                match result {
                    RunResult::Committed(queries) => {
                        for q in queries {
                            println!("{q}");
                        }
                        println!("ok (t={})", session.database().time());
                    }
                    RunResult::Aborted(reason) => println!("aborted: {reason}"),
                }
            }
        }
    }
}
