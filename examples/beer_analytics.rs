//! Example 3.2 end-to-end: why multi-set semantics matters for
//! aggregation, and how the paper's projection-insertion rewrite shrinks
//! intermediate results.
//!
//! The paper's claim: under bag semantics, inserting
//! `π_(alcperc,country)` before the per-country average is a pure
//! optimization; under set semantics it silently *changes the answer*.
//! This example demonstrates both halves, plus the optimizer applying the
//! rewrite automatically and the instrumented engine measuring the
//! intermediate-volume reduction.
//!
//! Run with `cargo run --example beer_analytics`.

use mera::core::prelude::*;
use mera::eval::physical::planner::plan_instrumented;
use mera::eval::physical::stats::ExecStats;
use mera::eval::{collect, eval};
use mera::expr::{Aggregate, RelExpr, ScalarExpr};
use mera::opt::Optimizer;
use mera::setalg::eval_set;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = mera::beer_database();

    // γ_{(country), AVG, alcperc}(beer ⋈ brewery)
    let join = RelExpr::scan("beer").join(
        RelExpr::scan("brewery"),
        ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
    );
    let direct = join.clone().group_by(&[6], Aggregate::Avg, 3);
    // the paper's hand-optimized form with the projection inserted
    let reduced = join.project(&[3, 6]).group_by(&[2], Aggregate::Avg, 1);

    // ── bag semantics: both forms agree ───────────────────────────────
    let bag_direct = eval(&direct, &db)?;
    let bag_reduced = eval(&reduced, &db)?;
    assert_eq!(bag_direct, bag_reduced);
    println!("average alcohol percentage per country (bag semantics):");
    println!("{bag_direct}\n");
    println!("with and without the inserted projection: identical ✓\n");

    // ── set semantics: the projection corrupts the aggregate ──────────
    let set_direct = eval_set(&direct, &db)?;
    let set_reduced = eval_set(&reduced, &db)?;
    assert_ne!(set_direct, set_reduced);
    println!("the same two expressions under SET semantics:");
    println!("direct:\n{set_direct}\n");
    println!("with projection inserted:\n{set_reduced}\n");
    println!(
        "set semantics collapses the two distinct 5.0% Dutch beers into \
         one tuple before averaging — the paper's 'different (and \
         incorrect) result'.\n"
    );

    // ── the optimizer applies the rewrite automatically ───────────────
    let optimized = Optimizer::standard().optimize(&direct, db.schema())?;
    println!("optimizer output: {}", optimized.expr);
    assert!(optimized
        .applications
        .iter()
        .any(|(rule, _)| rule == "project-before-group-by"));

    // ── measured: the data volume feeding the blocking group-by ───────
    // (counters register bottom-up, so the entry before "group-by" is its
    // input operator)
    let gamma_input_cells =
        |expr: &RelExpr| -> Result<(u64, Relation), Box<dyn std::error::Error>> {
            let mut stats = ExecStats::new();
            let plan = plan_instrumented(expr, &db, &mut stats)?;
            let out = collect(plan)?;
            let cells = stats.cells_out();
            let gamma = cells
                .iter()
                .position(|(l, _)| l == "group-by")
                .expect("plan contains a group-by");
            Ok((cells[gamma - 1].1, out))
        };
    let (direct_volume, a) = gamma_input_cells(&direct)?;
    let (reduced_volume, b) = gamma_input_cells(&optimized.expr)?;
    assert_eq!(a, b);
    println!("\ndata volume feeding the group-by, unoptimized plan: {direct_volume} cells");
    println!("data volume feeding the group-by, optimized plan:   {reduced_volume} cells");
    assert!(reduced_volume < direct_volume);
    println!(
        "(the projection narrows 6-attribute join tuples to 2 attributes \
         before grouping; on wider relations the effect grows — see bench \
         `ex32_pushdown`)"
    );
    Ok(())
}
