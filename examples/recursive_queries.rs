//! The §5 extensions in action: transitive closure (recursive queries)
//! and commit-time integrity constraints.
//!
//! The paper's conclusion points at both: "the addition of a transitive
//! closure operator allowing expressions with a recursive nature is
//! discussed in [11]", and "integrity constraints … interested readers
//! are referred to [11]".
//!
//! Run with `cargo run --example recursive_queries`.

use std::sync::Arc;

use mera::core::prelude::*;
use mera::expr::{Aggregate, RelExpr, ScalarExpr};
use mera::lang::Session;
use mera::txn::{Constraint, ConstraintSet, ExecConfig, Program, Statement, TransactionManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── recursive queries via closure(E) ───────────────────────────────
    let mut session = Session::new();
    session.run_script(
        "relation supplies (part: str, component: str);\n\
         insert(supplies, values (str, str) {\n\
           ('bike', 'frame'), ('bike', 'wheel'),\n\
           ('wheel', 'rim'), ('wheel', 'spoke'),\n\
           ('frame', 'tube'), ('rim', 'tube')   -- tube used twice!\n\
         });",
    )?;

    println!("direct bill of materials:\n{}", session.query("supplies")?);

    // all parts transitively contained in a bike — the classic recursive
    // query relational algebra cannot express without the α operator
    let all = session.query("project[%2](select[%1 = 'bike'](closure(supplies)))")?;
    println!("\neverything inside a bike (closure):\n{all}");
    // frame, wheel, rim, spoke, tube — the two paths to 'tube' collapse
    // because closure is δ-based (one pair per reachable part)
    assert_eq!(all.len(), 5);

    // closure composes with the rest of the algebra: how many distinct
    // parts sit at any depth under each top-level part?
    let fanout = session.query("groupby[(%1), CNT, %2](closure(supplies))")?;
    println!("transitive fan-out per part:\n{fanout}");

    // ── integrity constraints at commit time ──────────────────────────
    let schema = DatabaseSchema::new()
        .with(
            "supplies",
            Schema::named(&[("part", DataType::Str), ("component", DataType::Str)]),
        )?
        .with("part", Schema::named(&[("name", DataType::Str)]))?;
    let constraints = ConstraintSet::new()
        .with(
            "supplies_pk",
            Constraint::PrimaryKey {
                relation: "supplies".into(),
                attrs: vec![1, 2],
            },
            &schema,
        )?
        .with(
            "component_fk",
            Constraint::ForeignKey {
                relation: "supplies".into(),
                attrs: vec![2],
                references: "part".into(),
                ref_attrs: vec![1],
            },
            &schema,
        )?
        .with(
            "no_self_supply",
            Constraint::Check {
                relation: "supplies".into(),
                predicate: ScalarExpr::attr(1).cmp(mera::expr::CmpOp::Ne, ScalarExpr::attr(2)),
            },
            &schema,
        )?;
    let mgr = TransactionManager::with_constraints(schema, ExecConfig::default(), constraints);

    let part_rows = |names: &[&str]| -> Relation {
        Relation::from_tuples(
            Arc::new(Schema::named(&[("name", DataType::Str)])),
            names.iter().map(|n| tuple![*n]),
        )
        .expect("typed")
    };
    let edge = |a: &str, b: &str| -> Relation {
        Relation::from_tuples(
            Arc::new(Schema::named(&[
                ("part", DataType::Str),
                ("component", DataType::Str),
            ])),
            vec![tuple![a, b]],
        )
        .expect("typed")
    };

    // a valid load commits
    let (outcome, _) = mgr.execute(
        &Program::new()
            .then(Statement::insert(
                "part",
                RelExpr::values(part_rows(&["bike", "frame", "wheel"])),
            ))
            .then(Statement::insert(
                "supplies",
                RelExpr::values(edge("bike", "frame")),
            ))
            .then(Statement::insert(
                "supplies",
                RelExpr::values(edge("bike", "wheel")),
            )),
    )?;
    println!("\nvalid load: committed = {}", outcome.is_committed());

    // a dangling component aborts atomically at commit time
    let (outcome, transition) = mgr.execute(&Program::single(Statement::insert(
        "supplies",
        RelExpr::values(edge("wheel", "warpdrive")),
    )))?;
    println!("dangling component: {outcome:?}");
    assert!(!outcome.is_committed());
    assert!(transition.is_identity());

    // a self-supply violates the check constraint
    let (outcome, _) = mgr.execute(&Program::single(Statement::insert(
        "supplies",
        RelExpr::values(edge("wheel", "wheel")),
    )))?;
    println!("self-supply: {outcome:?}");
    assert!(!outcome.is_committed());

    // meanwhile closure still works on the committed state
    let reachable = mera::eval::eval(
        &RelExpr::scan("supplies")
            .closure()
            .group_by(&[1], Aggregate::Cnt, 2),
        &mgr.snapshot(),
    )?;
    println!("\ntransitive fan-out in the constrained database:\n{reachable}");
    Ok(())
}
