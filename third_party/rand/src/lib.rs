//! Offline stand-in for `rand` 0.8: the `StdRng`/`SeedableRng`/`Rng`
//! surface this workspace uses, backed by a SplitMix64 generator.

use std::ops::Range;

/// Core uniform-u64 source.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> Rng for G {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic, fast, adequate
    /// for workload generation — not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i64 = a.gen_range(-5i64..10);
            let y: i64 = b.gen_range(-5i64..10);
            assert_eq!(x, y);
            assert!((-5..10).contains(&x));
        }
        let f: f64 = a.gen_range(0.0..2.5);
        assert!((0.0..2.5).contains(&f));
    }
}
