//! Offline stand-in for `rustc-hash`: the genuine FxHash mixing function
//! (multiply + rotate word folding) over the std hash containers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc hash.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-folding hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
