//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the same API shape as the crate this workspace declares.
//!
//! Each benchmark runs a short calibration pass, then a timed measurement
//! window, and prints mean time per iteration. There is no statistical
//! analysis, outlier detection, or HTML report — the goal is that
//! `cargo bench` compiles, runs every registered benchmark, and prints a
//! usable per-iteration number.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    measurement: Duration,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, storing mean wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count that fills the window.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result = Some(start.elapsed() / iters as u32);
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement: Duration::from_millis(400),
        }
    }
}

/// The harness entry point. Builder methods mirror criterion's; sampling
/// parameters other than the measurement window are accepted and ignored.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Accepted for API compatibility; this harness takes one sample.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility; there is no warm-up pass.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement = d;
        self
    }

    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.settings, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the group throughput (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.settings, |b| f(b, input));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.settings, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(label: &str, settings: Settings, mut f: F) {
    let mut result = None;
    {
        let mut b = Bencher {
            measurement: settings.measurement,
            result: &mut result,
        };
        f(&mut b);
    }
    match result {
        Some(per_iter) => println!("{label:<60} {per_iter:>12.2?}/iter"),
        None => println!("{label:<60} (no measurement)"),
    }
}

/// Declares a group of benchmark functions; both the simple and the
/// `name/config/targets` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
