//! The [`Strategy`] trait and the combinators this workspace uses:
//! `Just`, ranges, tuples, `prop_map`, `prop_flat_map`, `boxed`, `Union`.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty, $uwide:ty;)*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as $uwide as u64;
                (self.start as $wide + rng.below(span) as $wide) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide - lo as $wide) as $uwide as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide + rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range_strategy! {
    u8 => i128, u128;
    u16 => i128, u128;
    u32 => i128, u128;
    u64 => i128, u128;
    usize => i128, u128;
    i8 => i128, u128;
    i16 => i128, u128;
    i32 => i128, u128;
    i64 => i128, u128;
    isize => i128, u128;
}

/// String strategies written as regex literals (e.g. `"\\PC{0,120}"`).
///
/// This stand-in does not implement a regex engine: it reads an optional
/// trailing `{lo,hi}` repetition (defaulting to `{0,32}`) and emits that
/// many random printable characters, mixing ASCII with a few multi-byte
/// code points. For the fuzz patterns in this workspace (arbitrary
/// non-control input) that is the intended distribution.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                const EXTRA: &[char] = &['µ', 'é', '→', '□', '本', '🍺'];
                match rng.below(8) {
                    0 => EXTRA[rng.below(EXTRA.len() as u64) as usize],
                    _ => (b' ' + rng.below(95) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let (_, rep) = body.rsplit_once('{')?;
    let (lo, hi) = rep.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
