//! Offline stand-in for `proptest`: a miniature property-testing harness
//! covering the API surface this workspace uses.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` cases
//! (default 256, overridable with the `PROPTEST_CASES` environment
//! variable). Inputs are drawn from [`strategy::Strategy`] values with a
//! deterministic per-test SplitMix64 stream, so failures reproduce across
//! runs. There is no shrinking: a failing case reports the case number and
//! the assertion message.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-of-min, exclusive-of-max size specification for
    /// collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_excl: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `proptest::arbitrary` — the `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// All 64-bit patterns reinterpreted as `f64` (including ±0, ±∞ and
    /// NaN — callers that reject NaN exercise their rejection path).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyF64;

    impl Strategy for AnyF64 {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f64 {
        type Strategy = AnyF64;

        fn arbitrary() -> AnyF64 {
            AnyF64
        }
    }

    /// All 64-bit patterns as `i64`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyI64;

    impl Strategy for AnyI64 {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for i64 {
        type Strategy = AnyI64;

        fn arbitrary() -> AnyI64 {
            AnyI64
        }
    }

    /// Uniform booleans (via `any::<bool>()`).
    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;

        fn arbitrary() -> crate::bool::Any {
            crate::bool::ANY
        }
    }
}

/// The `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest!` — defines property tests.
///
/// Supports the optional `#![proptest_config(...)]` header and any number
/// of `#[test] fn name(arg in strategy, ...) { body }` items. Bodies may
/// `return Ok(())` early and use the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!` — fails the current case when the sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// `prop_assert_ne!` — fails the current case when the sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
}

/// `prop_oneof!` — uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
