//! Test-runner types: configuration, case failure, and the deterministic
//! random stream that drives value generation.

use std::fmt;

/// Per-test configuration. Only `cases` is meaningful in this stand-in.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed test case: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 stream. Seeded from the property name so every
/// test gets a distinct but reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine for test data.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
