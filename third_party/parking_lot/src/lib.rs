//! Offline stand-in for `parking_lot`: a `Mutex` with the
//! poisoning-free `lock()` signature, backed by `std::sync::Mutex`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
