//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock`/`Condvar` with
//! the poisoning-free signatures, backed by their `std::sync` versions.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable compatible with this crate's [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |inner| {
            self.0.wait(inner).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Blocks until notified or `timeout` elapses; returns true on timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |inner| {
            let (g, r) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because time ran out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Runs `f` on the `std` guard inside `guard`, putting the result back.
///
/// SAFETY-free plumbing: `std::sync::Condvar::wait` consumes the guard
/// and returns a new one for the same mutex, so we temporarily move it
/// out through `ManuallyDrop`-style replace.
fn replace_guard<T>(
    guard: &mut MutexGuard<'_, T>,
    f: impl FnOnce(std::sync::MutexGuard<'_, T>) -> std::sync::MutexGuard<'_, T>,
) {
    // move the inner guard out without running its destructor, feed it
    // to `f`, and write the returned guard back into place
    unsafe {
        let inner = std::ptr::read(&guard.0);
        let next = f(inner);
        std::ptr::write(&mut guard.0, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn condvar_signals_across_threads() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().expect("joins");
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
