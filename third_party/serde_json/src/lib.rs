//! Offline stand-in for `serde_json`: an empty shell. The workspace
//! declares the dependency but does not currently use it in code; this
//! crate exists so dependency resolution succeeds without network access.
